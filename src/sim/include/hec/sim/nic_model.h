// Network I/O device (DMA NIC) model.
//
// I/O devices are memory-mapped and transfer data via DMA with minimal CPU
// involvement (Section II-A), so NIC activity overlaps completely with core
// activity. The NIC is a FIFO server: transfers are serialised on the link,
// each taking bytes/bandwidth; for open-loop served workloads the next
// request cannot start before its arrival time, which is how the
// max(transfer, inter-arrival) structure of Eq. 11 emerges.
#pragma once

#include "hec/util/expect.h"

namespace hec {

/// FIFO link with fixed bandwidth; tracks busy time for power accounting.
class NicModel {
 public:
  /// bandwidth_bytes_per_s > 0.
  explicit NicModel(double bandwidth_bytes_per_s);

  /// Admits a transfer of `bytes` that may start no earlier than
  /// `earliest_start` (its arrival time). Returns the completion time.
  /// Calls must have non-decreasing earliest_start (FIFO arrivals).
  double admit(double earliest_start, double bytes);

  /// Total time the link spent transferring so far.
  double busy_s() const { return busy_s_; }
  /// Completion time of the last admitted transfer (0 if none).
  double last_completion_s() const { return next_free_; }
  double total_bytes() const { return total_bytes_; }

 private:
  double bandwidth_;
  double next_free_ = 0.0;
  double busy_s_ = 0.0;
  double total_bytes_ = 0.0;
};

}  // namespace hec
