// Discrete-event simulation engine.
//
// A minimal priority-queue scheduler: events are (time, callback) pairs,
// executed in time order with FIFO tie-breaking (a monotone sequence number
// makes simultaneous events deterministic). All node/NIC/core activity in
// the simulator is expressed as events against this queue, which is what
// lets CPU computation, DMA transfers and request arrivals overlap in time
// exactly as the paper's execution model assumes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace hec {

/// Single-threaded discrete-event scheduler with a monotone clock.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Handle for a scheduled-but-not-yet-run event; usable with cancel().
  using EventId = std::uint64_t;

  /// Current simulation time in seconds. Starts at 0.
  double now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now()).
  EventId schedule_at(double when, Callback cb);

  /// Schedules `cb` `delay` seconds from now (delay >= 0).
  EventId schedule_in(double delay, Callback cb);

  /// Cancels a pending event. Returns true when `id` was pending (its
  /// callback will never run); false when it already ran, was already
  /// cancelled, or never existed. Cancellation is what lets fault
  /// injection kill scheduled work (in-flight chunk completions, queued
  /// NIC deliveries) at a crash instant without executing it.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_.empty(); }
  std::size_t pending() const { return live_.size(); }

  /// Pops and runs the earliest live event; advances the clock to its
  /// time. Cancelled entries encountered on the way are discarded without
  /// running and without advancing the clock. Precondition: !empty().
  void step();

  /// Runs until the queue drains. `max_events` guards against runaway
  /// self-scheduling loops; exceeding it throws std::runtime_error.
  void run(std::uint64_t max_events = 1'000'000'000ULL);

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> live_;  ///< scheduled, not yet run/cancelled
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hec
