// Discrete-event simulation engine.
//
// A minimal priority-queue scheduler: events are (time, callback) pairs,
// executed in time order with FIFO tie-breaking (a monotone sequence number
// makes simultaneous events deterministic). All node/NIC/core activity in
// the simulator is expressed as events against this queue, which is what
// lets CPU computation, DMA transfers and request arrivals overlap in time
// exactly as the paper's execution model assumes.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hec {

/// Single-threaded discrete-event scheduler with a monotone clock.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulation time in seconds. Starts at 0.
  double now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (>= now()).
  void schedule_at(double when, Callback cb);

  /// Schedules `cb` `delay` seconds from now (delay >= 0).
  void schedule_in(double delay, Callback cb);

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Pops and runs the earliest event; advances the clock to its time.
  /// Precondition: !empty().
  void step();

  /// Runs until the queue drains. `max_events` guards against runaway
  /// self-scheduling loops; exceeding it throws std::runtime_error.
  void run(std::uint64_t max_events = 1'000'000'000ULL);

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace hec
