// Hardware-event-counter equivalent.
//
// The paper measures model inputs with `perf` hardware counters
// (Section II-D1): instructions retired, work cycles, non-memory stall
// cycles and memory stall cycles. The simulator exposes the same
// observables; everything the analytical model consumes is derived from
// this struct, never from the simulator's internal parameters — keeping the
// trace-driven methodology honest.
#pragma once

#include <cstdint>

namespace hec {

/// Aggregated event counts for one simulated run (all cores of a node).
struct CounterSet {
  double instructions = 0.0;       ///< instructions retired
  double work_cycles = 0.0;        ///< cycles doing useful work
  double core_stall_cycles = 0.0;  ///< non-memory pipeline stalls
  double mem_stall_cycles = 0.0;   ///< stalls waiting on memory
  double io_bytes = 0.0;           ///< bytes moved by the NIC (DMA)
  double work_units = 0.0;         ///< application work units completed

  CounterSet& operator+=(const CounterSet& o) {
    instructions += o.instructions;
    work_cycles += o.work_cycles;
    core_stall_cycles += o.core_stall_cycles;
    mem_stall_cycles += o.mem_stall_cycles;
    io_bytes += o.io_bytes;
    work_units += o.work_units;
    return *this;
  }

  /// WPI: work cycles per instruction (0 when no instructions ran).
  double wpi() const {
    return instructions > 0.0 ? work_cycles / instructions : 0.0;
  }
  /// SPIcore: non-memory stall cycles per instruction.
  double spi_core() const {
    return instructions > 0.0 ? core_stall_cycles / instructions : 0.0;
  }
  /// SPImem: memory stall cycles per instruction.
  double spi_mem() const {
    return instructions > 0.0 ? mem_stall_cycles / instructions : 0.0;
  }
  /// IPs: instructions per application work unit.
  double instructions_per_unit() const {
    return work_units > 0.0 ? instructions / work_units : 0.0;
  }
};

}  // namespace hec
