// Shard-aware slicing of a configuration index space.
//
// ConfigSpaceLayout names every configuration by a dense global index,
// so a distributed sweep never ships configurations — it ships index
// ranges. This header is the single definition of how a space of
// `total` indices is cut into contiguous shards: near-equal ranges,
// every index covered exactly once, order-preserving. The coordinator
// (hec/shard) plans with it and the per-shard journal fingerprints
// embed the resulting [first, last) bounds, so a journal can never
// resume into a different shard's slice.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "hec/util/expect.h"

namespace hec {

/// A contiguous half-open slice [first, last) of a sweep index space.
struct IndexRange {
  std::size_t first = 0;
  std::size_t last = 0;

  std::size_t size() const { return last - first; }
  bool empty() const { return last <= first; }

  friend bool operator==(const IndexRange&, const IndexRange&) = default;
};

/// Stable textual form of a range, used in journal fingerprints and
/// protocol messages: "[first,last)".
inline std::string describe(const IndexRange& range) {
  return "[" + std::to_string(range.first) + "," +
         std::to_string(range.last) + ")";
}

/// Cuts [0, total) into at most `parts` contiguous non-empty slices of
/// near-equal size (sizes differ by at most one, larger slices first).
/// Fewer than `parts` slices are returned when total < parts; together
/// the slices always cover [0, total) exactly once, in order.
inline std::vector<IndexRange> slice_index_space(std::size_t total,
                                                 std::size_t parts) {
  HEC_EXPECTS(parts >= 1);
  std::vector<IndexRange> slices;
  if (total == 0) return slices;
  const std::size_t count = std::min(parts, total);
  const std::size_t base = total / count;
  const std::size_t extra = total % count;  // first `extra` slices get +1
  slices.reserve(count);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    slices.push_back({cursor, cursor + size});
    cursor += size;
  }
  return slices;
}

}  // namespace hec
