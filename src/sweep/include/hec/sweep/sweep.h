// Sweep engine: frontier extraction over huge configuration spaces.
//
// The paper's methodology (Fig. 1) evaluates every configuration and
// keeps the energy-deadline Pareto frontier. The legacy pipeline
// materialises the whole space (enumerate_configs), predicts every point
// from scratch (ConfigEvaluator::evaluate_all) and sorts every outcome
// (pareto_frontier) — O(A·B) memory and O(A·B) full model predictions
// for A arm × B amd deployments. This engine composes the three
// structural optimisations that remove both costs while producing
// bit-identical frontiers:
//
//   1. Per-type memoization (hec/config DeploymentTable): the A+B
//      single-type deployments are compiled once; each pair combines two
//      cached entries in O(1) via the closed-form matched split.
//   2. Streaming enumeration (ConfigSpaceLayout): configurations are
//      decoded from their index on the fly — peak memory is O(block),
//      not O(space).
//   3. Thread-local Pareto reduction (hec/pareto ParetoAccumulator):
//      each worker keeps a partial frontier of the blocks it drained
//      from an atomic cursor; partials k-way-merge at the end. No
//      all-outcomes vector, no global sort.
//
// Every sweep_* function has a sweep_*_reference twin that runs the
// legacy pipeline; the equivalence tests assert bit-identical frontiers
// (same times, energies, tags, order) between the two on every workload.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/config/multi_space.h"
#include "hec/config/robust_evaluate.h"
#include "hec/parallel/thread_pool.h"
#include "hec/pareto/frontier.h"

namespace hec {

/// Tuning knobs for the sweep engine. The defaults suit spaces from
/// thousands to hundreds of millions of points; correctness never
/// depends on them (the frontier is identical for any block/compaction
/// sizing).
struct SweepOptions {
  /// Configurations a worker claims from the shared cursor at a time.
  std::size_t block = 4096;
  /// ParetoAccumulator buffer bound (peak per-worker memory knob).
  std::size_t compact_limit = 16384;
  /// Claim size for the robust sweep, whose per-config cost is ~1000×
  /// the nominal one (Monte Carlo trials inside).
  std::size_t robust_block = 16;
  /// False forces the single-threaded path even on a multi-worker pool.
  bool parallel = true;
  /// Pool to run on; nullptr uses the library's global_pool().
  ThreadPool* pool = nullptr;
  /// Analytic bound-and-prune layer (hec/sweep/bounds.h): skips chunks
  /// of the index space whose optimistic (time, energy) corner is
  /// already dominated by the worker's partial frontier. The frontier is
  /// bit-identical either way; false restores evaluate-everything.
  bool prune = true;
  /// SoA/SIMD inner kernel (hec/sweep/kernel.h) for the two-type space;
  /// false keeps the scalar per-index path. Bit-identical either way.
  bool simd = true;
  /// Index-space granularity of pruning decisions: one (t_lo, e_lo)
  /// bound per `prune_chunk` consecutive indices.
  std::size_t prune_chunk = 32;
};

/// What a sweep did (for logs and benchmarks; not part of equivalence).
struct SweepStats {
  std::size_t configs = 0;  ///< points visited (evaluated + pruned)
  std::size_t blocks = 0;   ///< cursor claims issued
  std::size_t workers = 1;  ///< concurrent consumers
  std::size_t evaluated = 0;      ///< configs the model actually ran on
  std::size_t pruned = 0;         ///< configs skipped by bound-and-prune
  std::size_t blocks_pruned = 0;  ///< bound chunks skipped whole
};

/// A sweep's product: the Pareto frontier, tagged with global
/// enumeration indices (tag i ↔ enumerate order position i), plus stats.
struct SweepResult {
  std::vector<TimeEnergyPoint> frontier;
  SweepStats stats;
};

/// Frontier of the full two-type space (heterogeneous mixes plus both
/// homogeneous sweeps) for a job of `work_units`. Bit-identical to
/// sweep_frontier_reference, in O(A+B) model compilations and
/// O(block + frontier) memory.
SweepResult sweep_frontier(const NodeTypeModel& arm_model,
                           const NodeTypeModel& amd_model,
                           const EnumerationLimits& limits,
                           double work_units, const SweepOptions& opts = {});

/// Legacy pipeline (materialise + per-point model predictions + global
/// sort); the oracle the equivalence tests and benchmarks compare with.
SweepResult sweep_frontier_reference(const NodeTypeModel& arm_model,
                                     const NodeTypeModel& amd_model,
                                     const EnumerationLimits& limits,
                                     double work_units,
                                     const SweepOptions& opts = {});

/// Robust frontier under a fault model: evaluates every configuration by
/// Monte Carlo (RobustConfigEvaluator), discards points whose deadline
/// miss probability exceeds `max_miss_prob`, and reduces the survivors'
/// (E[time], E[energy]) points streamingly. Bit-identical to
/// sweep_robust_frontier_reference. Configurations stream in
/// opts.robust_block claims (per-config cost is large and variable, so
/// small dynamic claims load-balance).
SweepResult sweep_robust_frontier(const RobustConfigEvaluator& evaluator,
                                  const EnumerationLimits& limits,
                                  double work_units, double deadline_s,
                                  double max_miss_prob,
                                  const SweepOptions& opts = {});

/// Legacy robust pipeline (materialise + evaluate_all +
/// robust_pareto_frontier).
SweepResult sweep_robust_frontier_reference(
    const RobustConfigEvaluator& evaluator, const EnumerationLimits& limits,
    double work_units, double deadline_s, double max_miss_prob,
    const SweepOptions& opts = {});

/// Frontier of the N-type space (enumerate_multi order, no size cap)
/// via per-type memoization and streaming decode. Bit-identical to
/// sweep_multi_frontier_reference where the reference is allowed to
/// materialise.
SweepResult sweep_multi_frontier(std::vector<const NodeTypeModel*> models,
                                 std::span<const int> limits,
                                 double work_units,
                                 const SweepOptions& opts = {});

/// Legacy multi-type pipeline (enumerate_multi + evaluate_all + sort);
/// subject to enumerate_multi's max_points cap.
SweepResult sweep_multi_frontier_reference(
    std::vector<const NodeTypeModel*> models, std::span<const int> limits,
    double work_units, const SweepOptions& opts = {});

}  // namespace hec
