// Analytic lower bounds for the bound-and-prune sweep layer.
//
// Every configuration's (time, energy) is exactly linear-homogeneous in
// the work amount W: a heterogeneous pair with per-side execution rates
// r = 1/time_per_unit and busy powers P = energy_per_unit * r satisfies
//
//   t = W / (r_arm + r_amd)            (matched split, Eq. 1)
//   e = t * (P_arm + P_amd)            (Eq. 12)
//
// in real arithmetic, and a homogeneous deployment is the single-type
// special case. Both are exact per configuration: e = W · (ΣP / Σr) is
// the config's true energy, not an estimate. Over any chunk of
// consecutive enumeration indices the per-chunk extremes
// R = max Σ rates and U = min (ΣP / Σr) therefore give the tightest
// axis-aligned optimistic corner the chunk admits:
//
//   t_lo = W / R * (1 - δ)     e_lo = W * U * (1 - δ)
//
// — the chunk's true minimum time and true minimum energy (over
// different configs, in general); δ = 1e-9 absorbs the gap between
// this real-arithmetic bound and the engine's floating-point replay
// (relative error ≲ 1e-13). The extremes come from one linear scan of
// the actual compiled table entries — not from knob monotonicity — so
// the bounds stay sound for any calibration, including non-monotone
// SPImem profiles; pathological (non-finite) entries collapse a chunk's
// corner to -infinity, which can never be dominated, i.e. the chunk is
// simply evaluated.
//
// A chunk whose corner is dominated by the accumulator's own compacted
// frontier (ParetoAccumulator::corner_dominated) can be skipped without
// evaluating it: every one of its points would have been rejected by the
// accumulator's O(log frontier) prefilter anyway, with margin. Pruning
// is therefore a batched prefilter — result-identical for any worker
// count, chunk alignment, or resume state, which is why the journaled
// and sharded sweeps need no extra bookkeeping to stay bit-identical.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "hec/config/evaluate.h"
#include "hec/config/multi_space.h"
#include "hec/pareto/frontier.h"
#include "hec/pareto/streaming.h"

namespace hec {

/// Per-chunk optimistic lower bounds on (time, energy) over an index
/// space, aligned to global index 0. Immutable after construction and
/// shared read-only across sweep workers.
class BlockBoundTable {
 public:
  /// Bounds for the two-type space (sweep_frontier's layout: hetero
  /// ARM-major, then ARM-only, then AMD-only).
  static BlockBoundTable for_two_type(const MemoizedConfigEvaluator& memo,
                                      double work_units, std::size_t chunk);

  /// Bounds for the N-type space (sweep_multi_frontier's odometer
  /// layout); an absent type contributes rate 0 and power 0.
  static BlockBoundTable for_multi(const MemoizedMultiEvaluator& memo,
                                   double work_units, std::size_t chunk);

  std::size_t chunk_size() const { return chunk_; }
  std::size_t chunks() const { return t_lo_.size(); }

  /// Optimistic corner of chunk c, valid for every index in
  /// [c * chunk_size(), (c + 1) * chunk_size()) ∩ [0, total).
  double t_lo(std::size_t c) const { return t_lo_[c]; }
  double e_lo(std::size_t c) const { return e_lo_[c]; }

 private:
  BlockBoundTable(std::size_t chunk, std::vector<double> t_lo,
                  std::vector<double> e_lo);

  std::size_t chunk_;
  std::vector<double> t_lo_;  ///< per chunk; -inf disables pruning it
  std::vector<double> e_lo_;
};

/// Deterministic incumbent frontier for seeding a sweep: evaluates a
/// small fixed set of extreme configurations (per side: fastest rate,
/// lowest busy power, lowest energy-per-unit; crossed pairs plus the
/// homogeneous extremes — ties resolved to the lowest deployment index)
/// through the memoized evaluator and returns their Pareto frontier,
/// tagged with genuine global enumeration indices. Seeding these real,
/// evaluated points into an accumulator lets bound-and-prune fire from
/// the very first chunk; because they are points of the space itself,
/// the final frontier is unchanged (duplicates collapse in the scan).
std::vector<TimeEnergyPoint> two_type_incumbents(
    const MemoizedConfigEvaluator& memo, double work_units);

/// What one bounded walk over a claimed block did.
struct BoundWalkStats {
  std::size_t evaluated = 0;      ///< indices handed to eval()
  std::size_t pruned = 0;         ///< indices skipped whole-chunk
  std::size_t chunks_pruned = 0;  ///< chunks skipped
};

/// Layer-1 walk shared by every sweep body that is not kernel-backed:
/// visits [first, first + count) in `bounds` chunks, skips chunks whose
/// optimistic corner the accumulator's own frontier dominates, and hands
/// each surviving sub-range to `eval(sub_first, sub_last, acc)`. With
/// bounds == nullptr everything evaluates (pruning off). Skipping is a
/// batched form of the accumulator's prefilter, so the resulting
/// frontier — partial or final — is bit-identical either way.
template <typename EvalRange>
BoundWalkStats walk_with_bounds(const BlockBoundTable* bounds,
                                std::size_t first, std::size_t count,
                                ParetoAccumulator& acc,
                                const EvalRange& eval) {
  BoundWalkStats stats;
  const std::size_t last = first + count;
  // Fold buffered survivors into the compacted frontier first: the
  // corner test only sees compacted points, and a fresher frontier
  // prunes strictly more (result-identical either way).
  if (bounds != nullptr) acc.refresh();
  std::size_t s = first;
  while (s < last) {
    std::size_t e = last;
    if (bounds != nullptr) {
      const std::size_t c = s / bounds->chunk_size();
      e = std::min(last, (c + 1) * bounds->chunk_size());
      if (acc.corner_dominated(bounds->t_lo(c), bounds->e_lo(c))) {
        stats.pruned += e - s;
        ++stats.chunks_pruned;
        s = e;
        continue;
      }
    }
    eval(s, e, acc);
    stats.evaluated += e - s;
    s = e;
  }
  return stats;
}

}  // namespace hec
