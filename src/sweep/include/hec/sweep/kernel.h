// Bound-and-prune + SoA/SIMD evaluation kernel for the two-type space.
//
// The kernel is the consume-block body of the fast sweeps, composing the
// two layers of the engine's fast path:
//
//   Layer 1 — analytic pruning: before evaluating a chunk of indices it
//   checks the chunk's optimistic (time, energy) corner (BlockBoundTable,
//   hec/sweep/bounds.h) against the accumulator's compacted frontier
//   (ParetoAccumulator::corner_dominated). A dominated corner means every
//   point of the chunk would have been rejected by the accumulator's
//   prefilter, so the whole chunk is skipped — a batched prefilter,
//   result-identical by construction.
//
//   Layer 2 — SoA/SIMD evaluation: surviving chunks are evaluated from
//   structure-of-arrays copies of the per-side DeploymentTable scalars,
//   laid out along the inner (P-state-fastest) enumeration axis. The
//   inner loop is straight-line arithmetic over contiguous arrays — the
//   exact operation sequence of CompiledOperatingPoint::predict and the
//   matched split, in the same order — so plain -O3 autovectorizes it
//   (no intrinsics, no -ffast-math, no FMA contraction on the baseline
//   target) and results stay bit-identical to the scalar path.
//
// The scalar fallback (simd = false) routes every index through
// MemoizedConfigEvaluator::evaluate_at, the pre-existing engine path. A
// table whose "uniform" per-type scalars turn out to vary per entry
// (impossible with the current model, but checked, not assumed) also
// falls back automatically.
//
// Thread-safety: consume() is const and touches only the caller's
// accumulator plus relaxed atomic counters, so one kernel instance is
// shared read-only by all sweep workers — and, via fork, by all shard
// worker processes.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "hec/config/evaluate.h"
#include "hec/pareto/streaming.h"
#include "hec/sweep/bounds.h"

namespace hec {

/// Evaluated / pruned accounting of one kernel's lifetime (summed over
/// every consume() call in this process).
struct KernelStats {
  std::size_t evaluated = 0;      ///< configs the model ran on
  std::size_t pruned = 0;         ///< configs skipped by bound-and-prune
  std::size_t chunks_pruned = 0;  ///< chunk ranges skipped whole
};

class TwoTypeSweepKernel {
 public:
  struct Options {
    bool prune = true;
    bool simd = true;
    std::size_t chunk = 32;   ///< pruning granularity (indices per bound)
  };

  /// `memo` must outlive the kernel. Building precomputes the bound
  /// table (one linear scan of the space) and the SoA arrays (one pass
  /// over the A+B table entries).
  TwoTypeSweepKernel(const MemoizedConfigEvaluator& memo, double work_units,
                     const Options& opts);

  /// Evaluates indices [first, first + count) into `acc`, pruning
  /// dominated chunks. Safe to call concurrently with distinct
  /// accumulators.
  void consume(std::size_t first, std::size_t count,
               ParetoAccumulator& acc) const;

  /// Deterministic incumbent frontier of the kernel's space
  /// (two_type_incumbents); empty when pruning is off.
  std::vector<TimeEnergyPoint> incumbents() const;

  KernelStats stats() const {
    return {evaluated_.load(std::memory_order_relaxed),
            pruned_.load(std::memory_order_relaxed),
            chunks_pruned_.load(std::memory_order_relaxed)};
  }

 private:
  /// Per-side SoA mirror of a DeploymentTable: one contiguous array per
  /// entry-varying scalar, plus the type-uniform scalars checked at
  /// build time.
  struct SideSoA {
    std::vector<double> k;        ///< time_per_unit
    std::vector<double> n;        ///< node count
    std::vector<double> f_hz;
    std::vector<double> cact;
    std::vector<double> n_cact;
    std::vector<double> spi_mem;
    std::vector<double> p_act;
    std::vector<double> p_stall;
    // Uniform across the table (verified; `usable` false otherwise).
    double inst_per_unit = 0.0;
    double wpi = 0.0;
    double spi_core = 0.0;
    double io_s_per_unit = 0.0;
    double io_bytes_per_unit = 0.0;
    double bandwidth_bytes_s = 0.0;
    double mem_active_w = 0.0;
    double io_active_w = 0.0;
    double idle_w = 0.0;
    bool eq17 = false;
    bool usable = true;
  };
  static SideSoA build_soa(const DeploymentTable& table);

  void evaluate_range(std::size_t first, std::size_t last,
                      ParetoAccumulator& acc) const;
  void hetero_run(std::size_t arm_index, std::size_t amd_first,
                  std::size_t amd_last, std::size_t tag_base,
                  ParetoAccumulator& acc) const;
  void homogeneous_run(const SideSoA& side, std::size_t entry_first,
                       std::size_t entry_last, std::size_t tag_base,
                       ParetoAccumulator& acc) const;

  const MemoizedConfigEvaluator* memo_;
  double work_units_;
  bool prune_;
  bool simd_;
  std::optional<BlockBoundTable> bounds_;
  SideSoA arm_;
  SideSoA amd_;
  std::size_t hetero_ = 0;      ///< arm_points * amd_points
  std::size_t arm_points_ = 0;
  std::size_t amd_points_ = 0;

  mutable std::atomic<std::size_t> evaluated_{0};
  mutable std::atomic<std::size_t> pruned_{0};
  mutable std::atomic<std::size_t> chunks_pruned_{0};
};

}  // namespace hec
