// The sweep engine's block-claim reduction loop, factored out so the
// plain sweeps (hec/sweep/sweep.h) and the crash-safe resumable sweeps
// (hec/resilience/resumable.h) run the exact same inner machinery: the
// resumable engine replays this reduction epoch by epoch between
// checkpoints, and bit-identity of its final frontier with an
// uninterrupted sweep follows from both paths funnelling through this
// one claim loop plus the compaction identity of merge_frontiers.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <utility>
#include <vector>

#include "hec/parallel/thread_pool.h"
#include "hec/pareto/streaming.h"
#include "hec/util/failpoint.h"

namespace hec {

/// Partial frontiers produced by one reduction over an index range.
struct RangeReduction {
  std::vector<std::vector<TimeEnergyPoint>> partials;
  std::size_t blocks = 0;   ///< cursor claims processed
  std::size_t workers = 1;  ///< concurrent consumers engaged
  /// One past the last index actually consumed. Equals `last` unless a
  /// stop predicate fired; the consumed set is always the contiguous
  /// prefix [first, end) — claimed blocks are finished, never abandoned.
  std::size_t end = 0;
};

/// Runs the streaming reduction over global indices [first, last):
/// workers claim `claim`-sized blocks from a shared atomic cursor and
/// feed consume_block(block_first, count, accumulator); each worker's
/// compacted partial frontier lands in the result. `seed` (a compacted
/// frontier, possibly empty) preloads the first worker's accumulator —
/// the resume path carries the journaled frontier through here, and by
/// the compaction identity the merged result equals the frontier over
/// seed ∪ [first, last). The frontier of the union is identical for any
/// claim size, worker count or compaction limit.
///
/// `stop` (optional) is polled before each claim; once it returns true,
/// workers stop claiming — blocks already claimed are still finished, so
/// the consumed range stays the contiguous prefix [first, result.end)
/// and the merged partials are exactly its frontier. This is how the
/// deadline/watchdog layer stops a sweep at a block boundary.
///
/// Failpoint sites: sweep.worker_start (per worker), sweep.block (per
/// claimed block).
template <typename ConsumeBlock>
RangeReduction reduce_index_range(ThreadPool& pool, bool parallel,
                                  std::size_t first, std::size_t last,
                                  std::size_t claim,
                                  std::size_t compact_limit,
                                  std::vector<TimeEnergyPoint> seed,
                                  const ConsumeBlock& consume_block,
                                  const std::function<bool()>* stop =
                                      nullptr) {
  HEC_EXPECTS(claim >= 1);
  HEC_EXPECTS(first <= last);
  RangeReduction result;
  result.end = first;
  const std::size_t total = last - first;
  const std::size_t max_blocks = (total + claim - 1) / claim;
  const std::size_t workers =
      parallel ? std::min(pool.thread_count(), max_blocks) : std::size_t{1};
  result.workers = std::max<std::size_t>(workers, 1);
  const auto should_stop = [&] { return stop != nullptr && (*stop)(); };

  if (result.workers <= 1) {
    HEC_FAILPOINT_HIT("sweep.worker_start");
    ParetoAccumulator acc(compact_limit);
    if (!seed.empty()) acc.seed(std::move(seed));
    for (std::size_t block = first; block < last; block += claim) {
      if (should_stop()) break;
      HEC_FAILPOINT_HIT("sweep.block");
      const std::size_t count = std::min(claim, last - block);
      consume_block(block, count, acc);
      result.end = block + count;
      ++result.blocks;
    }
    result.partials.push_back(acc.take());
    return result;
  }

  std::atomic<std::size_t> cursor{first};
  std::atomic<std::size_t> blocks{0};
  result.partials.resize(result.workers);
  std::vector<std::future<void>> futures;
  futures.reserve(result.workers);
  for (std::size_t w = 0; w < result.workers; ++w) {
    futures.push_back(pool.submit([&, w] {
      HEC_FAILPOINT_HIT("sweep.worker_start");
      ParetoAccumulator acc(compact_limit);
      if (w == 0 && !seed.empty()) acc.seed(std::move(seed));
      while (!should_stop()) {
        const std::size_t block = cursor.fetch_add(claim);
        if (block >= last) break;
        HEC_FAILPOINT_HIT("sweep.block");
        consume_block(block, std::min(claim, last - block), acc);
        blocks.fetch_add(1, std::memory_order_relaxed);
      }
      result.partials[w] = acc.take();
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  result.blocks = blocks.load();
  // Claims past `last` were never consumed; claims below it always were.
  result.end = std::min(cursor.load(), last);
  return result;
}

}  // namespace hec
