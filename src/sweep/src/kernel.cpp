#include "hec/sweep/kernel.h"

#include <algorithm>

#include "hec/obs/obs.h"

namespace hec {

namespace {

/// Inner-loop slice width: small enough for stack buffers, large enough
/// that the autovectorized loop amortises its prologue.
constexpr std::size_t kSlice = 64;

}  // namespace

TwoTypeSweepKernel::SideSoA TwoTypeSweepKernel::build_soa(
    const DeploymentTable& table) {
  SideSoA s;
  const std::size_t n = table.size();
  s.k.resize(n);
  s.n.resize(n);
  s.f_hz.resize(n);
  s.cact.resize(n);
  s.n_cact.resize(n);
  s.spi_mem.resize(n);
  s.p_act.resize(n);
  s.p_stall.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const DeploymentEntry& e = table.entry(i);
    const CompiledOperatingPoint::Scalars sc = e.op.scalars();
    s.k[i] = e.time_per_unit;
    s.n[i] = sc.n;
    s.f_hz[i] = sc.f_hz;
    s.cact[i] = sc.cact;
    s.n_cact[i] = sc.n_cact;
    s.spi_mem[i] = sc.spi_mem;
    s.p_act[i] = sc.p_act_w;
    s.p_stall[i] = sc.p_stall_w;
    if (i == 0) {
      s.inst_per_unit = sc.inst_per_unit;
      s.wpi = sc.wpi;
      s.spi_core = sc.spi_core;
      s.io_s_per_unit = sc.io_s_per_unit;
      s.io_bytes_per_unit = sc.io_bytes_per_unit;
      s.bandwidth_bytes_s = sc.bandwidth_bytes_s;
      s.mem_active_w = sc.mem_active_w;
      s.io_active_w = sc.io_active_w;
      s.idle_w = sc.idle_w;
      s.eq17 = sc.accounting == EnergyAccounting::kPaperEq17;
    } else if (sc.inst_per_unit != s.inst_per_unit || sc.wpi != s.wpi ||
               sc.spi_core != s.spi_core ||
               sc.io_s_per_unit != s.io_s_per_unit ||
               sc.io_bytes_per_unit != s.io_bytes_per_unit ||
               sc.bandwidth_bytes_s != s.bandwidth_bytes_s ||
               sc.mem_active_w != s.mem_active_w ||
               sc.io_active_w != s.io_active_w || sc.idle_w != s.idle_w ||
               (sc.accounting == EnergyAccounting::kPaperEq17) != s.eq17) {
      // A scalar assumed type-uniform varies per entry: the SoA replay
      // would read the wrong value, so the kernel falls back to the
      // scalar path for this space (never silently diverges).
      s.usable = false;
    }
  }
  return s;
}

TwoTypeSweepKernel::TwoTypeSweepKernel(const MemoizedConfigEvaluator& memo,
                                       double work_units,
                                       const Options& opts)
    : memo_(&memo),
      work_units_(work_units),
      prune_(opts.prune),
      simd_(opts.simd),
      arm_(build_soa(memo.arm_table())),
      amd_(build_soa(memo.amd_table())),
      arm_points_(memo.layout().arm_points()),
      amd_points_(memo.layout().amd_points()) {
  hetero_ = arm_points_ * amd_points_;
  // Degenerate work amounts make the analytic bounds meaningless, so
  // pruning silently disables (everything evaluates, nothing changes).
  if (prune_ && work_units > 0.0) {
    bounds_.emplace(
        BlockBoundTable::for_two_type(memo, work_units, opts.chunk));
  }
}

std::vector<TimeEnergyPoint> TwoTypeSweepKernel::incumbents() const {
  if (!bounds_.has_value()) return {};
  return two_type_incumbents(*memo_, work_units_);
}

void TwoTypeSweepKernel::consume(std::size_t first, std::size_t count,
                                 ParetoAccumulator& acc) const {
  const std::size_t last = first + count;
  std::size_t evaluated = 0;
  std::size_t pruned = 0;
  std::size_t chunks_pruned = 0;
  if (!prune_ || !bounds_.has_value()) {
    evaluate_range(first, last, acc);
    evaluated = count;
  } else {
    // Fold any buffered survivors into the compacted frontier first:
    // corner_dominated only sees compacted points, and a fresher
    // frontier prunes strictly more (result-identical either way).
    acc.refresh();
    const std::size_t chunk = bounds_->chunk_size();
    std::size_t s = first;
    while (s < last) {
      const std::size_t c = s / chunk;
      const std::size_t e = std::min(last, (c + 1) * chunk);
      if (acc.corner_dominated(bounds_->t_lo(c), bounds_->e_lo(c))) {
        pruned += e - s;
        ++chunks_pruned;
      } else {
        evaluate_range(s, e, acc);
        evaluated += e - s;
      }
      s = e;
    }
  }
  evaluated_.fetch_add(evaluated, std::memory_order_relaxed);
  pruned_.fetch_add(pruned, std::memory_order_relaxed);
  chunks_pruned_.fetch_add(chunks_pruned, std::memory_order_relaxed);
  // Batch accounting, as the pre-kernel consume bodies did: the memoized
  // evaluator never bumps per call, so counters stay comparable with the
  // naive path. Pruned chunks flow through worker telemetry to the
  // sharded coordinator's merged registry like any other counter.
  HEC_COUNTER_ADD("config.evaluations", static_cast<double>(evaluated));
  if (chunks_pruned > 0) {
    HEC_COUNTER_ADD("sweep.blocks_pruned",
                    static_cast<double>(chunks_pruned));
  }
}

void TwoTypeSweepKernel::evaluate_range(std::size_t first, std::size_t last,
                                        ParetoAccumulator& acc) const {
  if (!simd_ || !arm_.usable || !amd_.usable) {
    for (std::size_t i = first; i < last; ++i) {
      const ConfigOutcome o = memo_->evaluate_at(i, work_units_);
      acc.add({o.t_s, o.energy_j, i});
    }
    return;
  }
  std::size_t i = first;
  while (i < last) {
    if (i < hetero_) {
      const std::size_t a = i / amd_points_;
      const std::size_t row_end = std::min(last, (a + 1) * amd_points_);
      hetero_run(a, i - a * amd_points_, row_end - a * amd_points_, i, acc);
      i = row_end;
    } else if (i < hetero_ + arm_points_) {
      const std::size_t end = std::min(last, hetero_ + arm_points_);
      homogeneous_run(arm_, i - hetero_, end - hetero_, i, acc);
      i = end;
    } else {
      const std::size_t base = hetero_ + arm_points_;
      homogeneous_run(amd_, i - base, last - base, i, acc);
      i = last;
    }
  }
}

// The two run bodies below replay, per lane, the exact operation
// sequence of MemoizedConfigEvaluator::evaluate_hetero /
// evaluate_*_only: the k-based matched split followed by
// CompiledOperatingPoint::predict on each side and max/sum combination.
// Same operations, same order, same operands — so the straight-line
// form is bit-identical to the scalar path (the w == 0 early-out in
// predict() is equivalent to running the expressions through: every
// term is exactly +0.0). Keeping the loops branch-free over contiguous
// arrays is what lets -O3 autovectorize them without -ffast-math.

void TwoTypeSweepKernel::hetero_run(std::size_t arm_index,
                                    std::size_t amd_first,
                                    std::size_t amd_last,
                                    std::size_t tag_base,
                                    ParetoAccumulator& acc) const {
  const double work = work_units_;
  const double k_a = arm_.k[arm_index];
  const double a_n = arm_.n[arm_index];
  const double a_f = arm_.f_hz[arm_index];
  const double a_cact = arm_.cact[arm_index];
  const double a_ncact = arm_.n_cact[arm_index];
  const double a_spimem = arm_.spi_mem[arm_index];
  const double a_pact = arm_.p_act[arm_index];
  const double a_pstall = arm_.p_stall[arm_index];

  double tbuf[kSlice];
  double ebuf[kSlice];
  for (std::size_t base = amd_first; base < amd_last; base += kSlice) {
    const std::size_t len = std::min(kSlice, amd_last - base);
    const double* __restrict d_k = amd_.k.data() + base;
    const double* __restrict d_n = amd_.n.data() + base;
    const double* __restrict d_f = amd_.f_hz.data() + base;
    const double* __restrict d_cact = amd_.cact.data() + base;
    const double* __restrict d_ncact = amd_.n_cact.data() + base;
    const double* __restrict d_spimem = amd_.spi_mem.data() + base;
    const double* __restrict d_pact = amd_.p_act.data() + base;
    const double* __restrict d_pstall = amd_.p_stall.data() + base;
    for (std::size_t j = 0; j < len; ++j) {
      // match_split(k_a, k_d, work): shares proportional to rates.
      const double k_d = d_k[j];
      const double units_a = work * k_d / (k_a + k_d);
      const double units_d = work - units_a;

      // ARM side: predict(units_a) on the fixed arm entry.
      const double ti_a = units_a * arm_.inst_per_unit;
      const double ic_a = ti_a / a_ncact;
      const double tcore_a = ic_a * (arm_.wpi + arm_.spi_core) / a_f;
      const double tmem_a = ic_a * (arm_.wpi + a_spimem) / a_f;
      const double tcpu_a = std::max(tcore_a, tmem_a);
      const double tio_a = units_a * arm_.io_s_per_unit / a_n;
      const double t_a = std::max(tcpu_a, tio_a);
      const double tact_a = ic_a * arm_.wpi / a_f;
      double tstall_a;
      double membusy_a;
      if (arm_.eq17) {
        tstall_a = ic_a * arm_.spi_core / a_f;
        membusy_a = tmem_a;
      } else {
        tstall_a = std::max(0.0, tcpu_a - tact_a);
        const double pcms_a = ic_a * a_spimem / a_f;
        membusy_a = std::min(t_a, a_cact * pcms_a);
      }
      const double ecore_a = (a_pact * tact_a + a_pstall * tstall_a) * a_cact;
      const double emem_a = arm_.mem_active_w * membusy_a;
      const double transfer_a =
          units_a * arm_.io_bytes_per_unit / arm_.bandwidth_bytes_s / a_n;
      const double eio_a =
          arm_.io_active_w * (arm_.eq17 ? tio_a : transfer_a);
      const double eidle_a = arm_.idle_w * t_a;
      const double e_a =
          ecore_a * a_n + emem_a * a_n + eio_a * a_n + eidle_a * a_n;

      // AMD side: predict(units_d) on the lane's amd entry.
      const double ti_d = units_d * amd_.inst_per_unit;
      const double ic_d = ti_d / d_ncact[j];
      const double tcore_d = ic_d * (amd_.wpi + amd_.spi_core) / d_f[j];
      const double tmem_d = ic_d * (amd_.wpi + d_spimem[j]) / d_f[j];
      const double tcpu_d = std::max(tcore_d, tmem_d);
      const double tio_d = units_d * amd_.io_s_per_unit / d_n[j];
      const double t_d = std::max(tcpu_d, tio_d);
      const double tact_d = ic_d * amd_.wpi / d_f[j];
      double tstall_d;
      double membusy_d;
      if (amd_.eq17) {
        tstall_d = ic_d * amd_.spi_core / d_f[j];
        membusy_d = tmem_d;
      } else {
        tstall_d = std::max(0.0, tcpu_d - tact_d);
        const double pcms_d = ic_d * d_spimem[j] / d_f[j];
        membusy_d = std::min(t_d, d_cact[j] * pcms_d);
      }
      const double ecore_d =
          (d_pact[j] * tact_d + d_pstall[j] * tstall_d) * d_cact[j];
      const double emem_d = amd_.mem_active_w * membusy_d;
      const double transfer_d =
          units_d * amd_.io_bytes_per_unit / amd_.bandwidth_bytes_s / d_n[j];
      const double eio_d =
          amd_.io_active_w * (amd_.eq17 ? tio_d : transfer_d);
      const double eidle_d = amd_.idle_w * t_d;
      const double e_d = ecore_d * d_n[j] + emem_d * d_n[j] +
                         eio_d * d_n[j] + eidle_d * d_n[j];

      tbuf[j] = std::max(t_a, t_d);
      ebuf[j] = e_a + e_d;
    }
    const std::size_t tag0 = tag_base + (base - amd_first);
    for (std::size_t j = 0; j < len; ++j) {
      acc.add({tbuf[j], ebuf[j], tag0 + j});
    }
  }
}

void TwoTypeSweepKernel::homogeneous_run(const SideSoA& side,
                                         std::size_t entry_first,
                                         std::size_t entry_last,
                                         std::size_t tag_base,
                                         ParetoAccumulator& acc) const {
  const double work = work_units_;
  double tbuf[kSlice];
  double ebuf[kSlice];
  for (std::size_t base = entry_first; base < entry_last; base += kSlice) {
    const std::size_t len = std::min(kSlice, entry_last - base);
    const double* __restrict s_n = side.n.data() + base;
    const double* __restrict s_f = side.f_hz.data() + base;
    const double* __restrict s_cact = side.cact.data() + base;
    const double* __restrict s_ncact = side.n_cact.data() + base;
    const double* __restrict s_spimem = side.spi_mem.data() + base;
    const double* __restrict s_pact = side.p_act.data() + base;
    const double* __restrict s_pstall = side.p_stall.data() + base;
    for (std::size_t j = 0; j < len; ++j) {
      const double ti = work * side.inst_per_unit;
      const double ic = ti / s_ncact[j];
      const double tcore = ic * (side.wpi + side.spi_core) / s_f[j];
      const double tmem = ic * (side.wpi + s_spimem[j]) / s_f[j];
      const double tcpu = std::max(tcore, tmem);
      const double tio = work * side.io_s_per_unit / s_n[j];
      const double t = std::max(tcpu, tio);
      const double tact = ic * side.wpi / s_f[j];
      double tstall;
      double membusy;
      if (side.eq17) {
        tstall = ic * side.spi_core / s_f[j];
        membusy = tmem;
      } else {
        tstall = std::max(0.0, tcpu - tact);
        const double pcms = ic * s_spimem[j] / s_f[j];
        membusy = std::min(t, s_cact[j] * pcms);
      }
      const double ecore = (s_pact[j] * tact + s_pstall[j] * tstall) *
                           s_cact[j];
      const double emem = side.mem_active_w * membusy;
      const double transfer =
          work * side.io_bytes_per_unit / side.bandwidth_bytes_s / s_n[j];
      const double eio = side.io_active_w * (side.eq17 ? tio : transfer);
      const double eidle = side.idle_w * t;
      tbuf[j] = t;
      ebuf[j] = ecore * s_n[j] + emem * s_n[j] + eio * s_n[j] +
                eidle * s_n[j];
    }
    const std::size_t tag0 = tag_base + (base - entry_first);
    for (std::size_t j = 0; j < len; ++j) {
      acc.add({tbuf[j], ebuf[j], tag0 + j});
    }
  }
}

}  // namespace hec
