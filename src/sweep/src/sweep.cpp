#include "hec/sweep/sweep.h"

#include <atomic>
#include <optional>
#include <utility>

#include "hec/obs/obs.h"
#include "hec/pareto/robust_frontier.h"
#include "hec/pareto/streaming.h"
#include "hec/sweep/kernel.h"
#include "hec/sweep/reduction.h"
#include "hec/util/expect.h"

namespace hec {

namespace {

/// Runs the generic streaming reduction (hec/sweep/reduction.h) over the
/// whole index space in one pass; per-worker partial frontiers merge at
/// the end. The result is bit-identical for any claim size, worker count
/// or compaction limit (see hec/pareto/streaming.h). `seed` pre-loads
/// one accumulator with already-evaluated points of the space (see
/// two_type_incumbents) so bound-and-prune can fire from the first
/// chunk.
template <typename ConsumeBlock>
SweepResult run_streaming_reduction(std::size_t total, std::size_t claim,
                                    const SweepOptions& opts,
                                    std::vector<TimeEnergyPoint> seed,
                                    const ConsumeBlock& consume_block) {
  SweepResult result;
  result.stats.configs = total;
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : global_pool();
  RangeReduction reduction =
      reduce_index_range(pool, opts.parallel, 0, total, claim,
                         opts.compact_limit, std::move(seed), consume_block);
  result.stats.blocks = reduction.blocks;
  result.stats.workers = reduction.workers;
  result.frontier = merge_frontiers(reduction.partials);
  return result;
}

SweepResult finish(SweepResult result) {
  HEC_GAUGE_SET("sweep.frontier_size",
                static_cast<double>(result.frontier.size()));
  HEC_COUNTER_ADD("sweep.configs",
                  static_cast<double>(result.stats.configs));
  return result;
}

std::vector<TimeEnergyPoint> outcome_points(
    std::span<const ConfigOutcome> outcomes) {
  std::vector<TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  return points;
}

/// Shared evaluated/pruned accounting for the non-kernel sweep paths
/// (robust, multi), accumulated relaxed across workers.
struct PruneCounters {
  std::atomic<std::size_t> evaluated{0};
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> chunks_pruned{0};

  void store_into(SweepStats& stats) const {
    stats.evaluated = evaluated.load(std::memory_order_relaxed);
    stats.pruned = pruned.load(std::memory_order_relaxed);
    stats.blocks_pruned = chunks_pruned.load(std::memory_order_relaxed);
  }
};

/// walk_with_bounds (hec/sweep/bounds.h) plus the shared-counter and
/// observability accounting every non-kernel sweep body needs.
template <typename EvalRange>
void consume_with_bounds(const BlockBoundTable* bounds, std::size_t first,
                         std::size_t count, ParetoAccumulator& acc,
                         PruneCounters& counters, const EvalRange& eval) {
  const BoundWalkStats walk = walk_with_bounds(bounds, first, count, acc, eval);
  counters.evaluated.fetch_add(walk.evaluated, std::memory_order_relaxed);
  counters.pruned.fetch_add(walk.pruned, std::memory_order_relaxed);
  counters.chunks_pruned.fetch_add(walk.chunks_pruned,
                                   std::memory_order_relaxed);
  if (walk.chunks_pruned > 0) {
    HEC_COUNTER_ADD("sweep.blocks_pruned",
                    static_cast<double>(walk.chunks_pruned));
  }
}

}  // namespace

SweepResult sweep_frontier(const NodeTypeModel& arm_model,
                           const NodeTypeModel& amd_model,
                           const EnumerationLimits& limits,
                           double work_units, const SweepOptions& opts) {
  HEC_SPAN("sweep.frontier");
  const MemoizedConfigEvaluator memo(arm_model, amd_model, limits);
  const TwoTypeSweepKernel kernel(memo, work_units,
                                  {opts.prune, opts.simd, opts.prune_chunk});
  SweepResult result = run_streaming_reduction(
      memo.size(), opts.block, opts, kernel.incumbents(),
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        kernel.consume(first, count, acc);
      });
  const KernelStats ks = kernel.stats();
  result.stats.evaluated = ks.evaluated;
  result.stats.pruned = ks.pruned;
  result.stats.blocks_pruned = ks.chunks_pruned;
  return finish(std::move(result));
}

SweepResult sweep_frontier_reference(const NodeTypeModel& arm_model,
                                     const NodeTypeModel& amd_model,
                                     const EnumerationLimits& limits,
                                     double work_units,
                                     const SweepOptions& opts) {
  HEC_SPAN("sweep.frontier_reference");
  // The reference still materialises every outcome and sorts globally —
  // that is the pipeline it measures — but compiles each node type's
  // deployments once (DeploymentTable) instead of recompiling the full
  // model per configuration. Outcomes are bit-identical either way (see
  // MemoizedConfigEvaluator), so the frontier is unchanged.
  const MemoizedConfigEvaluator memo(arm_model, amd_model, limits);
  std::vector<ConfigOutcome> outcomes(memo.size());
  const auto eval_at = [&](std::size_t i) {
    outcomes[i] = memo.evaluate_at(i, work_units);
  };
  if (opts.parallel) {
    ThreadPool& pool = opts.pool != nullptr ? *opts.pool : global_pool();
    parallel_for(0, memo.size(), eval_at, pool);
  } else {
    for (std::size_t i = 0; i < memo.size(); ++i) eval_at(i);
  }
  HEC_COUNTER_ADD("config.evaluations", static_cast<double>(memo.size()));
  SweepResult result;
  result.stats.configs = memo.size();
  result.stats.blocks = 1;
  result.stats.evaluated = memo.size();
  result.frontier = pareto_frontier(outcome_points(outcomes));
  return finish(std::move(result));
}

SweepResult sweep_robust_frontier(const RobustConfigEvaluator& evaluator,
                                  const EnumerationLimits& limits,
                                  double work_units, double deadline_s,
                                  double max_miss_prob,
                                  const SweepOptions& opts) {
  HEC_EXPECTS(max_miss_prob >= 0.0 && max_miss_prob <= 1.0);
  HEC_SPAN("sweep.robust_frontier");
  const ConfigSpaceLayout layout(evaluator.arm_model().spec(),
                                 evaluator.amd_model().spec(), limits);
  // Pruning against nominal bounds is sound only when the fault model is
  // inert: every outcome is then one exact nominal trial plus overheads
  // that only add time and energy, so the nominal corner stays a lower
  // bound on (E[time], E[energy]). Active faults (stragglers, thermal
  // caps, crashes) can reshape outcomes in either direction — pruning
  // disables and the sweep degrades to evaluate-everything.
  const bool prune =
      opts.prune && !evaluator.faults().enabled() && work_units > 0.0;
  std::optional<MemoizedConfigEvaluator> nominal;
  std::optional<BlockBoundTable> bounds;
  if (prune) {
    nominal.emplace(evaluator.arm_model(), evaluator.amd_model(), limits);
    bounds.emplace(BlockBoundTable::for_two_type(*nominal, work_units,
                                                 opts.prune_chunk));
  }
  PruneCounters counters;
  SweepResult result = run_streaming_reduction(
      layout.size(), opts.robust_block, opts, {},
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        consume_with_bounds(
            bounds.has_value() ? &*bounds : nullptr, first, count, acc,
            counters,
            [&](std::size_t s, std::size_t e, ParetoAccumulator& a) {
              for (std::size_t i = s; i < e; ++i) {
                const RobustOutcome o =
                    evaluator.evaluate(layout.config(i), work_units,
                                       deadline_s, /*parallel=*/false);
                // Same admissibility test as robust_pareto_frontier.
                if (o.miss_prob <= max_miss_prob) {
                  a.add({o.mean_t_s, o.mean_energy_j, i});
                }
              }
            });
      });
  counters.store_into(result.stats);
  return finish(std::move(result));
}

SweepResult sweep_robust_frontier_reference(
    const RobustConfigEvaluator& evaluator, const EnumerationLimits& limits,
    double work_units, double deadline_s, double max_miss_prob,
    const SweepOptions& opts) {
  HEC_SPAN("sweep.robust_frontier_reference");
  const std::vector<ClusterConfig> configs = enumerate_configs(
      evaluator.arm_model().spec(), evaluator.amd_model().spec(), limits);
  const std::vector<RobustOutcome> outcomes =
      evaluator.evaluate_all(configs, work_units, deadline_s, opts.parallel);
  std::vector<RobustPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back(
        {outcomes[i].mean_t_s, outcomes[i].mean_energy_j,
         outcomes[i].miss_prob, i});
  }
  SweepResult result;
  result.stats.configs = configs.size();
  result.stats.blocks = 1;
  result.stats.evaluated = configs.size();
  result.frontier = robust_pareto_frontier(points, max_miss_prob);
  return finish(std::move(result));
}

SweepResult sweep_multi_frontier(std::vector<const NodeTypeModel*> models,
                                 std::span<const int> limits,
                                 double work_units,
                                 const SweepOptions& opts) {
  HEC_SPAN("sweep.multi_frontier");
  const MemoizedMultiEvaluator memo(std::move(models), limits);
  std::optional<BlockBoundTable> bounds;
  if (opts.prune && work_units > 0.0) {
    bounds.emplace(
        BlockBoundTable::for_multi(memo, work_units, opts.prune_chunk));
  }
  PruneCounters counters;
  SweepResult result = run_streaming_reduction(
      memo.size(), opts.block, opts, {},
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        consume_with_bounds(
            bounds.has_value() ? &*bounds : nullptr, first, count, acc,
            counters,
            [&](std::size_t s, std::size_t e, ParetoAccumulator& a) {
              for (std::size_t i = s; i < e; ++i) {
                const MultiOutcome o = memo.evaluate_at(i, work_units);
                a.add({o.t_s, o.energy_j, i});
              }
              HEC_COUNTER_ADD("config.evaluations",
                              static_cast<double>(e - s));
            });
      });
  counters.store_into(result.stats);
  return finish(std::move(result));
}

SweepResult sweep_multi_frontier_reference(
    std::vector<const NodeTypeModel*> models, std::span<const int> limits,
    double work_units, const SweepOptions& opts) {
  HEC_SPAN("sweep.multi_frontier_reference");
  std::vector<NodeSpec> specs;
  specs.reserve(models.size());
  for (const NodeTypeModel* m : models) {
    HEC_EXPECTS(m != nullptr);
    specs.push_back(m->spec());
  }
  const std::vector<MultiClusterConfig> configs =
      enumerate_multi(specs, limits);
  const MultiEvaluator evaluator(std::move(models));
  const std::vector<MultiOutcome> outcomes =
      evaluator.evaluate_all(configs, work_units, opts.parallel);
  std::vector<TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  SweepResult result;
  result.stats.configs = configs.size();
  result.stats.blocks = 1;
  result.stats.evaluated = configs.size();
  result.frontier = pareto_frontier(std::move(points));
  return finish(std::move(result));
}

}  // namespace hec
