#include "hec/sweep/sweep.h"

#include <utility>

#include "hec/obs/obs.h"
#include "hec/pareto/robust_frontier.h"
#include "hec/pareto/streaming.h"
#include "hec/sweep/reduction.h"
#include "hec/util/expect.h"

namespace hec {

namespace {

/// Runs the generic streaming reduction (hec/sweep/reduction.h) over the
/// whole index space in one pass; per-worker partial frontiers merge at
/// the end. The result is bit-identical for any claim size, worker count
/// or compaction limit (see hec/pareto/streaming.h).
template <typename ConsumeBlock>
SweepResult run_streaming_reduction(std::size_t total, std::size_t claim,
                                    const SweepOptions& opts,
                                    const ConsumeBlock& consume_block) {
  SweepResult result;
  result.stats.configs = total;
  ThreadPool& pool = opts.pool != nullptr ? *opts.pool : global_pool();
  RangeReduction reduction =
      reduce_index_range(pool, opts.parallel, 0, total, claim,
                         opts.compact_limit, {}, consume_block);
  result.stats.blocks = reduction.blocks;
  result.stats.workers = reduction.workers;
  result.frontier = merge_frontiers(reduction.partials);
  return result;
}

SweepResult finish(SweepResult result) {
  HEC_GAUGE_SET("sweep.frontier_size",
                static_cast<double>(result.frontier.size()));
  HEC_COUNTER_ADD("sweep.configs",
                  static_cast<double>(result.stats.configs));
  return result;
}

std::vector<TimeEnergyPoint> outcome_points(
    std::span<const ConfigOutcome> outcomes) {
  std::vector<TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  return points;
}

}  // namespace

SweepResult sweep_frontier(const NodeTypeModel& arm_model,
                           const NodeTypeModel& amd_model,
                           const EnumerationLimits& limits,
                           double work_units, const SweepOptions& opts) {
  HEC_SPAN("sweep.frontier");
  const MemoizedConfigEvaluator memo(arm_model, amd_model, limits);
  SweepResult result = run_streaming_reduction(
      memo.size(), opts.block, opts,
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        for (std::size_t i = first; i < first + count; ++i) {
          const ConfigOutcome o = memo.evaluate_at(i, work_units);
          acc.add({o.t_s, o.energy_j, i});
        }
        // Batch accounting: the memoized evaluator does not bump the
        // counter per call, so sweep totals stay comparable with the
        // naive path's per-evaluation increments.
        HEC_COUNTER_ADD("config.evaluations", static_cast<double>(count));
      });
  return finish(std::move(result));
}

SweepResult sweep_frontier_reference(const NodeTypeModel& arm_model,
                                     const NodeTypeModel& amd_model,
                                     const EnumerationLimits& limits,
                                     double work_units,
                                     const SweepOptions& opts) {
  HEC_SPAN("sweep.frontier_reference");
  const std::vector<ClusterConfig> configs =
      enumerate_configs(arm_model.spec(), amd_model.spec(), limits);
  const ConfigEvaluator evaluator(arm_model, amd_model);
  const std::vector<ConfigOutcome> outcomes =
      evaluator.evaluate_all(configs, work_units, opts.parallel);
  SweepResult result;
  result.stats.configs = configs.size();
  result.stats.blocks = 1;
  result.frontier = pareto_frontier(outcome_points(outcomes));
  return finish(std::move(result));
}

SweepResult sweep_robust_frontier(const RobustConfigEvaluator& evaluator,
                                  const EnumerationLimits& limits,
                                  double work_units, double deadline_s,
                                  double max_miss_prob,
                                  const SweepOptions& opts) {
  HEC_EXPECTS(max_miss_prob >= 0.0 && max_miss_prob <= 1.0);
  HEC_SPAN("sweep.robust_frontier");
  const ConfigSpaceLayout layout(evaluator.arm_model().spec(),
                                 evaluator.amd_model().spec(), limits);
  SweepResult result = run_streaming_reduction(
      layout.size(), opts.robust_block, opts,
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        for (std::size_t i = first; i < first + count; ++i) {
          const RobustOutcome o =
              evaluator.evaluate(layout.config(i), work_units, deadline_s,
                                 /*parallel=*/false);
          // Same admissibility test as robust_pareto_frontier.
          if (o.miss_prob <= max_miss_prob) {
            acc.add({o.mean_t_s, o.mean_energy_j, i});
          }
        }
      });
  return finish(std::move(result));
}

SweepResult sweep_robust_frontier_reference(
    const RobustConfigEvaluator& evaluator, const EnumerationLimits& limits,
    double work_units, double deadline_s, double max_miss_prob,
    const SweepOptions& opts) {
  HEC_SPAN("sweep.robust_frontier_reference");
  const std::vector<ClusterConfig> configs = enumerate_configs(
      evaluator.arm_model().spec(), evaluator.amd_model().spec(), limits);
  const std::vector<RobustOutcome> outcomes =
      evaluator.evaluate_all(configs, work_units, deadline_s, opts.parallel);
  std::vector<RobustPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back(
        {outcomes[i].mean_t_s, outcomes[i].mean_energy_j,
         outcomes[i].miss_prob, i});
  }
  SweepResult result;
  result.stats.configs = configs.size();
  result.stats.blocks = 1;
  result.frontier = robust_pareto_frontier(points, max_miss_prob);
  return finish(std::move(result));
}

SweepResult sweep_multi_frontier(std::vector<const NodeTypeModel*> models,
                                 std::span<const int> limits,
                                 double work_units,
                                 const SweepOptions& opts) {
  HEC_SPAN("sweep.multi_frontier");
  const MemoizedMultiEvaluator memo(std::move(models), limits);
  SweepResult result = run_streaming_reduction(
      memo.size(), opts.block, opts,
      [&](std::size_t first, std::size_t count, ParetoAccumulator& acc) {
        for (std::size_t i = first; i < first + count; ++i) {
          const MultiOutcome o = memo.evaluate_at(i, work_units);
          acc.add({o.t_s, o.energy_j, i});
        }
        HEC_COUNTER_ADD("config.evaluations", static_cast<double>(count));
      });
  return finish(std::move(result));
}

SweepResult sweep_multi_frontier_reference(
    std::vector<const NodeTypeModel*> models, std::span<const int> limits,
    double work_units, const SweepOptions& opts) {
  HEC_SPAN("sweep.multi_frontier_reference");
  std::vector<NodeSpec> specs;
  specs.reserve(models.size());
  for (const NodeTypeModel* m : models) {
    HEC_EXPECTS(m != nullptr);
    specs.push_back(m->spec());
  }
  const std::vector<MultiClusterConfig> configs =
      enumerate_multi(specs, limits);
  const MultiEvaluator evaluator(std::move(models));
  const std::vector<MultiOutcome> outcomes =
      evaluator.evaluate_all(configs, work_units, opts.parallel);
  std::vector<TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  SweepResult result;
  result.stats.configs = configs.size();
  result.stats.blocks = 1;
  result.frontier = pareto_frontier(std::move(points));
  return finish(std::move(result));
}

}  // namespace hec
