#include "hec/sweep/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Relative slack between the real-arithmetic bound and the engine's
/// floating-point replay; the replay's rounding error is ≲ 1e-13, so
/// 1e-9 leaves orders of magnitude of margin.
constexpr double kBoundSlack = 1.0 - 1e-9;

/// Linear chunk scan. A matched split equalises per-side times, so a
/// configuration with combined rate R = Σ 1/k and combined busy power
/// P = Σ e/k services W units in exactly t = W/R seconds for exactly
/// e = W·P/R joules (both linear-homogeneous in W). The per-chunk
/// reductions therefore track max R (→ the chunk's true minimum time)
/// and min P/R (→ the chunk's true minimum energy): the corner is the
/// tightest axis-aligned bound the chunk admits, not a loose cross of
/// one config's power with another's rate.
struct ChunkScan {
  ChunkScan(std::size_t total, std::size_t chunk)
      : chunk_left(chunk),
        chunk_size(chunk),
        rate_max((total + chunk - 1) / chunk, -kInf),
        epu_min((total + chunk - 1) / chunk, kInf) {}

  void feed(double rate, double power) {
    const double epu = power / rate;  // energy per work unit, this config
    if (rate > rate_max[cursor]) rate_max[cursor] = rate;
    if (epu < epu_min[cursor]) epu_min[cursor] = epu;
    if (--chunk_left == 0) {
      chunk_left = chunk_size;
      ++cursor;
    }
  }

  std::size_t chunk_left;
  std::size_t chunk_size;
  std::size_t cursor = 0;
  std::vector<double> rate_max;
  std::vector<double> epu_min;
};

/// Per-entry execution rate (1/k) and busy power (energy per second at
/// full tilt, e/k) of one side's deployment table.
struct SideRates {
  std::vector<double> rate;
  std::vector<double> power;
};

SideRates side_rates(const DeploymentTable& table) {
  SideRates s;
  s.rate.resize(table.size());
  s.power.resize(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const DeploymentEntry& e = table.entry(i);
    s.rate[i] = 1.0 / e.time_per_unit;
    s.power[i] = e.op.energy_per_unit() * s.rate[i];
  }
  return s;
}

/// Corner of one chunk: t = W/max R, e = W·min(P/R) in real arithmetic,
/// both shrunk by the slack. Anything non-finite (degenerate entries,
/// empty trailing chunk) collapses to -infinity: never dominated, never
/// pruned.
std::pair<std::vector<double>, std::vector<double>> finalize(
    const ChunkScan& scan, double work_units) {
  std::vector<double> t_lo(scan.rate_max.size());
  std::vector<double> e_lo(scan.rate_max.size());
  for (std::size_t c = 0; c < t_lo.size(); ++c) {
    const double rate = scan.rate_max[c];
    const double epu = scan.epu_min[c];
    double t = work_units / rate * kBoundSlack;
    double e = work_units * epu * kBoundSlack;
    if (!(rate > 0.0) || !std::isfinite(t) || !std::isfinite(e)) {
      t = -kInf;
      e = -kInf;
    }
    t_lo[c] = t;
    e_lo[c] = e;
  }
  return {std::move(t_lo), std::move(e_lo)};
}

}  // namespace

BlockBoundTable::BlockBoundTable(std::size_t chunk, std::vector<double> t_lo,
                                 std::vector<double> e_lo)
    : chunk_(chunk), t_lo_(std::move(t_lo)), e_lo_(std::move(e_lo)) {}

BlockBoundTable BlockBoundTable::for_two_type(
    const MemoizedConfigEvaluator& memo, double work_units,
    std::size_t chunk) {
  HEC_EXPECTS(chunk >= 1);
  HEC_EXPECTS(work_units > 0.0);
  HEC_SPAN("sweep.bounds_build");
  const ConfigSpaceLayout& layout = memo.layout();
  const std::size_t total = layout.size();
  const SideRates arm = side_rates(memo.arm_table());
  const SideRates amd = side_rates(memo.amd_table());

  ChunkScan scan(total, chunk);
  // Hetero region (ARM-major): rates and powers add across the pair.
  for (std::size_t a = 0; a < arm.rate.size(); ++a) {
    const double ra = arm.rate[a];
    const double pa = arm.power[a];
    for (std::size_t d = 0; d < amd.rate.size(); ++d) {
      scan.feed(ra + amd.rate[d], pa + amd.power[d]);
    }
  }
  // Homogeneous tails: single-type rates.
  for (std::size_t a = 0; a < arm.rate.size(); ++a) {
    scan.feed(arm.rate[a], arm.power[a]);
  }
  for (std::size_t d = 0; d < amd.rate.size(); ++d) {
    scan.feed(amd.rate[d], amd.power[d]);
  }

  auto [t_lo, e_lo] = finalize(scan, work_units);
  return BlockBoundTable(chunk, std::move(t_lo), std::move(e_lo));
}

BlockBoundTable BlockBoundTable::for_multi(const MemoizedMultiEvaluator& memo,
                                           double work_units,
                                           std::size_t chunk) {
  HEC_EXPECTS(chunk >= 1);
  HEC_EXPECTS(work_units > 0.0);
  const std::size_t types = memo.types();
  const std::size_t total = memo.size();

  // Per-type option arrays; option 0 is "absent" (rate 0, power 0).
  std::vector<std::vector<double>> rate(types), power(types);
  std::vector<std::size_t> radix(types);
  for (std::size_t t = 0; t < types; ++t) {
    const SideRates s = side_rates(memo.table(t));
    rate[t].assign(1, 0.0);
    rate[t].insert(rate[t].end(), s.rate.begin(), s.rate.end());
    power[t].assign(1, 0.0);
    power[t].insert(power[t].end(), s.power.begin(), s.power.end());
    radix[t] = rate[t].size();
  }

  // Odometer walk (type 0 fastest, combo = index + 1: the all-absent
  // point is skipped), summing fresh each index so no incremental
  // floating-point drift enters the bound.
  std::vector<std::size_t> digit(types, 0);
  {
    std::size_t combo = 1;
    for (std::size_t t = 0; t < types; ++t) {
      digit[t] = combo % radix[t];
      combo /= radix[t];
    }
  }
  ChunkScan scan(total, chunk);
  for (std::size_t i = 0;;) {
    double rsum = 0.0;
    double psum = 0.0;
    for (std::size_t t = 0; t < types; ++t) {
      rsum += rate[t][digit[t]];
      psum += power[t][digit[t]];
    }
    scan.feed(rsum, psum);
    if (++i == total) break;
    for (std::size_t pos = 0;; ++pos) {
      if (++digit[pos] < radix[pos]) break;
      digit[pos] = 0;
    }
  }

  auto [t_lo, e_lo] = finalize(scan, work_units);
  return BlockBoundTable(chunk, std::move(t_lo), std::move(e_lo));
}

std::vector<TimeEnergyPoint> two_type_incumbents(
    const MemoizedConfigEvaluator& memo, double work_units) {
  const ConfigSpaceLayout& layout = memo.layout();
  const std::size_t arm_points = layout.arm_points();
  const std::size_t amd_points = layout.amd_points();
  const std::size_t hetero = arm_points * amd_points;

  // Per side: fastest (min time-per-unit), lowest busy power, lowest
  // energy-per-unit. Ties resolve to the lowest deployment index, so
  // the pick — and therefore the seed — is deterministic.
  const auto picks = [](const DeploymentTable& table) {
    std::vector<std::size_t> out;
    if (table.size() == 0) return out;
    std::size_t fastest = 0, coolest = 0, cheapest = 0;
    double best_k = kInf, best_p = kInf, best_epu = kInf;
    for (std::size_t i = 0; i < table.size(); ++i) {
      const DeploymentEntry& e = table.entry(i);
      const double k = e.time_per_unit;
      const double epu = e.op.energy_per_unit();
      const double p = epu / k;
      if (k < best_k) { best_k = k; fastest = i; }
      if (p < best_p) { best_p = p; coolest = i; }
      if (epu < best_epu) { best_epu = epu; cheapest = i; }
    }
    out = {fastest, coolest, cheapest};
    return out;
  };
  const std::vector<std::size_t> arm_picks = picks(memo.arm_table());
  const std::vector<std::size_t> amd_picks = picks(memo.amd_table());

  std::vector<std::size_t> indices;
  for (const std::size_t a : arm_picks) {
    for (const std::size_t d : amd_picks) {
      indices.push_back(a * amd_points + d);
    }
  }
  for (const std::size_t a : arm_picks) indices.push_back(hetero + a);
  for (const std::size_t d : amd_picks) {
    indices.push_back(hetero + arm_points + d);
  }
  std::sort(indices.begin(), indices.end());
  indices.erase(std::unique(indices.begin(), indices.end()), indices.end());

  std::vector<TimeEnergyPoint> points;
  points.reserve(indices.size());
  for (const std::size_t i : indices) {
    const ConfigOutcome o = memo.evaluate_at(i, work_units);
    points.push_back({o.t_s, o.energy_j, i});
  }
  return pareto_frontier(std::move(points));
}

}  // namespace hec
