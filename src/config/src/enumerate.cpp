#include "hec/config/enumerate.h"

#include <algorithm>

#include "hec/util/expect.h"

namespace hec {

namespace {
/// Every (nodes, cores, f) deployment of one type with n in [lo, hi].
std::vector<NodeConfig> type_sweep(const NodeSpec& spec, int lo, int hi) {
  std::vector<NodeConfig> out;
  for (int n = lo; n <= hi; ++n) {
    for (int c = 1; c <= spec.cores; ++c) {
      for (double f : spec.pstates.frequencies_ghz()) {
        out.push_back(NodeConfig{n, c, f});
      }
    }
  }
  return out;
}

NodeConfig unused_type(const NodeSpec& spec) {
  return NodeConfig{0, 1, spec.pstates.min_ghz()};
}
}  // namespace

ConfigSpaceLayout::ConfigSpaceLayout(const NodeSpec& arm, const NodeSpec& amd,
                                     const EnumerationLimits& limits) {
  HEC_EXPECTS(limits.max_arm_nodes >= 0);
  HEC_EXPECTS(limits.max_amd_nodes >= 0);
  HEC_EXPECTS(limits.max_arm_nodes + limits.max_amd_nodes >= 1);
  arm_ = make_axis(arm, limits.max_arm_nodes);
  amd_ = make_axis(amd, limits.max_amd_nodes);
  hetero_ = arm_.points * amd_.points;
  size_ = hetero_ + arm_.points + amd_.points;
}

ConfigSpaceLayout::TypeAxis ConfigSpaceLayout::make_axis(const NodeSpec& spec,
                                                         int max_nodes) {
  TypeAxis axis;
  axis.cores = spec.cores;
  axis.freqs_ghz = spec.pstates.frequencies_ghz();
  axis.min_ghz = spec.pstates.min_ghz();
  axis.points = static_cast<std::size_t>(max_nodes) *
                static_cast<std::size_t>(spec.cores) * axis.freqs_ghz.size();
  return axis;
}

NodeConfig ConfigSpaceLayout::decode(const TypeAxis& axis, std::size_t index) {
  // Inverse of type_sweep's loop nest: node count outer, cores, P-state
  // inner.
  const std::size_t freqs = axis.freqs_ghz.size();
  const std::size_t per_node = static_cast<std::size_t>(axis.cores) * freqs;
  const std::size_t node_idx = index / per_node;
  const std::size_t rest = index % per_node;
  return NodeConfig{static_cast<int>(node_idx) + 1,
                    static_cast<int>(rest / freqs) + 1,
                    axis.freqs_ghz[rest % freqs]};
}

ConfigSpaceLayout::Slot ConfigSpaceLayout::slot(std::size_t index) const {
  HEC_EXPECTS(index < size_);
  Slot s;
  if (index < hetero_) {
    s.arm = index / amd_.points;
    s.amd = index % amd_.points;
  } else if (index < hetero_ + arm_.points) {
    s.arm = index - hetero_;
  } else {
    s.amd = index - hetero_ - arm_.points;
  }
  return s;
}

NodeConfig ConfigSpaceLayout::arm_deployment(std::size_t arm_index) const {
  HEC_EXPECTS(arm_index < arm_.points);
  return decode(arm_, arm_index);
}

NodeConfig ConfigSpaceLayout::amd_deployment(std::size_t amd_index) const {
  HEC_EXPECTS(amd_index < amd_.points);
  return decode(amd_, amd_index);
}

ClusterConfig ConfigSpaceLayout::config(std::size_t index) const {
  const Slot s = slot(index);
  ClusterConfig cfg;
  cfg.arm = s.arm == npos ? NodeConfig{0, 1, arm_.min_ghz}
                          : decode(arm_, s.arm);
  cfg.amd = s.amd == npos ? NodeConfig{0, 1, amd_.min_ghz}
                          : decode(amd_, s.amd);
  return cfg;
}

std::string ConfigSpaceLayout::describe() const {
  // Frequencies are listed exactly (to_chars round-trip precision lives
  // in the journal values, not here): equal descriptions really do mean
  // equal index → configuration decode.
  const auto axis_text = [](const TypeAxis& axis) {
    std::string text = std::to_string(axis.cores) + "c@";
    for (std::size_t i = 0; i < axis.freqs_ghz.size(); ++i) {
      if (i != 0) text += '/';
      text += std::to_string(axis.freqs_ghz[i]);
    }
    return text + " points=" + std::to_string(axis.points);
  };
  return "hetero arm[" + axis_text(arm_) + "] amd[" + axis_text(amd_) +
         "] total=" + std::to_string(size_);
}

std::vector<ClusterConfig> enumerate_configs(const NodeSpec& arm,
                                             const NodeSpec& amd,
                                             const EnumerationLimits& limits) {
  const ConfigSpaceLayout layout(arm, amd, limits);
  std::vector<ClusterConfig> out;
  out.reserve(layout.size());
  for (std::size_t i = 0; i < layout.size(); ++i) {
    out.push_back(layout.config(i));
  }
  HEC_ENSURES(out.size() == expected_config_count(arm, amd, limits));
  return out;
}

void for_each_config(
    const NodeSpec& arm, const NodeSpec& amd, const EnumerationLimits& limits,
    std::size_t block,
    const std::function<void(std::size_t, std::span<const ClusterConfig>)>&
        fn) {
  HEC_EXPECTS(block >= 1);
  const ConfigSpaceLayout layout(arm, amd, limits);
  std::vector<ClusterConfig> buffer;
  buffer.reserve(std::min(block, layout.size()));
  for (std::size_t first = 0; first < layout.size(); first += block) {
    const std::size_t count = std::min(block, layout.size() - first);
    buffer.clear();
    for (std::size_t i = 0; i < count; ++i) {
      buffer.push_back(layout.config(first + i));
    }
    fn(first, std::span<const ClusterConfig>(buffer));
  }
}

std::size_t expected_config_count(const NodeSpec& arm, const NodeSpec& amd,
                                  const EnumerationLimits& limits) {
  const auto arm_points = static_cast<std::size_t>(limits.max_arm_nodes) *
                          static_cast<std::size_t>(arm.cores) *
                          arm.pstates.size();
  const auto amd_points = static_cast<std::size_t>(limits.max_amd_nodes) *
                          static_cast<std::size_t>(amd.cores) *
                          amd.pstates.size();
  return arm_points * amd_points + arm_points + amd_points;
}

std::vector<ClusterConfig> enumerate_operating_points(const NodeSpec& arm,
                                                      int arm_nodes,
                                                      const NodeSpec& amd,
                                                      int amd_nodes) {
  HEC_EXPECTS(arm_nodes >= 0 && amd_nodes >= 0);
  HEC_EXPECTS(arm_nodes > 0 || amd_nodes > 0);
  std::vector<ClusterConfig> out;
  if (arm_nodes == 0) {
    for (const auto& d : type_sweep(amd, amd_nodes, amd_nodes)) {
      out.push_back(ClusterConfig{NodeConfig{0, 1, arm.pstates.min_ghz()}, d});
    }
    return out;
  }
  if (amd_nodes == 0) {
    for (const auto& a : type_sweep(arm, arm_nodes, arm_nodes)) {
      out.push_back(ClusterConfig{a, NodeConfig{0, 1, amd.pstates.min_ghz()}});
    }
    return out;
  }
  for (const auto& a : type_sweep(arm, arm_nodes, arm_nodes)) {
    for (const auto& d : type_sweep(amd, amd_nodes, amd_nodes)) {
      out.push_back(ClusterConfig{a, d});
    }
  }
  return out;
}

}  // namespace hec
