#include "hec/config/enumerate.h"

#include "hec/util/expect.h"

namespace hec {

namespace {
/// Every (nodes, cores, f) deployment of one type with n in [lo, hi].
std::vector<NodeConfig> type_sweep(const NodeSpec& spec, int lo, int hi) {
  std::vector<NodeConfig> out;
  for (int n = lo; n <= hi; ++n) {
    for (int c = 1; c <= spec.cores; ++c) {
      for (double f : spec.pstates.frequencies_ghz()) {
        out.push_back(NodeConfig{n, c, f});
      }
    }
  }
  return out;
}

NodeConfig unused_type(const NodeSpec& spec) {
  return NodeConfig{0, 1, spec.pstates.min_ghz()};
}
}  // namespace

std::vector<ClusterConfig> enumerate_configs(const NodeSpec& arm,
                                             const NodeSpec& amd,
                                             const EnumerationLimits& limits) {
  HEC_EXPECTS(limits.max_arm_nodes >= 0);
  HEC_EXPECTS(limits.max_amd_nodes >= 0);
  HEC_EXPECTS(limits.max_arm_nodes + limits.max_amd_nodes >= 1);
  std::vector<ClusterConfig> out;
  out.reserve(expected_config_count(arm, amd, limits));

  const auto arm_sweep = type_sweep(arm, 1, limits.max_arm_nodes);
  const auto amd_sweep = type_sweep(amd, 1, limits.max_amd_nodes);

  // Heterogeneous mixes: at least one node of each type.
  for (const auto& a : arm_sweep) {
    for (const auto& d : amd_sweep) {
      out.push_back(ClusterConfig{a, d});
    }
  }
  // Homogeneous sweeps.
  for (const auto& a : arm_sweep) {
    out.push_back(ClusterConfig{a, unused_type(amd)});
  }
  for (const auto& d : amd_sweep) {
    out.push_back(ClusterConfig{unused_type(arm), d});
  }
  HEC_ENSURES(out.size() == expected_config_count(arm, amd, limits));
  return out;
}

std::size_t expected_config_count(const NodeSpec& arm, const NodeSpec& amd,
                                  const EnumerationLimits& limits) {
  const auto arm_points = static_cast<std::size_t>(limits.max_arm_nodes) *
                          static_cast<std::size_t>(arm.cores) *
                          arm.pstates.size();
  const auto amd_points = static_cast<std::size_t>(limits.max_amd_nodes) *
                          static_cast<std::size_t>(amd.cores) *
                          amd.pstates.size();
  return arm_points * amd_points + arm_points + amd_points;
}

std::vector<ClusterConfig> enumerate_operating_points(const NodeSpec& arm,
                                                      int arm_nodes,
                                                      const NodeSpec& amd,
                                                      int amd_nodes) {
  HEC_EXPECTS(arm_nodes >= 0 && amd_nodes >= 0);
  HEC_EXPECTS(arm_nodes > 0 || amd_nodes > 0);
  std::vector<ClusterConfig> out;
  if (arm_nodes == 0) {
    for (const auto& d : type_sweep(amd, amd_nodes, amd_nodes)) {
      out.push_back(ClusterConfig{NodeConfig{0, 1, arm.pstates.min_ghz()}, d});
    }
    return out;
  }
  if (amd_nodes == 0) {
    for (const auto& a : type_sweep(arm, arm_nodes, arm_nodes)) {
      out.push_back(ClusterConfig{a, NodeConfig{0, 1, amd.pstates.min_ghz()}});
    }
    return out;
  }
  for (const auto& a : type_sweep(arm, arm_nodes, arm_nodes)) {
    for (const auto& d : type_sweep(amd, amd_nodes, amd_nodes)) {
      out.push_back(ClusterConfig{a, d});
    }
  }
  return out;
}

}  // namespace hec
