#include "hec/config/robust_evaluate.h"

#include "hec/fault/recovery.h"
#include "hec/obs/obs.h"
#include "hec/parallel/thread_pool.h"
#include "hec/util/expect.h"

namespace hec {

namespace {

/// Per-trial seed derivation (splitmix64 finaliser over base ^ trial):
/// well-spread seeds from consecutive trial indices, identical across
/// configurations for common-random-numbers comparisons.
std::uint64_t trial_seed(std::uint64_t base, std::uint64_t trial) {
  constexpr std::uint64_t kMul1 = 0xbf58476d1ce4e5b9ull;
  constexpr std::uint64_t kMul2 = 0x94d049bb133111ebull;
  std::uint64_t z = base ^ (trial * kMul1);
  z = (z ^ (z >> 30)) * kMul1;
  z = (z ^ (z >> 27)) * kMul2;
  return z ^ (z >> 31);
}

}  // namespace

RobustConfigEvaluator::RobustConfigEvaluator(const NodeTypeModel& arm_model,
                                             const NodeTypeModel& amd_model,
                                             const FaultConfig& faults,
                                             const MonteCarloOptions& mc)
    : nominal_(arm_model, amd_model),
      arm_(&arm_model),
      amd_(&amd_model),
      faults_(faults),
      mc_(mc) {
  HEC_EXPECTS(mc_.trials >= 1);
}

RobustOutcome RobustConfigEvaluator::evaluate(const ClusterConfig& config,
                                              double work_units,
                                              double deadline_s,
                                              bool parallel) const {
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(deadline_s > 0.0);
  HEC_EXPECTS(config.uses_arm() || config.uses_amd());

  HEC_SPAN("config.robust_evaluate");
  HEC_SCOPED_TIMER("config.eval_wall_s");
  RobustOutcome out;
  out.nominal = nominal_.evaluate(config, work_units);

  std::vector<TypedDeployment> deployments;
  if (config.uses_arm()) deployments.push_back({arm_, config.arm});
  if (config.uses_amd()) deployments.push_back({amd_, config.amd});

  // Disabled faults: one trial is exact (simulate_faulty_run returns the
  // nominal closed form), so skip the Monte Carlo loop entirely.
  const int trials = faults_.enabled() ? mc_.trials : 1;
  HEC_COUNTER_ADD("config.mc_trials", static_cast<double>(trials));

  const auto run_trial = [&](std::size_t trial) {
    return simulate_faulty_run(deployments, work_units, faults_,
                               trial_seed(mc_.base_seed, trial));
  };
  std::vector<FaultyRunResult> runs;
  if (parallel && trials > 1) {
    runs = parallel_map<FaultyRunResult>(static_cast<std::size_t>(trials),
                                         run_trial);
  } else {
    runs.reserve(static_cast<std::size_t>(trials));
    for (int k = 0; k < trials; ++k) {
      runs.push_back(run_trial(static_cast<std::size_t>(k)));
    }
  }

  int misses = 0;
  int completions = 0;
  for (const FaultyRunResult& r : runs) {
    out.mean_t_s += r.t_s;
    out.mean_energy_j += r.energy.total_j();
    out.mean_crashes += r.crashes;
    out.mean_wasted_j += r.wasted_j;
    out.mean_overhead_s += r.overhead_s;
    if (r.completed) ++completions;
    if (!r.completed || r.t_s > deadline_s) ++misses;
  }
  const double n = static_cast<double>(trials);
  out.mean_t_s /= n;
  out.mean_energy_j /= n;
  out.mean_crashes /= n;
  out.mean_wasted_j /= n;
  out.mean_overhead_s /= n;
  out.miss_prob = static_cast<double>(misses) / n;
  out.completion_prob = static_cast<double>(completions) / n;
  return out;
}

std::vector<RobustOutcome> RobustConfigEvaluator::evaluate_all(
    std::span<const ClusterConfig> configs, double work_units,
    double deadline_s, bool parallel) const {
  HEC_SPAN("config.robust_evaluate_all");
  std::vector<RobustOutcome> outcomes(configs.size());
  if (parallel) {
    // Trials stay serial inside each config: nesting parallel_for on the
    // shared pool would have workers blocking on workers. Dynamic
    // scheduling, because per-config cost varies with how many faults a
    // trial draws (crashes trigger the recovery simulation's re-matching).
    parallel_for_dynamic(0, configs.size(), /*grain=*/1, [&](std::size_t i) {
      outcomes[i] =
          evaluate(configs[i], work_units, deadline_s, /*parallel=*/false);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] =
          evaluate(configs[i], work_units, deadline_s, /*parallel=*/false);
    }
  }
  return outcomes;
}

}  // namespace hec
