#include "hec/config/deployment_table.h"

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

DeploymentTable::DeploymentTable(const NodeTypeModel& model, int max_nodes)
    : max_nodes_(max_nodes),
      cores_(model.spec().cores),
      freqs_(model.spec().pstates.size()) {
  HEC_EXPECTS(max_nodes >= 0);
  if (max_nodes == 0) return;
  HEC_SPAN("config.deployment_table_build");
  const std::vector<double>& freqs =
      model.spec().pstates.frequencies_ghz();
  entries_.reserve(static_cast<std::size_t>(max_nodes) *
                   static_cast<std::size_t>(cores_) * freqs_);
  // type_sweep order: node count outer, cores, P-state inner.
  for (int n = 1; n <= max_nodes; ++n) {
    for (int c = 1; c <= cores_; ++c) {
      for (double f : freqs) {
        const NodeConfig cfg{n, c, f};
        CompiledOperatingPoint op = model.compile(cfg);
        const double tpu = op.time_per_unit();
        entries_.push_back(DeploymentEntry{cfg, std::move(op), tpu});
      }
    }
  }
  HEC_COUNTER_ADD("config.compiled_deployments",
                  static_cast<double>(entries_.size()));
}

const DeploymentEntry& DeploymentTable::entry(int nodes, int cores,
                                              std::size_t f_index) const {
  HEC_EXPECTS(nodes >= 1 && nodes <= max_nodes_);
  HEC_EXPECTS(cores >= 1 && cores <= cores_);
  HEC_EXPECTS(f_index < freqs_);
  const std::size_t per_node = static_cast<std::size_t>(cores_) * freqs_;
  return entries_[static_cast<std::size_t>(nodes - 1) * per_node +
                  static_cast<std::size_t>(cores - 1) * freqs_ + f_index];
}

std::span<const DeploymentEntry> DeploymentTable::entries_for_nodes(
    int nodes) const {
  HEC_EXPECTS(nodes >= 1 && nodes <= max_nodes_);
  const std::size_t per_node = static_cast<std::size_t>(cores_) * freqs_;
  return std::span<const DeploymentEntry>(entries_).subspan(
      static_cast<std::size_t>(nodes - 1) * per_node, per_node);
}

}  // namespace hec
