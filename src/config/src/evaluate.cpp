#include "hec/config/evaluate.h"

#include <algorithm>

#include "hec/obs/obs.h"
#include "hec/parallel/thread_pool.h"
#include "hec/util/expect.h"

namespace hec {

ConfigEvaluator::ConfigEvaluator(const NodeTypeModel& arm_model,
                                 const NodeTypeModel& amd_model)
    : arm_(&arm_model), amd_(&amd_model) {}

ConfigOutcome ConfigEvaluator::evaluate(const ClusterConfig& config,
                                        double work_units) const {
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(config.uses_arm() || config.uses_amd());
  HEC_COUNTER_INC("config.evaluations");
  ConfigOutcome outcome;
  outcome.config = config;
  if (config.heterogeneous()) {
    const MixedPrediction mixed =
        predict_mixed(*arm_, config.arm, *amd_, config.amd, work_units);
    outcome.t_s = mixed.t_s;
    outcome.energy_j = mixed.energy_j;
    outcome.units_arm = mixed.split.units_a;
    outcome.units_amd = mixed.split.units_b;
  } else if (config.uses_arm()) {
    const Prediction p = arm_->predict(work_units, config.arm);
    outcome.t_s = p.t_s;
    outcome.energy_j = p.energy_j();
    outcome.units_arm = work_units;
  } else {
    const Prediction p = amd_->predict(work_units, config.amd);
    outcome.t_s = p.t_s;
    outcome.energy_j = p.energy_j();
    outcome.units_amd = work_units;
  }
  return outcome;
}

std::vector<ConfigOutcome> ConfigEvaluator::evaluate_all(
    std::span<const ClusterConfig> configs, double work_units,
    bool parallel) const {
  HEC_SPAN("config.evaluate_all");
  // One timer for the whole batch: a nominal evaluation is ~100 ns, so
  // per-call clock reads would cost more than the work they measure.
  // The robust evaluator times per call (each call runs MC trials).
  HEC_SCOPED_TIMER("config.eval_wall_s");
  std::vector<ConfigOutcome> outcomes(configs.size());
  if (parallel) {
    parallel_for(0, configs.size(), [&](std::size_t i) {
      outcomes[i] = evaluate(configs[i], work_units);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = evaluate(configs[i], work_units);
    }
  }
  return outcomes;
}

MemoizedConfigEvaluator::MemoizedConfigEvaluator(
    const NodeTypeModel& arm_model, const NodeTypeModel& amd_model,
    const EnumerationLimits& limits)
    : layout_(arm_model.spec(), amd_model.spec(), limits),
      arm_table_(arm_model, limits.max_arm_nodes),
      amd_table_(amd_model, limits.max_amd_nodes),
      arm_unused_{0, 1, arm_model.spec().pstates.min_ghz()},
      amd_unused_{0, 1, amd_model.spec().pstates.min_ghz()} {}

ConfigOutcome MemoizedConfigEvaluator::evaluate_at(std::size_t index,
                                                   double work_units) const {
  // One decode per call: table entries carry their NodeConfig (built in
  // the same type_sweep order the layout decodes), so the configuration
  // is assembled from cached pieces instead of re-deriving it.
  const ConfigSpaceLayout::Slot s = layout_.slot(index);
  if (s.arm != ConfigSpaceLayout::npos && s.amd != ConfigSpaceLayout::npos) {
    const DeploymentEntry& a = arm_table_.entry(s.arm);
    const DeploymentEntry& d = amd_table_.entry(s.amd);
    return evaluate_hetero(ClusterConfig{a.config, d.config}, a, d,
                           work_units);
  }
  if (s.arm != ConfigSpaceLayout::npos) {
    const DeploymentEntry& a = arm_table_.entry(s.arm);
    return evaluate_arm_only(ClusterConfig{a.config, amd_unused_}, a,
                             work_units);
  }
  const DeploymentEntry& d = amd_table_.entry(s.amd);
  return evaluate_amd_only(ClusterConfig{arm_unused_, d.config}, d,
                           work_units);
}

ConfigOutcome MemoizedConfigEvaluator::evaluate_hetero(
    const ClusterConfig& config, const DeploymentEntry& arm,
    const DeploymentEntry& amd, double work_units) {
  HEC_EXPECTS(work_units > 0.0);
  ConfigOutcome outcome;
  outcome.config = config;
  // Mirror of predict_mixed over the cached entries: same matched split
  // (k-based overload), same two predictions, same max/sum — the naive
  // path runs this exact arithmetic, so outcomes are bit-identical.
  const MatchedSplit split =
      match_split(arm.time_per_unit, amd.time_per_unit, work_units);
  const Prediction pa = arm.op.predict(split.units_a);
  const Prediction pd = amd.op.predict(split.units_b);
  outcome.t_s = std::max(pa.t_s, pd.t_s);
  outcome.energy_j = pa.energy_j() + pd.energy_j();
  outcome.units_arm = split.units_a;
  outcome.units_amd = split.units_b;
  return outcome;
}

ConfigOutcome MemoizedConfigEvaluator::evaluate_arm_only(
    const ClusterConfig& config, const DeploymentEntry& arm,
    double work_units) {
  HEC_EXPECTS(work_units > 0.0);
  ConfigOutcome outcome;
  outcome.config = config;
  const Prediction p = arm.op.predict(work_units);
  outcome.t_s = p.t_s;
  outcome.energy_j = p.energy_j();
  outcome.units_arm = work_units;
  return outcome;
}

ConfigOutcome MemoizedConfigEvaluator::evaluate_amd_only(
    const ClusterConfig& config, const DeploymentEntry& amd,
    double work_units) {
  HEC_EXPECTS(work_units > 0.0);
  ConfigOutcome outcome;
  outcome.config = config;
  const Prediction p = amd.op.predict(work_units);
  outcome.t_s = p.t_s;
  outcome.energy_j = p.energy_j();
  outcome.units_amd = work_units;
  return outcome;
}

double ConfigEvaluator::powered_idle_w(const ClusterConfig& config) const {
  double watts = 0.0;
  if (config.uses_arm()) {
    watts += static_cast<double>(config.arm.nodes) *
             arm_->power().idle_w;
  }
  if (config.uses_amd()) {
    watts += static_cast<double>(config.amd.nodes) *
             amd_->power().idle_w;
  }
  return watts;
}

}  // namespace hec
