#include "hec/config/evaluate.h"

#include "hec/obs/obs.h"
#include "hec/parallel/thread_pool.h"
#include "hec/util/expect.h"

namespace hec {

ConfigEvaluator::ConfigEvaluator(const NodeTypeModel& arm_model,
                                 const NodeTypeModel& amd_model)
    : arm_(&arm_model), amd_(&amd_model) {}

ConfigOutcome ConfigEvaluator::evaluate(const ClusterConfig& config,
                                        double work_units) const {
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(config.uses_arm() || config.uses_amd());
  HEC_COUNTER_INC("config.evaluations");
  ConfigOutcome outcome;
  outcome.config = config;
  if (config.heterogeneous()) {
    const MixedPrediction mixed =
        predict_mixed(*arm_, config.arm, *amd_, config.amd, work_units);
    outcome.t_s = mixed.t_s;
    outcome.energy_j = mixed.energy_j;
    outcome.units_arm = mixed.split.units_a;
    outcome.units_amd = mixed.split.units_b;
  } else if (config.uses_arm()) {
    const Prediction p = arm_->predict(work_units, config.arm);
    outcome.t_s = p.t_s;
    outcome.energy_j = p.energy_j();
    outcome.units_arm = work_units;
  } else {
    const Prediction p = amd_->predict(work_units, config.amd);
    outcome.t_s = p.t_s;
    outcome.energy_j = p.energy_j();
    outcome.units_amd = work_units;
  }
  return outcome;
}

std::vector<ConfigOutcome> ConfigEvaluator::evaluate_all(
    std::span<const ClusterConfig> configs, double work_units,
    bool parallel) const {
  HEC_SPAN("config.evaluate_all");
  // One timer for the whole batch: a nominal evaluation is ~100 ns, so
  // per-call clock reads would cost more than the work they measure.
  // The robust evaluator times per call (each call runs MC trials).
  HEC_SCOPED_TIMER("config.eval_wall_s");
  std::vector<ConfigOutcome> outcomes(configs.size());
  if (parallel) {
    parallel_for(0, configs.size(), [&](std::size_t i) {
      outcomes[i] = evaluate(configs[i], work_units);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = evaluate(configs[i], work_units);
    }
  }
  return outcomes;
}

double ConfigEvaluator::powered_idle_w(const ClusterConfig& config) const {
  double watts = 0.0;
  if (config.uses_arm()) {
    watts += static_cast<double>(config.arm.nodes) *
             arm_->power().idle_w;
  }
  if (config.uses_amd()) {
    watts += static_cast<double>(config.amd.nodes) *
             amd_->power().idle_w;
  }
  return watts;
}

}  // namespace hec
