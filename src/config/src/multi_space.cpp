#include "hec/config/multi_space.h"

#include <algorithm>
#include <stdexcept>

#include "hec/parallel/thread_pool.h"
#include "hec/util/expect.h"

namespace hec {

int MultiClusterConfig::types_used() const {
  int used = 0;
  for (const NodeConfig& c : per_type) {
    if (c.nodes > 0) ++used;
  }
  return used;
}

namespace {
/// Per-type options: the "absent" deployment plus every (n, c, f) sweep.
std::vector<NodeConfig> type_options(const NodeSpec& spec, int max_nodes) {
  std::vector<NodeConfig> options;
  options.push_back(NodeConfig{0, 1, spec.pstates.min_ghz()});
  for (int n = 1; n <= max_nodes; ++n) {
    for (int c = 1; c <= spec.cores; ++c) {
      for (double f : spec.pstates.frequencies_ghz()) {
        options.push_back(NodeConfig{n, c, f});
      }
    }
  }
  return options;
}
}  // namespace

std::size_t expected_multi_count(std::span<const NodeSpec> specs,
                                 std::span<const int> limits) {
  HEC_EXPECTS(specs.size() == limits.size());
  HEC_EXPECTS(!specs.empty());
  std::size_t product = 1;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    HEC_EXPECTS(limits[i] >= 0);
    const std::size_t per_type =
        1 + static_cast<std::size_t>(limits[i]) *
                static_cast<std::size_t>(specs[i].cores) *
                specs[i].pstates.size();
    product *= per_type;
  }
  return product - 1;  // exclude the all-absent point
}

std::vector<MultiClusterConfig> enumerate_multi(
    std::span<const NodeSpec> specs, std::span<const int> limits,
    std::size_t max_points) {
  const std::size_t count = expected_multi_count(specs, limits);
  HEC_EXPECTS(count >= 1);
  if (count > max_points) {
    throw std::length_error(
        "enumerate_multi: configuration space of " + std::to_string(count) +
        " points exceeds the cap of " + std::to_string(max_points));
  }

  std::vector<std::vector<NodeConfig>> options;
  options.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    options.push_back(type_options(specs[i], limits[i]));
  }

  std::vector<MultiClusterConfig> out;
  out.reserve(count);
  std::vector<std::size_t> index(specs.size(), 0);
  for (;;) {
    MultiClusterConfig config;
    config.per_type.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      config.per_type.push_back(options[i][index[i]]);
    }
    if (config.types_used() >= 1) {
      out.push_back(std::move(config));
    }
    // Odometer increment over the cartesian product.
    std::size_t pos = 0;
    while (pos < index.size()) {
      if (++index[pos] < options[pos].size()) break;
      index[pos] = 0;
      ++pos;
    }
    if (pos == index.size()) break;
  }
  HEC_ENSURES(out.size() == count);
  return out;
}

void for_each_multi_config(
    std::span<const NodeSpec> specs, std::span<const int> limits,
    std::size_t block,
    const std::function<void(std::size_t,
                             std::span<const MultiClusterConfig>)>& fn) {
  HEC_EXPECTS(block >= 1);
  const std::size_t count = expected_multi_count(specs, limits);
  HEC_EXPECTS(count >= 1);

  std::vector<std::vector<NodeConfig>> options;
  options.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    options.push_back(type_options(specs[i], limits[i]));
  }

  std::vector<MultiClusterConfig> buffer;
  buffer.reserve(std::min(block, count));
  std::size_t emitted = 0;
  std::vector<std::size_t> index(specs.size(), 0);
  for (;;) {
    MultiClusterConfig config;
    config.per_type.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      config.per_type.push_back(options[i][index[i]]);
    }
    if (config.types_used() >= 1) {
      buffer.push_back(std::move(config));
      if (buffer.size() == block) {
        fn(emitted, std::span<const MultiClusterConfig>(buffer));
        emitted += buffer.size();
        buffer.clear();
      }
    }
    std::size_t pos = 0;
    while (pos < index.size()) {
      if (++index[pos] < options[pos].size()) break;
      index[pos] = 0;
      ++pos;
    }
    if (pos == index.size()) break;
  }
  if (!buffer.empty()) {
    fn(emitted, std::span<const MultiClusterConfig>(buffer));
    emitted += buffer.size();
  }
  HEC_ENSURES(emitted == count);
}

MemoizedMultiEvaluator::MemoizedMultiEvaluator(
    std::vector<const NodeTypeModel*> models, std::span<const int> limits)
    : models_(std::move(models)) {
  HEC_EXPECTS(!models_.empty());
  HEC_EXPECTS(models_.size() == limits.size());
  tables_.reserve(models_.size());
  absent_.reserve(models_.size());
  radix_.reserve(models_.size());
  std::size_t product = 1;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    HEC_EXPECTS(models_[i] != nullptr);
    HEC_EXPECTS(limits[i] >= 0);
    tables_.emplace_back(*models_[i], limits[i]);
    absent_.push_back(
        NodeConfig{0, 1, models_[i]->spec().pstates.min_ghz()});
    radix_.push_back(1 + tables_.back().size());
    product *= radix_.back();
  }
  size_ = product - 1;  // exclude the all-absent point
  HEC_EXPECTS(size_ >= 1);
}

void MemoizedMultiEvaluator::decode(std::size_t index,
                                    std::vector<std::size_t>& options) const {
  HEC_EXPECTS(index < size_);
  // The odometer (type 0 fastest) visits combo c at position c, and the
  // all-absent point is combo 0, skipped — so enumeration index i is
  // combo i + 1.
  std::size_t combo = index + 1;
  options.resize(radix_.size());
  for (std::size_t i = 0; i < radix_.size(); ++i) {
    options[i] = combo % radix_[i];
    combo /= radix_[i];
  }
}

MultiClusterConfig MemoizedMultiEvaluator::config_at(std::size_t index) const {
  std::vector<std::size_t> options;
  decode(index, options);
  MultiClusterConfig config;
  config.per_type.reserve(models_.size());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    config.per_type.push_back(options[i] == 0
                                  ? absent_[i]
                                  : tables_[i].entry(options[i] - 1).config);
  }
  return config;
}

MultiOutcome MemoizedMultiEvaluator::evaluate_at(std::size_t index,
                                                 double work_units) const {
  HEC_EXPECTS(work_units > 0.0);
  std::vector<std::size_t> options;
  decode(index, options);

  MultiOutcome out;
  out.config.per_type.reserve(models_.size());
  std::vector<const DeploymentEntry*> active;
  std::vector<std::size_t> active_idx;
  std::vector<double> ks;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (options[i] == 0) {
      out.config.per_type.push_back(absent_[i]);
      continue;
    }
    const DeploymentEntry& e = tables_[i].entry(options[i] - 1);
    out.config.per_type.push_back(e.config);
    active.push_back(&e);
    active_idx.push_back(i);
    ks.push_back(e.time_per_unit);
  }
  // Mirror of predict_multi over the cached entries: same k-based split,
  // same per-type predictions accumulated in type order — bit-identical
  // to MultiEvaluator::evaluate.
  const std::vector<double> shares = match_split_multi(ks, work_units);
  out.shares.assign(models_.size(), 0.0);
  for (std::size_t k = 0; k < active.size(); ++k) {
    const Prediction p = active[k]->op.predict(shares[k]);
    out.t_s = std::max(out.t_s, p.t_s);
    out.energy_j += p.energy_j();
    out.shares[active_idx[k]] = shares[k];
  }
  return out;
}

MultiEvaluator::MultiEvaluator(std::vector<const NodeTypeModel*> models)
    : models_(std::move(models)) {
  HEC_EXPECTS(!models_.empty());
  for (const NodeTypeModel* m : models_) {
    HEC_EXPECTS(m != nullptr);
  }
}

MultiOutcome MultiEvaluator::evaluate(const MultiClusterConfig& config,
                                      double work_units) const {
  HEC_EXPECTS(config.per_type.size() == models_.size());
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(config.types_used() >= 1);

  std::vector<TypedDeployment> active;
  std::vector<std::size_t> active_idx;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (config.per_type[i].nodes > 0) {
      active.push_back(TypedDeployment{models_[i], config.per_type[i]});
      active_idx.push_back(i);
    }
  }
  const MultiPrediction pred = predict_multi(active, work_units);
  MultiOutcome out;
  out.config = config;
  out.t_s = pred.t_s;
  out.energy_j = pred.energy_j;
  out.shares.assign(models_.size(), 0.0);
  for (std::size_t k = 0; k < active_idx.size(); ++k) {
    out.shares[active_idx[k]] = pred.shares[k];
  }
  return out;
}

std::vector<MultiOutcome> MultiEvaluator::evaluate_all(
    std::span<const MultiClusterConfig> configs, double work_units,
    bool parallel) const {
  std::vector<MultiOutcome> outcomes(configs.size());
  if (parallel) {
    parallel_for(0, configs.size(), [&](std::size_t i) {
      outcomes[i] = evaluate(configs[i], work_units);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = evaluate(configs[i], work_units);
    }
  }
  return outcomes;
}

}  // namespace hec
