#include "hec/config/multi_space.h"

#include <stdexcept>

#include "hec/parallel/thread_pool.h"
#include "hec/util/expect.h"

namespace hec {

int MultiClusterConfig::types_used() const {
  int used = 0;
  for (const NodeConfig& c : per_type) {
    if (c.nodes > 0) ++used;
  }
  return used;
}

namespace {
/// Per-type options: the "absent" deployment plus every (n, c, f) sweep.
std::vector<NodeConfig> type_options(const NodeSpec& spec, int max_nodes) {
  std::vector<NodeConfig> options;
  options.push_back(NodeConfig{0, 1, spec.pstates.min_ghz()});
  for (int n = 1; n <= max_nodes; ++n) {
    for (int c = 1; c <= spec.cores; ++c) {
      for (double f : spec.pstates.frequencies_ghz()) {
        options.push_back(NodeConfig{n, c, f});
      }
    }
  }
  return options;
}
}  // namespace

std::size_t expected_multi_count(std::span<const NodeSpec> specs,
                                 std::span<const int> limits) {
  HEC_EXPECTS(specs.size() == limits.size());
  HEC_EXPECTS(!specs.empty());
  std::size_t product = 1;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    HEC_EXPECTS(limits[i] >= 0);
    const std::size_t per_type =
        1 + static_cast<std::size_t>(limits[i]) *
                static_cast<std::size_t>(specs[i].cores) *
                specs[i].pstates.size();
    product *= per_type;
  }
  return product - 1;  // exclude the all-absent point
}

std::vector<MultiClusterConfig> enumerate_multi(
    std::span<const NodeSpec> specs, std::span<const int> limits,
    std::size_t max_points) {
  const std::size_t count = expected_multi_count(specs, limits);
  HEC_EXPECTS(count >= 1);
  if (count > max_points) {
    throw std::length_error(
        "enumerate_multi: configuration space of " + std::to_string(count) +
        " points exceeds the cap of " + std::to_string(max_points));
  }

  std::vector<std::vector<NodeConfig>> options;
  options.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    options.push_back(type_options(specs[i], limits[i]));
  }

  std::vector<MultiClusterConfig> out;
  out.reserve(count);
  std::vector<std::size_t> index(specs.size(), 0);
  for (;;) {
    MultiClusterConfig config;
    config.per_type.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      config.per_type.push_back(options[i][index[i]]);
    }
    if (config.types_used() >= 1) {
      out.push_back(std::move(config));
    }
    // Odometer increment over the cartesian product.
    std::size_t pos = 0;
    while (pos < index.size()) {
      if (++index[pos] < options[pos].size()) break;
      index[pos] = 0;
      ++pos;
    }
    if (pos == index.size()) break;
  }
  HEC_ENSURES(out.size() == count);
  return out;
}

MultiEvaluator::MultiEvaluator(std::vector<const NodeTypeModel*> models)
    : models_(std::move(models)) {
  HEC_EXPECTS(!models_.empty());
  for (const NodeTypeModel* m : models_) {
    HEC_EXPECTS(m != nullptr);
  }
}

MultiOutcome MultiEvaluator::evaluate(const MultiClusterConfig& config,
                                      double work_units) const {
  HEC_EXPECTS(config.per_type.size() == models_.size());
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(config.types_used() >= 1);

  std::vector<TypedDeployment> active;
  std::vector<std::size_t> active_idx;
  for (std::size_t i = 0; i < models_.size(); ++i) {
    if (config.per_type[i].nodes > 0) {
      active.push_back(TypedDeployment{models_[i], config.per_type[i]});
      active_idx.push_back(i);
    }
  }
  const MultiPrediction pred = predict_multi(active, work_units);
  MultiOutcome out;
  out.config = config;
  out.t_s = pred.t_s;
  out.energy_j = pred.energy_j;
  out.shares.assign(models_.size(), 0.0);
  for (std::size_t k = 0; k < active_idx.size(); ++k) {
    out.shares[active_idx[k]] = pred.shares[k];
  }
  return out;
}

std::vector<MultiOutcome> MultiEvaluator::evaluate_all(
    std::span<const MultiClusterConfig> configs, double work_units,
    bool parallel) const {
  std::vector<MultiOutcome> outcomes(configs.size());
  if (parallel) {
    parallel_for(0, configs.size(), [&](std::size_t i) {
      outcomes[i] = evaluate(configs[i], work_units);
    });
  } else {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      outcomes[i] = evaluate(configs[i], work_units);
    }
  }
  return outcomes;
}

}  // namespace hec
