#include "hec/config/budget.h"

#include <cmath>

#include "hec/util/expect.h"

namespace hec {

std::vector<MixPlan> substitution_series(int amd_max, int ratio) {
  HEC_EXPECTS(amd_max >= 1);
  HEC_EXPECTS(ratio >= 1);
  std::vector<MixPlan> mixes;
  mixes.reserve(static_cast<std::size_t>(amd_max) + 1);
  for (int amd = amd_max; amd >= 0; --amd) {
    mixes.push_back(MixPlan{ratio * (amd_max - amd), amd});
  }
  return mixes;
}

double mix_peak_power_w(const NodeSpec& arm, const NodeSpec& amd,
                        const MixPlan& mix, const SwitchSpec& sw) {
  HEC_EXPECTS(mix.arm_nodes >= 0 && mix.amd_nodes >= 0);
  const double arm_w =
      static_cast<double>(mix.arm_nodes) * arm.peak_node_w() +
      static_cast<double>(switches_needed(mix.arm_nodes, sw)) * sw.power_w;
  const double amd_w =
      static_cast<double>(mix.amd_nodes) * amd.peak_node_w();
  return arm_w + amd_w;
}

bool within_budget(const NodeSpec& arm, const NodeSpec& amd,
                   const MixPlan& mix, double budget_w,
                   const SwitchSpec& sw) {
  return mix_peak_power_w(arm, amd, mix, sw) <= budget_w;
}

namespace {
/// One node's worst-case draw at an operating point (see header).
double node_power_at(const NodeSpec& spec, const NodeConfig& cfg) {
  const double core_inc = static_cast<double>(cfg.cores) *
                          (spec.core_active.at(cfg.f_ghz) -
                           spec.core_idle_w);
  const double device_inc =
      (spec.memory_power.active_w - spec.memory_power.idle_w) +
      (spec.io_power.active_w - spec.io_power.idle_w);
  return spec.idle_node_w() + core_inc + device_inc;
}
}  // namespace

double config_peak_power_w(const NodeSpec& arm, const NodeSpec& amd,
                           const ClusterConfig& config,
                           const SwitchSpec& sw) {
  double watts = 0.0;
  if (config.uses_arm()) {
    watts += static_cast<double>(config.arm.nodes) *
                 node_power_at(arm, config.arm) +
             static_cast<double>(switches_needed(config.arm.nodes, sw)) *
                 sw.power_w;
  }
  if (config.uses_amd()) {
    watts += static_cast<double>(config.amd.nodes) *
             node_power_at(amd, config.amd);
  }
  return watts;
}

int substitution_ratio(const NodeSpec& arm, const NodeSpec& amd,
                       const SwitchSpec& sw) {
  HEC_EXPECTS(arm.peak_node_w() > 0.0);
  // The paper's footnote 5: each replacement group of ARM nodes must fit,
  // together with a full switch, inside the peak power of the AMD node it
  // replaces — (60 W - 20 W) / 5 W = 8 for the Cortex-A9/Opteron pair.
  const double headroom_w = amd.peak_node_w() - sw.power_w;
  if (headroom_w <= 0.0) return 0;
  return static_cast<int>(std::floor(headroom_w / arm.peak_node_w()));
}

}  // namespace hec
