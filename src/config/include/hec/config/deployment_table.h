// Per-type prediction memoization for the configuration sweeps.
//
// The heterogeneous space is a cross product: A arm deployments × B amd
// deployments. Evaluating it naively calls the analytical model once per
// pair per side — O(A·B) expensive predictions, each re-interpolating
// power curves and re-resolving memory contention for a deployment seen
// thousands of times before. But the model is linear in the work amount,
// so everything expensive about a deployment is work-independent: this
// table compiles each of the A+B single-type deployments exactly once
// (hec/model CompiledOperatingPoint) and the sweep combines two cached
// entries per pair in O(1) via the closed-form matched split.
//
// Entries are laid out in the enumeration's type_sweep order (node count
// outer, cores, P-state inner), so ConfigSpaceLayout's per-type
// deployment indices address the table directly.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "hec/hw/node_spec.h"
#include "hec/model/node_model.h"

namespace hec {

/// One compiled single-type deployment.
struct DeploymentEntry {
  NodeConfig config;
  CompiledOperatingPoint op;
  /// Cached op.time_per_unit(): the matching split's rate inverse.
  double time_per_unit = 0.0;
};

/// All deployments of one node type with 1..max_nodes nodes, compiled.
class DeploymentTable {
 public:
  /// Compiles every (nodes, cores, P-state) deployment of `model`'s node
  /// type. The model must outlive the table. max_nodes == 0 produces an
  /// empty table (that type absent from the sweep).
  DeploymentTable(const NodeTypeModel& model, int max_nodes);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Entry for a deployment index in type_sweep order (the same index
  /// ConfigSpaceLayout::slot yields for this side).
  const DeploymentEntry& entry(std::size_t index) const {
    return entries_[index];
  }

  /// Entry for explicit knobs: `nodes` in [1, max_nodes], `cores` in
  /// [1, spec.cores], `f_index` into the P-state table.
  const DeploymentEntry& entry(int nodes, int cores,
                               std::size_t f_index) const;

  /// The contiguous entries with a fixed node count, ordered (cores
  /// outer, P-state inner) — the operating-point slice the optimizer's
  /// per-node-count bound sweeps.
  std::span<const DeploymentEntry> entries_for_nodes(int nodes) const;

  int max_nodes() const { return max_nodes_; }
  int cores() const { return cores_; }
  std::size_t pstates() const { return freqs_; }

 private:
  std::vector<DeploymentEntry> entries_;
  int max_nodes_ = 0;
  int cores_ = 1;
  std::size_t freqs_ = 0;
};

}  // namespace hec
