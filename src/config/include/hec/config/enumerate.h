// Configuration-space enumeration.
//
// Enumerates every cluster configuration reachable with up to max_arm
// low-power and max_amd high-performance nodes, each type sweeping its
// node count, active core count and P-state. For 10 ARM (4 cores, 5
// P-states) plus 10 AMD (6 cores, 3 P-states) this yields exactly the
// 36,380 configurations of the paper's footnote 2:
// 36,000 heterogeneous + 200 ARM-only + 180 AMD-only.
#pragma once

#include <cstddef>
#include <vector>

#include "hec/config/cluster_config.h"
#include "hec/hw/node_spec.h"

namespace hec {

/// Bounds of the enumeration. A zero limit on one side removes that type
/// entirely, leaving the other side's homogeneous sweep (used by the
/// budget studies' ARM-only / AMD-only poles); at least one limit must be
/// positive.
struct EnumerationLimits {
  int max_arm_nodes = 10;
  int max_amd_nodes = 10;
};

/// All configurations: heterogeneous mixes (>=1 node of each) plus the
/// homogeneous ARM-only and AMD-only sweeps.
std::vector<ClusterConfig> enumerate_configs(const NodeSpec& arm,
                                             const NodeSpec& amd,
                                             const EnumerationLimits& limits);

/// Closed-form size of enumerate_configs' result (footnote 2's formula).
std::size_t expected_config_count(const NodeSpec& arm, const NodeSpec& amd,
                                  const EnumerationLimits& limits);

/// Only configurations with fixed node counts (used by the budget studies,
/// where the mix is fixed and cores/P-states still sweep). Zero on one
/// side produces a homogeneous sweep of the other side.
std::vector<ClusterConfig> enumerate_operating_points(const NodeSpec& arm,
                                                      int arm_nodes,
                                                      const NodeSpec& amd,
                                                      int amd_nodes);

}  // namespace hec
