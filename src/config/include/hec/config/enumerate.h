// Configuration-space enumeration.
//
// Enumerates every cluster configuration reachable with up to max_arm
// low-power and max_amd high-performance nodes, each type sweeping its
// node count, active core count and P-state. For 10 ARM (4 cores, 5
// P-states) plus 10 AMD (6 cores, 3 P-states) this yields exactly the
// 36,380 configurations of the paper's footnote 2:
// 36,000 heterogeneous + 200 ARM-only + 180 AMD-only.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "hec/config/cluster_config.h"
#include "hec/hw/node_spec.h"

namespace hec {

/// Bounds of the enumeration. A zero limit on one side removes that type
/// entirely, leaving the other side's homogeneous sweep (used by the
/// budget studies' ARM-only / AMD-only poles); at least one limit must be
/// positive.
struct EnumerationLimits {
  int max_arm_nodes = 10;
  int max_amd_nodes = 10;
};

/// Random-access view of the enumeration order without materialising it.
///
/// enumerate_configs lays out the space as: all heterogeneous mixes
/// (ARM-major over the AMD sweep), then the ARM-only sweep, then the
/// AMD-only sweep; within one type the sweep runs node count (outer),
/// core count, P-state (inner). This class is the single source of truth
/// for that order — enumerate_configs and the blocked generator
/// for_each_config both decode through it, so an index is a stable,
/// storage-free name for a configuration. Per-type deployment indices
/// (`Slot`) additionally let evaluators combine two small per-type
/// tables instead of recomputing each cross-product entry.
class ConfigSpaceLayout {
 public:
  ConfigSpaceLayout(const NodeSpec& arm, const NodeSpec& amd,
                    const EnumerationLimits& limits);

  /// Total number of configurations (== expected_config_count).
  std::size_t size() const { return size_; }
  /// Number of single-type deployments per side.
  std::size_t arm_points() const { return arm_.points; }
  std::size_t amd_points() const { return amd_.points; }

  /// Deployment index marking "this type is absent".
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// A configuration named by its per-type deployment indices.
  struct Slot {
    std::size_t arm = npos;
    std::size_t amd = npos;
  };

  /// Decodes a global configuration index into per-type indices.
  Slot slot(std::size_t index) const;

  /// The arm-side NodeConfig for a deployment index in [0, arm_points).
  NodeConfig arm_deployment(std::size_t arm_index) const;
  /// The amd-side NodeConfig for a deployment index in [0, amd_points).
  NodeConfig amd_deployment(std::size_t amd_index) const;

  /// Full configuration at a global index; bit-identical to
  /// enumerate_configs(...)[index].
  ClusterConfig config(std::size_t index) const;

  /// Compact structural description of the space — per-type axis sizes
  /// and the total — e.g. "hetero arm=1060 amd=954 total=1013254". Two
  /// layouts with equal descriptions enumerate the same index ↔
  /// configuration mapping, which is what the sweep checkpoint journal
  /// fingerprints so a resume never replays indices into a different
  /// space (hec/resilience/journal.h).
  std::string describe() const;

 private:
  struct TypeAxis {
    int cores = 1;
    std::vector<double> freqs_ghz;
    double min_ghz = 0.0;
    std::size_t points = 0;  // max_nodes * cores * freqs
  };
  static TypeAxis make_axis(const NodeSpec& spec, int max_nodes);
  static NodeConfig decode(const TypeAxis& axis, std::size_t index);

  TypeAxis arm_;
  TypeAxis amd_;
  std::size_t hetero_ = 0;
  std::size_t size_ = 0;
};

/// All configurations: heterogeneous mixes (>=1 node of each) plus the
/// homogeneous ARM-only and AMD-only sweeps.
std::vector<ClusterConfig> enumerate_configs(const NodeSpec& arm,
                                             const NodeSpec& amd,
                                             const EnumerationLimits& limits);

/// Streams the same sequence as enumerate_configs in blocks of at most
/// `block` configurations, reusing one buffer: peak memory is O(block)
/// instead of O(space). fn receives the global index of the block's
/// first configuration and the block itself.
void for_each_config(
    const NodeSpec& arm, const NodeSpec& amd, const EnumerationLimits& limits,
    std::size_t block,
    const std::function<void(std::size_t first, std::span<const ClusterConfig>)>&
        fn);

/// Closed-form size of enumerate_configs' result (footnote 2's formula).
std::size_t expected_config_count(const NodeSpec& arm, const NodeSpec& amd,
                                  const EnumerationLimits& limits);

/// Only configurations with fixed node counts (used by the budget studies,
/// where the mix is fixed and cores/P-states still sweep). Zero on one
/// side produces a homogeneous sweep of the other side.
std::vector<ClusterConfig> enumerate_operating_points(const NodeSpec& arm,
                                                      int arm_nodes,
                                                      const NodeSpec& amd,
                                                      int amd_nodes);

}  // namespace hec
