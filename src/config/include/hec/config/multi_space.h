// N-type configuration space (extension of the 2-type Section IV space).
//
// A multi-type configuration assigns each node type a deployment
// (possibly absent). Enumeration is the cartesian product of the
// per-type sweeps plus the "absent" option, excluding the all-absent
// point; evaluation applies the generalised matching split.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "hec/config/deployment_table.h"
#include "hec/hw/node_spec.h"
#include "hec/model/multi_matching.h"

namespace hec {

/// One point of the N-type space: config[i].nodes == 0 means type i is
/// unused.
struct MultiClusterConfig {
  std::vector<NodeConfig> per_type;

  int types_used() const;
  bool heterogeneous() const { return types_used() >= 2; }
};

/// Enumerates all multi-type configurations with per-type node-count
/// limits (limits[i] >= 0, at least one positive). Throws
/// std::length_error if the space would exceed `max_points` — the caller
/// must narrow the limits rather than silently truncate.
std::vector<MultiClusterConfig> enumerate_multi(
    std::span<const NodeSpec> specs, std::span<const int> limits,
    std::size_t max_points = 5'000'000);

/// Closed-form size of enumerate_multi's result.
std::size_t expected_multi_count(std::span<const NodeSpec> specs,
                                 std::span<const int> limits);

/// Evaluated multi-type configuration.
struct MultiOutcome {
  MultiClusterConfig config;
  double t_s = 0.0;
  double energy_j = 0.0;
  std::vector<double> shares;  ///< matched work units per used type
};

/// Evaluates multi-type configurations against per-type models
/// (models.size() == type count; models must outlive the evaluator).
class MultiEvaluator {
 public:
  explicit MultiEvaluator(std::vector<const NodeTypeModel*> models);

  MultiOutcome evaluate(const MultiClusterConfig& config,
                        double work_units) const;
  std::vector<MultiOutcome> evaluate_all(
      std::span<const MultiClusterConfig> configs, double work_units,
      bool parallel = true) const;

 private:
  std::vector<const NodeTypeModel*> models_;
};

/// Streams the same sequence as enumerate_multi in blocks of at most
/// `block` configurations, reusing one buffer: peak memory is O(block)
/// instead of O(product of per-type option counts), and no max_points
/// cap applies. fn receives the global index of the block's first
/// configuration and the block itself.
void for_each_multi_config(
    std::span<const NodeSpec> specs, std::span<const int> limits,
    std::size_t block,
    const std::function<void(std::size_t first,
                             std::span<const MultiClusterConfig>)>& fn);

/// Sweep-grade N-type evaluator: compiles each type's deployments once
/// (DeploymentTable per type) and evaluates any multi-type configuration
/// by the generalised matched split over cached per-unit times plus one
/// ~20-flop compiled prediction per active type. Outcomes are
/// bit-identical to MultiEvaluator::evaluate on the corresponding
/// enumerate_multi entry. Unlike MultiEvaluator it addresses the space
/// by global index, so no configuration vector is ever materialised.
class MemoizedMultiEvaluator {
 public:
  /// models.size() == limits.size(); models must outlive the evaluator.
  MemoizedMultiEvaluator(std::vector<const NodeTypeModel*> models,
                         std::span<const int> limits);

  /// Number of configurations (== expected_multi_count; no cap).
  std::size_t size() const { return size_; }

  /// The configuration at a global enumeration index; equal to
  /// enumerate_multi(...)[index] where that call is allowed to
  /// materialise.
  MultiClusterConfig config_at(std::size_t index) const;

  /// Evaluates the configuration at a global enumeration index.
  MultiOutcome evaluate_at(std::size_t index, double work_units) const;

  const DeploymentTable& table(std::size_t type) const {
    return tables_[type];
  }
  /// Number of node types in the space (== models.size()).
  std::size_t types() const { return tables_.size(); }

 private:
  /// Per-type option index (0 = absent, j >= 1 = table entry j-1) for a
  /// global index, written into `options`.
  void decode(std::size_t index, std::vector<std::size_t>& options) const;

  std::vector<const NodeTypeModel*> models_;
  std::vector<DeploymentTable> tables_;
  std::vector<NodeConfig> absent_;       ///< per-type "unused" config
  std::vector<std::size_t> radix_;       ///< per-type option count
  std::size_t size_ = 0;
};

}  // namespace hec
