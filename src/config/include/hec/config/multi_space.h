// N-type configuration space (extension of the 2-type Section IV space).
//
// A multi-type configuration assigns each node type a deployment
// (possibly absent). Enumeration is the cartesian product of the
// per-type sweeps plus the "absent" option, excluding the all-absent
// point; evaluation applies the generalised matching split.
#pragma once

#include <span>
#include <vector>

#include "hec/hw/node_spec.h"
#include "hec/model/multi_matching.h"

namespace hec {

/// One point of the N-type space: config[i].nodes == 0 means type i is
/// unused.
struct MultiClusterConfig {
  std::vector<NodeConfig> per_type;

  int types_used() const;
  bool heterogeneous() const { return types_used() >= 2; }
};

/// Enumerates all multi-type configurations with per-type node-count
/// limits (limits[i] >= 0, at least one positive). Throws
/// std::length_error if the space would exceed `max_points` — the caller
/// must narrow the limits rather than silently truncate.
std::vector<MultiClusterConfig> enumerate_multi(
    std::span<const NodeSpec> specs, std::span<const int> limits,
    std::size_t max_points = 5'000'000);

/// Closed-form size of enumerate_multi's result.
std::size_t expected_multi_count(std::span<const NodeSpec> specs,
                                 std::span<const int> limits);

/// Evaluated multi-type configuration.
struct MultiOutcome {
  MultiClusterConfig config;
  double t_s = 0.0;
  double energy_j = 0.0;
  std::vector<double> shares;  ///< matched work units per used type
};

/// Evaluates multi-type configurations against per-type models
/// (models.size() == type count; models must outlive the evaluator).
class MultiEvaluator {
 public:
  explicit MultiEvaluator(std::vector<const NodeTypeModel*> models);

  MultiOutcome evaluate(const MultiClusterConfig& config,
                        double work_units) const;
  std::vector<MultiOutcome> evaluate_all(
      std::span<const MultiClusterConfig> configs, double work_units,
      bool parallel = true) const;

 private:
  std::vector<const NodeTypeModel*> models_;
};

}  // namespace hec
