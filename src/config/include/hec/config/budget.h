// Power-budgeted heterogeneous mixes (Section IV-C).
//
// Datacenters cap peak power; the paper studies replacing high-performance
// AMD nodes (60 W peak) with low-power ARM nodes (5 W peak plus a shared
// 20 W rack switch), which nets out to an 8:1 ARM-per-AMD substitution
// ratio (footnote 5). substitution_series generates the exact mix series
// of Figs. 6-7 (ARM 0:AMD 16 ... ARM 128:AMD 0) and mix_peak_power_w
// verifies each mix against the budget.
#pragma once

#include <vector>

#include "hec/config/cluster_config.h"
#include "hec/hw/catalog.h"
#include "hec/hw/node_spec.h"

namespace hec {

/// A node-count mix (operating points still sweep separately).
struct MixPlan {
  int arm_nodes = 0;
  int amd_nodes = 0;
};

/// The power-substitution mix series: for each AMD count from amd_max down
/// to 0, adds ratio ARM nodes per removed AMD node. With amd_max = 16 and
/// ratio = 8 this is the paper's series {0:16, 8:15, ..., 128:0}.
std::vector<MixPlan> substitution_series(int amd_max, int ratio);

/// Peak power draw of a mix: peak node powers plus switches for the
/// low-power side (the paper charges switch power to the ARM deployment).
double mix_peak_power_w(const NodeSpec& arm, const NodeSpec& amd,
                        const MixPlan& mix,
                        const SwitchSpec& sw = rack_switch());

/// True when the mix's peak power fits within `budget_w`.
bool within_budget(const NodeSpec& arm, const NodeSpec& amd,
                   const MixPlan& mix, double budget_w,
                   const SwitchSpec& sw = rack_switch());

/// The derived ARM:AMD substitution ratio for a node pair: how many ARM
/// nodes (with their amortised switch share) fit in one AMD node's peak
/// power. Rounds down; the paper's pair yields 8.
int substitution_ratio(const NodeSpec& arm, const NodeSpec& amd,
                       const SwitchSpec& sw = rack_switch());

/// Worst-case draw of a configuration while executing at its operating
/// point: per node, the idle floor plus the configured cores' active
/// increment at the configured frequency plus both device increments;
/// the low-power side is charged its switches. Always at most
/// mix_peak_power_w of the same node counts.
double config_peak_power_w(const NodeSpec& arm, const NodeSpec& amd,
                           const ClusterConfig& config,
                           const SwitchSpec& sw = rack_switch());

}  // namespace hec
