// Robust (fault-aware) configuration evaluation.
//
// The nominal evaluator ranks configurations by model-predicted time and
// energy assuming nothing fails. Under fail-stop crashes and stragglers
// the matched split's "everyone finishes together" property breaks, and
// the cheapest nominal configuration is often the most fragile one. This
// evaluator runs Monte Carlo over fault seeds (hec/fault) and reports
// expected time, expected energy, and the probability of missing a
// deadline — the inputs of the robust Pareto frontier.
//
// All configurations share the same per-trial seed sequence (common
// random numbers), so cross-configuration comparisons see the same fault
// draws and the Monte Carlo noise largely cancels in differences.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "hec/config/evaluate.h"
#include "hec/fault/fault_model.h"

namespace hec {

/// Monte Carlo controls for the robust evaluation.
struct MonteCarloOptions {
  int trials = 64;                              ///< fault seeds per config
  std::uint64_t base_seed = 0x9e3779b97f4a7c15ull;
};

/// Robust evaluation of one configuration: Monte Carlo means over fault
/// seeds, next to the nominal (fault-free) prediction. Means are over all
/// trials; abandoned runs (every node crashed) contribute their
/// abandonment time and energy and always count as deadline misses.
struct RobustOutcome {
  ConfigOutcome nominal;        ///< the fault-free prediction
  double mean_t_s = 0.0;        ///< expected completion/abandonment time
  double mean_energy_j = 0.0;   ///< expected energy, waste included
  double miss_prob = 0.0;       ///< P(not completed or t_s > deadline)
  double completion_prob = 1.0; ///< P(job finished at all)
  double mean_crashes = 0.0;
  double mean_wasted_j = 0.0;   ///< expected energy spent on lost work
  double mean_overhead_s = 0.0; ///< expected checkpoint/restart stalls
};

/// Evaluates configurations under a fault model by Monte Carlo over the
/// analytical recovery simulation (simulate_faulty_run).
class RobustConfigEvaluator {
 public:
  static constexpr double kNoDeadline =
      std::numeric_limits<double>::infinity();

  /// Both models must outlive the evaluator.
  RobustConfigEvaluator(const NodeTypeModel& arm_model,
                        const NodeTypeModel& amd_model,
                        const FaultConfig& faults,
                        const MonteCarloOptions& mc = {});

  /// Robust prediction of one configuration servicing `work_units`.
  /// `deadline_s` feeds miss_prob (kNoDeadline: only abandonment counts
  /// as a miss). With faults disabled this is one exact nominal trial.
  RobustOutcome evaluate(const ClusterConfig& config, double work_units,
                         double deadline_s = kNoDeadline,
                         bool parallel = true) const;

  /// Robust prediction of every configuration (parallel across configs
  /// on the library pool when `parallel`; trials run serially inside).
  std::vector<RobustOutcome> evaluate_all(
      std::span<const ClusterConfig> configs, double work_units,
      double deadline_s = kNoDeadline, bool parallel = true) const;

  const FaultConfig& faults() const { return faults_; }
  const MonteCarloOptions& monte_carlo() const { return mc_; }
  const NodeTypeModel& arm_model() const { return *arm_; }
  const NodeTypeModel& amd_model() const { return *amd_; }

 private:
  ConfigEvaluator nominal_;
  const NodeTypeModel* arm_;
  const NodeTypeModel* amd_;
  FaultConfig faults_;
  MonteCarloOptions mc_;
};

}  // namespace hec
