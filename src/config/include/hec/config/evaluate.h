// Configuration evaluation: model-predicted (time, energy) per point.
//
// Step one of the paper's methodology (Fig. 1): for every configuration,
// predict execution time and energy, computing the matched workload split
// for heterogeneous points. Evaluation over tens of thousands of points is
// embarrassingly parallel and runs on the library thread pool.
#pragma once

#include <span>
#include <vector>

#include "hec/config/cluster_config.h"
#include "hec/config/deployment_table.h"
#include "hec/config/enumerate.h"
#include "hec/model/matching.h"

namespace hec {

/// Evaluated configuration: the model's predictions for one point.
struct ConfigOutcome {
  ClusterConfig config;
  double t_s = 0.0;        ///< job service time
  double energy_j = 0.0;   ///< total energy over the job
  double units_arm = 0.0;  ///< matched workload share, low-power side
  double units_amd = 0.0;  ///< matched workload share, high-performance side
};

/// Evaluates configurations against a fixed pair of per-type models.
class ConfigEvaluator {
 public:
  /// Both models must outlive the evaluator.
  ConfigEvaluator(const NodeTypeModel& arm_model,
                  const NodeTypeModel& amd_model);

  /// Predicts one configuration servicing `work_units`.
  ConfigOutcome evaluate(const ClusterConfig& config,
                         double work_units) const;

  /// Predicts every configuration (parallel when `parallel`).
  std::vector<ConfigOutcome> evaluate_all(
      std::span<const ClusterConfig> configs, double work_units,
      bool parallel = true) const;

  /// Combined idle power of the nodes a configuration keeps powered on
  /// (used by the queueing analysis; unused nodes are off).
  double powered_idle_w(const ClusterConfig& config) const;

  const NodeTypeModel& arm_model() const { return *arm_; }
  const NodeTypeModel& amd_model() const { return *amd_; }

 private:
  const NodeTypeModel* arm_;
  const NodeTypeModel* amd_;
};

/// Sweep-grade evaluator over an enumeration space: compiles the A+B
/// single-type deployments once (DeploymentTable) and evaluates any of
/// the A·B+A+B configurations by combining at most two cached entries —
/// a closed-form matched split plus two ~20-flop compiled predictions.
/// Outcomes are bit-identical to ConfigEvaluator::evaluate on the
/// corresponding enumerate_configs entry, because the cached entries
/// replay exactly the arithmetic the uncached path performs.
///
/// Unlike ConfigEvaluator::evaluate, evaluate_at does not bump the
/// "config.evaluations" counter per call (an atomic per ~20 flops would
/// dominate); batch drivers account blocks instead (see hec/sweep).
class MemoizedConfigEvaluator {
 public:
  /// Both models must outlive the evaluator. Compiles every deployment
  /// up front: O(A+B) model compilations.
  MemoizedConfigEvaluator(const NodeTypeModel& arm_model,
                          const NodeTypeModel& amd_model,
                          const EnumerationLimits& limits);

  /// Number of configurations (== expected_config_count).
  std::size_t size() const { return layout_.size(); }

  /// The configuration at a global enumeration index; bit-identical to
  /// enumerate_configs(...)[index].
  ClusterConfig config_at(std::size_t index) const {
    return layout_.config(index);
  }

  /// Evaluates the configuration at a global enumeration index.
  ConfigOutcome evaluate_at(std::size_t index, double work_units) const;

  /// Combines two compiled deployments into a matched heterogeneous
  /// outcome (mirrors predict_mixed; `config` is copied into the result).
  static ConfigOutcome evaluate_hetero(const ClusterConfig& config,
                                       const DeploymentEntry& arm,
                                       const DeploymentEntry& amd,
                                       double work_units);
  /// Evaluates a homogeneous deployment from its compiled entry.
  static ConfigOutcome evaluate_arm_only(const ClusterConfig& config,
                                         const DeploymentEntry& arm,
                                         double work_units);
  static ConfigOutcome evaluate_amd_only(const ClusterConfig& config,
                                         const DeploymentEntry& amd,
                                         double work_units);

  const ConfigSpaceLayout& layout() const { return layout_; }
  const DeploymentTable& arm_table() const { return arm_table_; }
  const DeploymentTable& amd_table() const { return amd_table_; }

 private:
  ConfigSpaceLayout layout_;
  DeploymentTable arm_table_;
  DeploymentTable amd_table_;
  // Absent-side placeholders (same values layout_.config uses), cached
  // so evaluate_at builds configurations straight from table entries
  // without re-decoding the index.
  NodeConfig arm_unused_;
  NodeConfig amd_unused_;
};

}  // namespace hec
