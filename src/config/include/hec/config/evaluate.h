// Configuration evaluation: model-predicted (time, energy) per point.
//
// Step one of the paper's methodology (Fig. 1): for every configuration,
// predict execution time and energy, computing the matched workload split
// for heterogeneous points. Evaluation over tens of thousands of points is
// embarrassingly parallel and runs on the library thread pool.
#pragma once

#include <span>
#include <vector>

#include "hec/config/cluster_config.h"
#include "hec/model/matching.h"

namespace hec {

/// Evaluated configuration: the model's predictions for one point.
struct ConfigOutcome {
  ClusterConfig config;
  double t_s = 0.0;        ///< job service time
  double energy_j = 0.0;   ///< total energy over the job
  double units_arm = 0.0;  ///< matched workload share, low-power side
  double units_amd = 0.0;  ///< matched workload share, high-performance side
};

/// Evaluates configurations against a fixed pair of per-type models.
class ConfigEvaluator {
 public:
  /// Both models must outlive the evaluator.
  ConfigEvaluator(const NodeTypeModel& arm_model,
                  const NodeTypeModel& amd_model);

  /// Predicts one configuration servicing `work_units`.
  ConfigOutcome evaluate(const ClusterConfig& config,
                         double work_units) const;

  /// Predicts every configuration (parallel when `parallel`).
  std::vector<ConfigOutcome> evaluate_all(
      std::span<const ClusterConfig> configs, double work_units,
      bool parallel = true) const;

  /// Combined idle power of the nodes a configuration keeps powered on
  /// (used by the queueing analysis; unused nodes are off).
  double powered_idle_w(const ClusterConfig& config) const;

 private:
  const NodeTypeModel* arm_;
  const NodeTypeModel* amd_;
};

}  // namespace hec
