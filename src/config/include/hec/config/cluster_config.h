// One point of the heterogeneous configuration space.
//
// A configuration fixes, for each node type, how many nodes participate
// and at which (cores, frequency) operating point they run — the paper's
// Section IV-B space. A type with zero nodes is absent (homogeneous
// configurations set one side to zero).
#pragma once

#include "hec/model/node_model.h"

namespace hec {

/// A full cluster configuration: low-power (ARM) plus high-performance
/// (AMD) deployments. `nodes == 0` on a side means that type is unused;
/// its cores/f fields are then ignored.
struct ClusterConfig {
  NodeConfig arm;
  NodeConfig amd;

  bool uses_arm() const { return arm.nodes > 0; }
  bool uses_amd() const { return amd.nodes > 0; }
  bool heterogeneous() const { return uses_arm() && uses_amd(); }
};

}  // namespace hec
