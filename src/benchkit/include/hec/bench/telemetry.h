// Benchmark telemetry: every experiment binary's run becomes a durable,
// machine-comparable record.
//
// The 30 bench binaries reproduce the paper's tables and figures as
// human-readable text — good for eyeballing, useless for asking "did
// PR N make the evaluator slower?" or "did the model's Table 3 error
// drift?". This layer closes that gap:
//
//   1. Each bench registers its experiment once at the top of main()
//      (HEC_BENCH_EXPERIMENT) and optionally reports named metrics —
//      validation benches report model-vs-paper error (MAPE), drivers
//      report frontier sizes and fit quality.
//   2. When the HEC_BENCH_JSON environment variable names a file, an
//      at-exit hook serialises a RunRecord there: wall time, peak RSS,
//      the reported metrics, a full hec::obs counter/gauge snapshot,
//      histogram quantile summaries, per-phase span aggregates, and the
//      tracer's ring-drop accounting.
//   3. `hecsim_benchreport` (tools/) runs the suite, aggregates repeat
//      runs (median) into one suite document — BENCH_<git-sha>.json —
//      and gates it against bench/baseline.json (hec/bench/compare.h).
//
// Records are plain JSON (hec/bench/json.h) with versioned "schema"
// tags, so a BENCH_*.json written today stays parseable after the
// schema grows (consumers ignore unknown fields, reject unknown major
// versions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hec/bench/json.h"

namespace hec::bench::telemetry {

/// Schema tags stamped into every record. Bump the /vN suffix on any
/// field removal or meaning change; additions are backwards-compatible.
inline constexpr std::string_view kRunSchema = "hec-bench-run/v1";
inline constexpr std::string_view kSuiteSchema = "hec-bench-suite/v1";

/// Environment variable naming the per-run record file. Set by the
/// hecsim_benchreport runner for each child; unset => no record written.
inline constexpr const char* kRunRecordEnv = "HEC_BENCH_JSON";

/// What a bench binary reproduces. Mirrors the bench_* naming scheme.
enum class ExperimentKind {
  kFigure,     ///< a paper figure (bench_fig*)
  kTable,      ///< a paper table (bench_table*)
  kAblation,   ///< model-component ablation (bench_ablation_*)
  kExtension,  ///< beyond-the-paper experiment (bench_ext_*)
  kMicro,      ///< microbenchmark (google-benchmark driven)
  kUnknown,    ///< binary never called HEC_BENCH_EXPERIMENT
};
const char* to_string(ExperimentKind kind);
std::optional<ExperimentKind> experiment_kind_from_string(std::string_view s);

/// How a reported metric is gated by the baseline comparator.
enum class MetricKind {
  kAccuracy,  ///< model-vs-paper error; deterministic, tight tolerance
  kPerf,      ///< wall-clock-derived; noisy, wide tolerance
  kCount,     ///< deterministic count; any drift beyond rounding flags
  kInfo,      ///< recorded but never gated
};
const char* to_string(MetricKind kind);
std::optional<MetricKind> metric_kind_from_string(std::string_view s);

/// One value a bench chose to report (metric("table3.time_mape...")).
struct Metric {
  std::string name;
  double value = 0.0;
  MetricKind kind = MetricKind::kInfo;
  std::string unit;  ///< display only: "%", "s", "J", ""
};

/// Aggregate of all obs spans sharing a name: the per-phase timings
/// (characterize / evaluate-space / frontier / ...) of the run.
struct PhaseStat {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
};

/// Tracer ring-drop accounting for one thread (span.h ThreadDropStats).
struct ThreadDrops {
  std::uint32_t tid = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

/// count/sum plus estimated quantiles of one obs histogram. The raw
/// buckets stay in the trace exports; records keep the summary only.
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Everything one bench process execution reports.
struct RunRecord {
  std::string experiment = "(unregistered)";
  ExperimentKind kind = ExperimentKind::kUnknown;
  std::string paper_ref;

  double wall_s = 0.0;
  double peak_rss_mb = 0.0;

  std::vector<Metric> metrics;
  std::vector<std::pair<std::string, double>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSummary> histograms;
  std::vector<PhaseStat> phases;

  std::uint64_t spans_dropped_total = 0;
  std::vector<ThreadDrops> span_drops;
};

json::Value to_json(const RunRecord& record);
std::optional<RunRecord> run_record_from_json(const json::Value& v,
                                              std::string* error = nullptr);

/// Registers the experiment this process reproduces. Call once at the
/// top of main() — the HEC_BENCH_EXPERIMENT macro below is the spelling
/// benches use. Later calls overwrite (harmless, discouraged).
void register_experiment(std::string name, ExperimentKind kind,
                         std::string paper_ref);

/// Reports one named metric into this process's RunRecord. Thread-safe;
/// re-reporting a name overwrites its value (last write wins).
void report_metric(std::string name, double value, MetricKind kind,
                   std::string unit = "");

/// Peak resident set size of the process so far, in MiB.
double peak_rss_mib();

/// Builds the RunRecord for the current process: registered experiment
/// info, reported metrics, and a snapshot of the global obs registry
/// and tracer. `wall_s` is supplied by the caller (the at-exit hook
/// measures from static initialisation; tests pass a fixed value).
RunRecord collect_current_run(double wall_s);

/// One bench binary's aggregated result across `runs.size()` repeats.
struct BenchAggregate {
  std::string bench;  ///< binary name, e.g. "bench_fig4_pareto_ep"
  int exit_code = 0;
  bool timed_out = false;
  int term_signal = 0;  ///< signal that killed the child (0 = exited)
  int retries = 0;      ///< interrupted attempts that were re-run
  std::vector<RunRecord> runs;          ///< parsed per-run records
  std::vector<double> runner_wall_s;    ///< child wall per repeat (fallback)
};

/// "SIGKILL"/"SIGSEGV"/... for the common signals, "SIG<n>" otherwise.
std::string signal_name(int sig);

/// Aggregates repeats into the suite-schema bench entry: medians for
/// every numeric, min/max spread for wall/RSS. Works with zero parsed
/// runs (records only exit status + runner wall) so a crashing bench
/// still appears in the suite document.
json::Value aggregate_bench(const BenchAggregate& agg);

/// Assembles the top-level suite document around per-bench entries.
json::Value make_suite(const std::vector<BenchAggregate>& benches,
                       const std::string& git_sha, int repeat,
                       const std::string& created_utc);

}  // namespace hec::bench::telemetry

/// Registers the enclosing binary's experiment with the telemetry layer.
/// Kind is the bare enumerator name (kFigure, kTable, ...).
#define HEC_BENCH_EXPERIMENT(name, kind, paper_ref)       \
  ::hec::bench::telemetry::register_experiment(           \
      name, ::hec::bench::telemetry::ExperimentKind::kind, paper_ref)
