// Minimal JSON document model for the benchmark telemetry pipeline.
//
// The telemetry records (`BENCH_<sha>.json`, `bench/baseline.json`) are
// written by the bench binaries, parsed back by `hecsim_benchreport`,
// and diffed across commits. That loop must not depend on an external
// JSON library (the repo has none and pulls in none), so this header
// provides the ~20% of JSON the schema needs, done carefully:
//
//   * objects keep their keys sorted (std::map), so serialising the
//     same document twice — or on two machines — yields byte-identical
//     output, which is what makes golden tests and `diff baseline.json`
//     meaningful;
//   * numbers round-trip exactly (shortest-form std::to_chars);
//   * parse errors carry line/column context instead of failing silently.
//
// It is not a general-purpose JSON library: no streaming, no comments,
// no duplicate-key preservation; numbers outside double range saturate.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace hec::bench::json {

/// One JSON value: null, bool, number, string, array or object.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;  // sorted => stable output

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  /// Any non-bool arithmetic type stores as double (ints < 2^53 exact).
  template <typename T,
            std::enable_if_t<std::is_arithmetic_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  Value(T n) : v_(static_cast<double>(n)) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors with a fallback instead of throwing: telemetry
  /// consumers treat a missing/mistyped field as "absent", not fatal.
  bool as_bool(bool fallback = false) const;
  double as_number(double fallback = 0.0) const;
  const std::string& as_string() const;  // empty string when not a string

  /// Array/object views; empty statics when the value is another type.
  const Array& as_array() const;
  const Object& as_object() const;

  /// Mutable access, converting this value to the requested type first
  /// if it holds something else (like `js["key"]["sub"] = 3` builders).
  Array& array();
  Object& object();

  /// Object field lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;

  /// Member lookup with a shared null fallback: `v["a"]["b"].as_number()`
  /// never dereferences past a missing key.
  const Value& operator[](std::string_view key) const;
  Value& operator[](std::string_view key);  // creates (object-ifies) the key

  /// Serialises with 2-space indentation when `pretty`, compact
  /// otherwise. Non-finite numbers serialise as null (JSON has no NaN).
  void write(std::ostream& out, bool pretty = true) const;
  std::string dump(bool pretty = true) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// On failure returns nullopt and, when `error` is non-null, stores a
  /// "line L, column C: reason" description.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Shortest-round-trip decimal rendering of `v` ("0.1", not
/// "0.10000000000000001"); "null" for non-finite values.
std::string number_to_string(double v);

}  // namespace hec::bench::json
