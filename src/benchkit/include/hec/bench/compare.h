// Baseline comparison for benchmark telemetry suites.
//
// Gating perf numbers in CI fails in two directions: compare exactly
// and every run is "a regression" (clock noise, different machines);
// compare loosely and real regressions hide inside the slack. The
// comparator threads that needle by classifying every gated metric with
// a *per-kind* noise model:
//
//   metric kind   direction        default tolerance (rel, abs)
//   wall time     higher is worse  75%, 0.5 s    — cross-machine noise
//   peak RSS      higher is worse  50%, 64 MiB
//   accuracy      higher is worse   5%, 0.25     — deterministic seeds
//   perf metric   higher is worse  75%, 0.5
//   count         any drift flags  0.1%, 0.5     — deterministic counts
//
// A delta only flags when it exceeds max(rel * |baseline|, abs): the
// absolute floor keeps a 10 ms bench from flagging on 5 ms of jitter,
// the relative arm keeps a 10 s bench from needing 0.5 s precision.
// Improvements beyond tolerance are reported (refresh the baseline!)
// but never fail the gate. Deterministic metrics (model error, event
// counts) get tight tolerances on purpose — drifting them is a model
// change and must be acknowledged by re-seeding bench/baseline.json.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "hec/bench/json.h"

namespace hec::bench::telemetry {

/// Flags when |current - baseline| > max(rel * |baseline|, abs).
struct Tolerance {
  double rel = 0.0;
  double abs = 0.0;
  double threshold(double baseline) const;
};

struct CompareOptions {
  Tolerance wall{0.75, 0.50};        // seconds
  Tolerance rss{0.50, 64.0};         // MiB
  Tolerance accuracy{0.05, 0.25};    // metric units (usually % error)
  Tolerance perf_metric{0.75, 0.50};
  Tolerance count{0.001, 0.5};
  /// Benches present in the baseline but absent from the current suite
  /// fail the gate. Disabled by the runner when --filter is active.
  bool fail_on_missing_bench = true;
};

enum class Outcome {
  kWithinNoise,
  kImprovement,       ///< better beyond tolerance (baseline is stale)
  kRegression,        ///< worse (or drifted, for counts) beyond tolerance
  kMissingInCurrent,  ///< baseline has it, current run does not
  kNewInCurrent,      ///< current has it, baseline does not (informational)
};
const char* to_string(Outcome outcome);

/// One compared quantity. `metric` is "wall_s", "peak_rss_mb",
/// "metric:<name>" or "counter:<name>"; a whole-bench presence check
/// uses metric "(bench)".
struct Delta {
  std::string bench;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  Outcome outcome = Outcome::kWithinNoise;
  bool gated = true;  ///< false => never fails the gate (info kinds)
};

struct Comparison {
  std::vector<Delta> deltas;
  int regressions = 0;  ///< gated kRegression count
  int improvements = 0;
  int within_noise = 0;
  int missing = 0;  ///< gated kMissingInCurrent count
  int added = 0;

  /// Gate verdict: no gated regressions and nothing gated went missing.
  bool ok() const { return regressions == 0 && missing == 0; }
};

/// Compares two suite documents (kSuiteSchema). Benches and metrics are
/// matched by name; micro-kind benches skip counter gating (their
/// iteration counts are auto-tuned by the benchmark library, not
/// deterministic).
Comparison compare_suites(const json::Value& baseline,
                          const json::Value& current,
                          const CompareOptions& opts = {});

/// Renders the human dashboard (results/BENCH_REPORT.md): suite
/// overview table, per-bench wall/RSS/phases, accuracy metrics, and —
/// when `cmp` is non-null — the gate verdict with every out-of-noise
/// delta. `baseline_desc` names what the run was compared against.
void write_markdown_report(std::ostream& out, const json::Value& suite,
                           const Comparison* cmp,
                           const std::string& baseline_desc);

}  // namespace hec::bench::telemetry
