// Durable cross-run ledger: one append-only JSONL file remembering
// every CLI/bench invocation.
//
// A trace answers "where did *this* run spend its time"; the ledger
// answers "is that normal?". Each record carries the run's identity
// (run id, UTC timestamp, tool, argv), the build that produced it
// (hec::util::build_info(): git sha, build type, obs on/off), its
// outcome (exit code, wall seconds, peak RSS) and a small map of key
// counters (configs swept, shard spawn/steal/retry tallies). Records
// are single lines framed with an FNV-1a CRC, appended with
// O_APPEND + fsync — crash-durable like the sweep journal, and a torn
// final line is detected and skipped on read instead of poisoning the
// history. `trend()` compares the newest record against the median of
// its predecessors with the benchkit comparator's noise model, so
// `hecsim_obsreport` can flag "this run was slower than the last N"
// without a hand-maintained baseline.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hec/bench/compare.h"
#include "hec/bench/json.h"

namespace hec::bench::ledger {

inline constexpr std::string_view kSchema = "hec-run-ledger/v1";

/// Environment variable naming the ledger file. When set, the bench
/// at-exit hook (telemetry.cpp) appends one record per bench process.
inline constexpr const char* kLedgerEnv = "HEC_LEDGER";

/// Exit code recorded by at-exit hooks that cannot observe the real
/// process exit status.
inline constexpr int kExitUnknown = -1;

struct Record {
  std::string run_id;  ///< caller-chosen; "" when the run minted none
  std::string ts_utc;  ///< ISO 8601 UTC, e.g. "2026-08-08T12:00:00Z"
  std::string tool;    ///< "hecsim_cli", "bench_micro_sweep", ...
  std::vector<std::string> argv;

  // Build provenance (hec::util::build_info()).
  std::string version;
  std::string git_sha;
  std::string build_type;
  bool obs_enabled = true;

  int exit_code = kExitUnknown;
  double wall_s = 0.0;
  double peak_rss_mb = 0.0;

  /// Key counters: protocol-derived tallies (sweep.configs_total,
  /// shard.spawns, ...) that stay identical under HEC_OBS_DISABLE.
  std::map<std::string, double> counters;
};

/// Record pre-filled from the current process: build info, UTC
/// timestamp, peak RSS so far. Caller fills outcome and counters.
Record make_record(std::string tool, std::vector<std::string> argv);

/// Current time as ISO 8601 UTC (the ts_utc format).
std::string utc_now();

json::Value to_json(const Record& record);
std::optional<Record> record_from_json(const json::Value& v,
                                       std::string* error = nullptr);

/// Appends one CRC-framed line, creating the file if needed. Durable:
/// single write(2) under O_APPEND, then fsync. Throws hec::IoError on
/// any failure.
void append(const std::string& path, const Record& record);

struct ReadResult {
  std::vector<Record> records;  ///< valid records, file order (oldest first)
  std::size_t rejected = 0;     ///< torn/corrupt/foreign-schema lines skipped
};

/// Reads every intact record. A missing file is an empty ledger, not an
/// error; unreadable lines are counted in `rejected` and skipped.
ReadResult read(const std::string& path);

/// One compared quantity in a trend: wall_s, peak_rss_mb or a counter.
struct TrendDelta {
  std::string metric;
  double baseline = 0.0;  ///< median over the baseline window
  double current = 0.0;
  telemetry::Outcome outcome = telemetry::Outcome::kWithinNoise;
};

struct Trend {
  std::string tool;
  std::size_t baseline_runs = 0;  ///< predecessors the medians cover
  std::vector<TrendDelta> deltas;
  int regressions = 0;

  bool ok() const { return regressions == 0; }
};

/// Compares the newest record against the median of up to `window`
/// earlier records of the same tool, using the benchkit per-kind noise
/// model (wall/rss tolerances; counters use the count tolerance and
/// flag drift in either direction). Fewer than one predecessor => an
/// empty trend (nothing to compare against).
Trend trend(const std::vector<Record>& records, std::size_t window = 8,
            const telemetry::CompareOptions& opts = {});

}  // namespace hec::bench::ledger
