#include "hec/bench/telemetry.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "hec/bench/ledger.h"
#include "hec/obs/metrics.h"
#include "hec/obs/span.h"
#include "hec/util/atomic_file.h"
#include "hec/util/build_info.h"

namespace hec::bench::telemetry {

const char* to_string(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kFigure: return "figure";
    case ExperimentKind::kTable: return "table";
    case ExperimentKind::kAblation: return "ablation";
    case ExperimentKind::kExtension: return "extension";
    case ExperimentKind::kMicro: return "micro";
    case ExperimentKind::kUnknown: break;
  }
  return "unknown";
}

std::optional<ExperimentKind> experiment_kind_from_string(
    std::string_view s) {
  if (s == "figure") return ExperimentKind::kFigure;
  if (s == "table") return ExperimentKind::kTable;
  if (s == "ablation") return ExperimentKind::kAblation;
  if (s == "extension") return ExperimentKind::kExtension;
  if (s == "micro") return ExperimentKind::kMicro;
  if (s == "unknown") return ExperimentKind::kUnknown;
  return std::nullopt;
}

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kAccuracy: return "accuracy";
    case MetricKind::kPerf: return "perf";
    case MetricKind::kCount: return "count";
    case MetricKind::kInfo: break;
  }
  return "info";
}

std::optional<MetricKind> metric_kind_from_string(std::string_view s) {
  if (s == "accuracy") return MetricKind::kAccuracy;
  if (s == "perf") return MetricKind::kPerf;
  if (s == "count") return MetricKind::kCount;
  if (s == "info") return MetricKind::kInfo;
  return std::nullopt;
}

double peak_rss_mib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  // ru_maxrss is KiB on Linux.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

namespace {

/// Process-wide registration + reported metrics. Guarded because
/// report_metric may be called from worker threads.
struct Context {
  std::mutex mutex;
  std::string experiment = "(unregistered)";
  ExperimentKind kind = ExperimentKind::kUnknown;
  std::string paper_ref;
  std::vector<Metric> metrics;  // insertion order; names unique
};

Context& context() {
  static Context* instance = new Context();  // leaked: used at exit
  return *instance;
}

}  // namespace

void register_experiment(std::string name, ExperimentKind kind,
                         std::string paper_ref) {
  Context& ctx = context();
  std::lock_guard lock(ctx.mutex);
  ctx.experiment = std::move(name);
  ctx.kind = kind;
  ctx.paper_ref = std::move(paper_ref);
}

void report_metric(std::string name, double value, MetricKind kind,
                   std::string unit) {
  Context& ctx = context();
  std::lock_guard lock(ctx.mutex);
  for (Metric& m : ctx.metrics) {
    if (m.name == name) {
      m = Metric{std::move(name), value, kind, std::move(unit)};
      return;
    }
  }
  ctx.metrics.push_back(Metric{std::move(name), value, kind, std::move(unit)});
}

RunRecord collect_current_run(double wall_s) {
  RunRecord rec;
  {
    Context& ctx = context();
    std::lock_guard lock(ctx.mutex);
    rec.experiment = ctx.experiment;
    rec.kind = ctx.kind;
    rec.paper_ref = ctx.paper_ref;
    rec.metrics = ctx.metrics;
  }
  rec.wall_s = wall_s;
  rec.peak_rss_mb = peak_rss_mib();

  const obs::MetricsRegistry::Snapshot snap = obs::registry().snapshot();
  rec.counters = snap.counters;
  rec.gauges = snap.gauges;
  rec.histograms.reserve(snap.histograms.size());
  for (const auto& h : snap.histograms) {
    rec.histograms.push_back(HistogramSummary{h.name, h.count, h.sum,
                                              h.quantile(0.50),
                                              h.quantile(0.95),
                                              h.quantile(0.99)});
  }

  // Per-phase timings: every span with the same name folds into one
  // (count, total seconds) aggregate, keyed deterministically.
  std::map<std::string, PhaseStat> phases;
  for (const obs::SpanEvent& ev : obs::tracer().snapshot()) {
    PhaseStat& p = phases[ev.name];
    p.name = ev.name;
    ++p.count;
    p.total_s += ev.dur_us * 1e-6;
  }
  rec.phases.reserve(phases.size());
  for (auto& [name, stat] : phases) rec.phases.push_back(std::move(stat));

  rec.spans_dropped_total = obs::tracer().dropped();
  for (const auto& t : obs::tracer().thread_drop_stats()) {
    rec.span_drops.push_back(ThreadDrops{t.tid, t.recorded, t.dropped});
  }
  return rec;
}

json::Value to_json(const RunRecord& record) {
  json::Value v;
  v["schema"] = json::Value(std::string(kRunSchema));
  {
    json::Value& exp = v["experiment"];
    exp["name"] = record.experiment;
    exp["kind"] = to_string(record.kind);
    exp["paper_ref"] = record.paper_ref;
  }
  v["wall_s"] = record.wall_s;
  v["peak_rss_mb"] = record.peak_rss_mb;

  json::Value& metrics = v["metrics"];
  metrics.object();  // always present, possibly empty
  for (const Metric& m : record.metrics) {
    json::Value& mv = metrics[m.name];
    mv["value"] = m.value;
    mv["kind"] = to_string(m.kind);
    if (!m.unit.empty()) mv["unit"] = m.unit;
  }

  json::Value& counters = v["counters"];
  counters.object();
  for (const auto& [name, value] : record.counters) counters[name] = value;
  json::Value& gauges = v["gauges"];
  gauges.object();
  for (const auto& [name, value] : record.gauges) gauges[name] = value;

  json::Value& hists = v["histograms"];
  hists.object();
  for (const HistogramSummary& h : record.histograms) {
    json::Value& hv = hists[h.name];
    hv["count"] = h.count;
    hv["sum"] = h.sum;
    hv["p50"] = h.p50;
    hv["p95"] = h.p95;
    hv["p99"] = h.p99;
  }

  json::Value& phases = v["phases"];
  phases.object();
  for (const PhaseStat& p : record.phases) {
    json::Value& pv = phases[p.name];
    pv["count"] = p.count;
    pv["total_s"] = p.total_s;
  }

  v["spans_dropped_total"] = record.spans_dropped_total;
  json::Value::Array drops;
  for (const ThreadDrops& t : record.span_drops) {
    json::Value tv;
    tv["tid"] = t.tid;
    tv["recorded"] = t.recorded;
    tv["dropped"] = t.dropped;
    drops.push_back(std::move(tv));
  }
  v["span_drops"] = json::Value(std::move(drops));
  return v;
}

std::optional<RunRecord> run_record_from_json(const json::Value& v,
                                              std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const std::string& schema = v["schema"].as_string();
  if (schema != kRunSchema) {
    return fail("unsupported run schema: '" + schema + "'");
  }
  RunRecord rec;
  rec.experiment = v["experiment"]["name"].as_string();
  rec.kind = experiment_kind_from_string(v["experiment"]["kind"].as_string())
                 .value_or(ExperimentKind::kUnknown);
  rec.paper_ref = v["experiment"]["paper_ref"].as_string();
  rec.wall_s = v["wall_s"].as_number();
  rec.peak_rss_mb = v["peak_rss_mb"].as_number();

  for (const auto& [name, mv] : v["metrics"].as_object()) {
    Metric m;
    m.name = name;
    m.value = mv["value"].as_number();
    m.kind = metric_kind_from_string(mv["kind"].as_string())
                 .value_or(MetricKind::kInfo);
    m.unit = mv["unit"].as_string();
    rec.metrics.push_back(std::move(m));
  }
  for (const auto& [name, cv] : v["counters"].as_object()) {
    rec.counters.emplace_back(name, cv.as_number());
  }
  for (const auto& [name, gv] : v["gauges"].as_object()) {
    rec.gauges.emplace_back(name, gv.as_number());
  }
  for (const auto& [name, hv] : v["histograms"].as_object()) {
    rec.histograms.push_back(HistogramSummary{
        name, static_cast<std::uint64_t>(hv["count"].as_number()),
        hv["sum"].as_number(), hv["p50"].as_number(), hv["p95"].as_number(),
        hv["p99"].as_number()});
  }
  for (const auto& [name, pv] : v["phases"].as_object()) {
    rec.phases.push_back(PhaseStat{
        name, static_cast<std::uint64_t>(pv["count"].as_number()),
        pv["total_s"].as_number()});
  }
  rec.spans_dropped_total =
      static_cast<std::uint64_t>(v["spans_dropped_total"].as_number());
  for (const json::Value& tv : v["span_drops"].as_array()) {
    rec.span_drops.push_back(ThreadDrops{
        static_cast<std::uint32_t>(tv["tid"].as_number()),
        static_cast<std::uint64_t>(tv["recorded"].as_number()),
        static_cast<std::uint64_t>(tv["dropped"].as_number())});
  }
  return rec;
}

namespace {

struct Stats {
  double median = 0.0, min = 0.0, max = 0.0;
};

Stats stats_of(std::vector<double> xs) {
  Stats s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  const std::size_t n = xs.size();
  s.median = n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
  return s;
}

json::Value stats_json(const Stats& s) {
  json::Value v;
  v["median"] = s.median;
  v["min"] = s.min;
  v["max"] = s.max;
  return v;
}

}  // namespace

std::string signal_name(int sig) {
  switch (sig) {
    case SIGHUP: return "SIGHUP";
    case SIGINT: return "SIGINT";
    case SIGQUIT: return "SIGQUIT";
    case SIGILL: return "SIGILL";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGKILL: return "SIGKILL";
    case SIGSEGV: return "SIGSEGV";
    case SIGPIPE: return "SIGPIPE";
    case SIGALRM: return "SIGALRM";
    case SIGTERM: return "SIGTERM";
  }
  return "SIG" + std::to_string(sig);
}

json::Value aggregate_bench(const BenchAggregate& agg) {
  json::Value v;
  v["exit_code"] = agg.exit_code;
  v["timed_out"] = json::Value(agg.timed_out);
  // Only present for signal deaths / re-runs: keys absent from healthy
  // suites so baselines stay unchanged.
  if (agg.term_signal != 0) v["term_signal"] = signal_name(agg.term_signal);
  if (agg.retries != 0) v["retries"] = agg.retries;
  v["runs"] = agg.runs.size();

  // Wall time: prefer the benches' own records (measured inside the
  // process, excludes exec/loader overhead); fall back to the runner's
  // child wall when a bench produced no record.
  std::vector<double> walls;
  if (!agg.runs.empty()) {
    for (const RunRecord& r : agg.runs) walls.push_back(r.wall_s);
  } else {
    walls = agg.runner_wall_s;
  }
  v["wall_s"] = stats_json(stats_of(std::move(walls)));

  if (!agg.runs.empty()) {
    const RunRecord& first = agg.runs.front();
    json::Value& exp = v["experiment"];
    exp["name"] = first.experiment;
    exp["kind"] = to_string(first.kind);
    exp["paper_ref"] = first.paper_ref;

    std::vector<double> rss;
    for (const RunRecord& r : agg.runs) rss.push_back(r.peak_rss_mb);
    v["peak_rss_mb"] = stats_json(stats_of(std::move(rss)));

    // Median every named series across repeats. Names missing from some
    // repeats are medianed over the runs that have them.
    std::map<std::string, std::vector<double>> metric_vals;
    std::map<std::string, const Metric*> metric_info;
    std::map<std::string, std::vector<double>> counter_vals;
    std::map<std::string, std::vector<double>> phase_count;
    std::map<std::string, std::vector<double>> phase_total;
    std::uint64_t drops = 0;
    for (const RunRecord& r : agg.runs) {
      for (const Metric& m : r.metrics) {
        metric_vals[m.name].push_back(m.value);
        metric_info.emplace(m.name, &m);
      }
      for (const auto& [name, value] : r.counters) {
        counter_vals[name].push_back(value);
      }
      for (const PhaseStat& p : r.phases) {
        phase_count[p.name].push_back(static_cast<double>(p.count));
        phase_total[p.name].push_back(p.total_s);
      }
      drops = std::max(drops, r.spans_dropped_total);
    }

    json::Value& metrics = v["metrics"];
    metrics.object();
    for (auto& [name, vals] : metric_vals) {
      const Metric* info = metric_info[name];
      json::Value& mv = metrics[name];
      mv["value"] = stats_of(std::move(vals)).median;
      mv["kind"] = to_string(info->kind);
      if (!info->unit.empty()) mv["unit"] = info->unit;
    }
    json::Value& counters = v["counters"];
    counters.object();
    for (auto& [name, vals] : counter_vals) {
      counters[name] = stats_of(std::move(vals)).median;
    }
    json::Value& phases = v["phases"];
    phases.object();
    for (auto& [name, counts] : phase_count) {
      json::Value& pv = phases[name];
      pv["count"] = stats_of(std::move(counts)).median;
      pv["total_s"] = stats_of(std::move(phase_total[name])).median;
    }
    v["spans_dropped_total"] = drops;
  }
  return v;
}

json::Value make_suite(const std::vector<BenchAggregate>& benches,
                       const std::string& git_sha, int repeat,
                       const std::string& created_utc) {
  json::Value v;
  v["schema"] = json::Value(std::string(kSuiteSchema));
  v["git_sha"] = git_sha;
  v["repeat"] = repeat;
  v["created_utc"] = created_utc;
  // Same build-info block as ledger records and `hecsim_cli
  // --build-info`: one provenance shape across every surface. The
  // runner-observed `git_sha` above stays authoritative for baseline
  // matching; this records what the binaries themselves were built as.
  const util::BuildInfo& build = util::build_info();
  json::Value& bv = v["build"];
  bv["build_type"] = build.build_type;
  bv["git_sha"] = build.git_sha;
  bv["obs"] = build.obs_enabled;
  bv["version"] = build.version;
  json::Value& out = v["benches"];
  out.object();
  for (const BenchAggregate& agg : benches) {
    out[agg.bench] = aggregate_bench(agg);
  }
  return v;
}

namespace {

/// At-exit record writer. File-scope static: constructed during static
/// initialisation of any binary that references this TU (every bench
/// does, via HEC_BENCH_EXPERIMENT), so `start` brackets ~the whole
/// process. The destructor runs after main() returns — after the
/// experiment finished and reported — and writes the record only when
/// the runner asked for one via HEC_BENCH_JSON.
struct RunRecordFlusher {
  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();

  ~RunRecordFlusher() {
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    const char* path = std::getenv(kRunRecordEnv);
    if (path != nullptr && *path != '\0') {
      std::ostringstream out;
      to_json(collect_current_run(wall.count())).write(out);
      try {
        // Atomic replace: the runner either reads a complete record or
        // none (it treats a missing file as "child died before exit").
        util::atomic_write_file(path, out.str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench-telemetry] %s\n", e.what());
      }
    }
    const char* ledger_path = std::getenv(ledger::kLedgerEnv);
    if (ledger_path != nullptr && *ledger_path != '\0') {
      const RunRecord rec = collect_current_run(wall.count());
      ledger::Record entry =
          ledger::make_record(rec.experiment, {rec.experiment});
      entry.wall_s = rec.wall_s;
      // exit_code stays kExitUnknown: an at-exit hook cannot observe
      // the status main() is about to return.
      for (const auto& [name, value] : rec.counters) {
        // Key tallies only — the full counter set lives in the bench
        // record; the ledger keeps the sweep/shard protocol counters
        // that trend comparisons care about.
        if (name.rfind("sweep.", 0) == 0 || name.rfind("shard.", 0) == 0 ||
            name == "config.evaluations") {
          entry.counters[name] = value;
        }
      }
      try {
        ledger::append(ledger_path, entry);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "[bench-telemetry] %s\n", e.what());
      }
    }
  }
};

const RunRecordFlusher run_record_flusher;

}  // namespace

}  // namespace hec::bench::telemetry
