#include "hec/bench/ledger.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <utility>

#include "hec/bench/telemetry.h"
#include "hec/util/atomic_file.h"
#include "hec/util/build_info.h"

namespace hec::bench::ledger {

namespace {

/// Same FNV-1a as the sweep journal (hec/resilience/journal.h). Local
/// copy: benchkit sits below resilience in the dependency order.
std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string crc_hex(std::string_view payload) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  return buf;
}

double median(std::vector<double> vals) {
  if (vals.empty()) return 0.0;
  std::sort(vals.begin(), vals.end());
  const std::size_t mid = vals.size() / 2;
  return vals.size() % 2 == 1 ? vals[mid]
                              : 0.5 * (vals[mid - 1] + vals[mid]);
}

/// Mirrors the suite comparator's per-metric verdict: flag only beyond
/// max(rel*|base|, abs); improvements (when direction matters) are
/// reported, never counted as regressions.
telemetry::Outcome classify(double baseline, double current,
                            const telemetry::Tolerance& tol,
                            bool drift_both_ways) {
  const double delta = current - baseline;
  if (std::fabs(delta) <= tol.threshold(baseline)) {
    return telemetry::Outcome::kWithinNoise;
  }
  if (drift_both_ways || delta > 0) return telemetry::Outcome::kRegression;
  return telemetry::Outcome::kImprovement;
}

}  // namespace

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Record make_record(std::string tool, std::vector<std::string> argv) {
  Record rec;
  rec.tool = std::move(tool);
  rec.argv = std::move(argv);
  rec.ts_utc = utc_now();
  const util::BuildInfo& build = util::build_info();
  rec.version = build.version;
  rec.git_sha = build.git_sha;
  rec.build_type = build.build_type;
  rec.obs_enabled = build.obs_enabled;
  rec.peak_rss_mb = telemetry::peak_rss_mib();
  return rec;
}

json::Value to_json(const Record& record) {
  json::Value v;
  json::Value& argv = v["argv"];
  argv.array();
  for (const std::string& a : record.argv) argv.array().push_back(a);
  json::Value& build = v["build"];
  build["build_type"] = record.build_type;
  build["git_sha"] = record.git_sha;
  build["obs"] = record.obs_enabled;
  build["version"] = record.version;
  json::Value& counters = v["counters"];
  counters.object();
  for (const auto& [name, value] : record.counters) counters[name] = value;
  v["exit_code"] = record.exit_code;
  v["peak_rss_mb"] = record.peak_rss_mb;
  v["run_id"] = record.run_id;
  v["tool"] = record.tool;
  v["ts_utc"] = record.ts_utc;
  v["wall_s"] = record.wall_s;
  return v;
}

std::optional<Record> record_from_json(const json::Value& v,
                                       std::string* error) {
  const auto fail = [error](const char* why) -> std::optional<Record> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!v.is_object()) return fail("record is not an object");
  const json::Value* tool = v.find("tool");
  if (tool == nullptr || !tool->is_string()) return fail("missing tool");
  Record rec;
  rec.tool = tool->as_string();
  rec.run_id = v["run_id"].as_string();
  rec.ts_utc = v["ts_utc"].as_string();
  if (const json::Value* argv = v.find("argv"); argv && argv->is_array()) {
    for (const json::Value& a : argv->as_array()) {
      rec.argv.push_back(a.as_string());
    }
  }
  const json::Value& build = v["build"];
  rec.version = build["version"].as_string();
  rec.git_sha = build["git_sha"].as_string();
  rec.build_type = build["build_type"].as_string();
  rec.obs_enabled = build["obs"].as_bool(true);
  rec.exit_code = static_cast<int>(v["exit_code"].as_number(kExitUnknown));
  rec.wall_s = v["wall_s"].as_number();
  rec.peak_rss_mb = v["peak_rss_mb"].as_number();
  if (const json::Value* counters = v.find("counters");
      counters && counters->is_object()) {
    for (const auto& [name, value] : counters->as_object()) {
      rec.counters[name] = value.as_number();
    }
  }
  return rec;
}

void append(const std::string& path, const Record& record) {
  const std::string payload = to_json(record).dump(/*pretty=*/false);
  json::Value frame;
  frame["crc"] = crc_hex(payload);
  frame["record"] = to_json(record);
  frame["schema"] = std::string(kSchema);
  const std::string line = frame.dump(/*pretty=*/false) + "\n";

  // O_APPEND keeps concurrent writers (a bench suite run appends from
  // every child) line-atomic for writes under PIPE_BUF; fsync makes the
  // record as durable as the sweep journal's commits.
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw IoError("ledger: open " + path + ": " + std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      ::close(fd);
      throw IoError("ledger: write " + path + ": " + why);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("ledger: fsync " + path + ": " + why);
  }
  ::close(fd);
}

ReadResult read(const std::string& path) {
  ReadResult result;
  std::ifstream in(path);
  if (!in) return result;  // no file yet: an empty ledger
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::optional<json::Value> frame = json::Value::parse(line);
    if (!frame || !frame->is_object() ||
        (*frame)["schema"].as_string() != kSchema) {
      ++result.rejected;
      continue;
    }
    const json::Value* rec = frame->find("record");
    if (rec == nullptr ||
        (*frame)["crc"].as_string() != crc_hex(rec->dump(/*pretty=*/false))) {
      ++result.rejected;
      continue;
    }
    std::optional<Record> parsed = record_from_json(*rec);
    if (!parsed) {
      ++result.rejected;
      continue;
    }
    result.records.push_back(std::move(*parsed));
  }
  return result;
}

Trend trend(const std::vector<Record>& records, std::size_t window,
            const telemetry::CompareOptions& opts) {
  Trend t;
  if (records.empty() || window == 0) return t;
  const Record& current = records.back();
  t.tool = current.tool;

  // Baseline: the newest `window` predecessors of the *same invocation*
  // (tool + argv) — comparing a 10-shard sweep against a 2-shard one
  // would only report that the flags changed.
  std::vector<const Record*> base;
  for (std::size_t i = records.size() - 1; i-- > 0;) {
    const Record& r = records[i];
    if (r.tool == current.tool && r.argv == current.argv) {
      base.push_back(&r);
      if (base.size() == window) break;
    }
  }
  t.baseline_runs = base.size();
  if (base.empty()) return t;

  const auto add = [&t](std::string metric, double baseline, double cur,
                        telemetry::Outcome outcome) {
    if (outcome == telemetry::Outcome::kRegression) ++t.regressions;
    t.deltas.push_back({std::move(metric), baseline, cur, outcome});
  };

  std::vector<double> walls, rsses;
  for (const Record* r : base) {
    walls.push_back(r->wall_s);
    rsses.push_back(r->peak_rss_mb);
  }
  const double wall_base = median(std::move(walls));
  add("wall_s", wall_base, current.wall_s,
      classify(wall_base, current.wall_s, opts.wall, false));
  const double rss_base = median(std::move(rsses));
  add("peak_rss_mb", rss_base, current.peak_rss_mb,
      classify(rss_base, current.peak_rss_mb, opts.rss, false));

  for (const auto& [name, value] : current.counters) {
    std::vector<double> vals;
    for (const Record* r : base) {
      if (const auto it = r->counters.find(name); it != r->counters.end()) {
        vals.push_back(it->second);
      }
    }
    if (vals.empty()) continue;  // new counter: informational only
    const double counter_base = median(std::move(vals));
    add("counter:" + name, counter_base, value,
        classify(counter_base, value, opts.count, true));
  }
  return t;
}

}  // namespace hec::bench::ledger
