#include "hec/bench/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <system_error>
#include <utility>

namespace hec::bench::json {

namespace {

const Value::Array kEmptyArray{};
const Value::Object kEmptyObject{};
const std::string kEmptyString{};
const Value kNullValue{};

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::string number_to_string(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

bool Value::as_bool(bool fallback) const {
  const bool* b = std::get_if<bool>(&v_);
  return b != nullptr ? *b : fallback;
}

double Value::as_number(double fallback) const {
  const double* n = std::get_if<double>(&v_);
  return n != nullptr ? *n : fallback;
}

const std::string& Value::as_string() const {
  const std::string* s = std::get_if<std::string>(&v_);
  return s != nullptr ? *s : kEmptyString;
}

const Value::Array& Value::as_array() const {
  const Array* a = std::get_if<Array>(&v_);
  return a != nullptr ? *a : kEmptyArray;
}

const Value::Object& Value::as_object() const {
  const Object* o = std::get_if<Object>(&v_);
  return o != nullptr ? *o : kEmptyObject;
}

Value::Array& Value::array() {
  if (!is_array()) v_ = Array{};
  return std::get<Array>(v_);
}

Value::Object& Value::object() {
  if (!is_object()) v_ = Object{};
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  const Object* o = std::get_if<Object>(&v_);
  if (o == nullptr) return nullptr;
  const auto it = o->find(std::string(key));
  return it != o->end() ? &it->second : nullptr;
}

const Value& Value::operator[](std::string_view key) const {
  const Value* v = find(key);
  return v != nullptr ? *v : kNullValue;
}

Value& Value::operator[](std::string_view key) {
  return object()[std::string(key)];
}

namespace {

void write_value(std::ostream& out, const Value& v, bool pretty, int depth) {
  const auto indent = [&](int d) {
    if (!pretty) return;
    out << '\n';
    for (int i = 0; i < 2 * d; ++i) out << ' ';
  };
  if (v.is_null()) {
    out << "null";
  } else if (v.is_bool()) {
    out << (v.as_bool() ? "true" : "false");
  } else if (v.is_number()) {
    out << number_to_string(v.as_number());
  } else if (v.is_string()) {
    write_escaped(out, v.as_string());
  } else if (v.is_array()) {
    const auto& arr = v.as_array();
    if (arr.empty()) {
      out << "[]";
      return;
    }
    out << '[';
    bool first = true;
    for (const Value& e : arr) {
      if (!first) out << ',';
      first = false;
      indent(depth + 1);
      write_value(out, e, pretty, depth + 1);
    }
    indent(depth);
    out << ']';
  } else {
    const auto& obj = v.as_object();
    if (obj.empty()) {
      out << "{}";
      return;
    }
    out << '{';
    bool first = true;
    for (const auto& [key, e] : obj) {
      if (!first) out << ',';
      first = false;
      indent(depth + 1);
      write_escaped(out, key);
      out << (pretty ? ": " : ":");
      write_value(out, e, pretty, depth + 1);
    }
    indent(depth);
    out << '}';
  }
}

/// Recursive-descent parser over the whole input string.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    std::optional<Value> v = parse_value();
    if (v) {
      skip_ws();
      if (pos_ != text_.size()) {
        fail("trailing characters after JSON document");
        v.reset();
      }
    }
    if (!v && error != nullptr) *error = error_;
    return v;
  }

 private:
  std::optional<Value> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return Value(std::move(*s));
      }
      case 't': return parse_literal("true", Value(true));
      case 'f': return parse_literal("false", Value(false));
      case 'n': return parse_literal("null", Value(nullptr));
      default: return parse_number();
    }
  }

  // GCC 12's -Wmaybe-uninitialized misfires on moving the variant-backed
  // Value out of the checked optional into the map node (the engaged
  // state is guaranteed by the `if (!val)` guard above the move).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    Value::Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key string");
      }
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      std::optional<Value> val = parse_value();
      if (!val) return std::nullopt;
      obj.insert_or_assign(std::move(*key), std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return Value(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    Value::Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      std::optional<Value> val = parse_value();
      if (!val) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return Value(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("unescaped control character in string");
          return std::nullopt;
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // reassembled; telemetry strings are ASCII in practice).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape sequence");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec == std::errc::result_out_of_range) {
      v = text_[start] == '-' ? -HUGE_VAL : HUGE_VAL;
    } else if (res.ec != std::errc{} || res.ptr != text_.data() + pos_) {
      pos_ = start;
      return fail("malformed number");
    }
    return Value(v);
  }

  std::optional<Value> parse_literal(std::string_view lit, Value v) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return fail("unknown literal");
    }
    pos_ += lit.size();
    return v;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::nullopt_t fail(const std::string& reason) {
    if (error_.empty()) {
      std::size_t line = 1, col = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      error_ = "line " + std::to_string(line) + ", column " +
               std::to_string(col) + ": " + reason;
    }
    return std::nullopt;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

void Value::write(std::ostream& out, bool pretty) const {
  write_value(out, *this, pretty, 0);
  if (pretty) out << '\n';
}

std::string Value::dump(bool pretty) const {
  std::ostringstream out;
  write(out, pretty);
  return out.str();
}

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace hec::bench::json
