#include "hec/bench/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "hec/bench/telemetry.h"

namespace hec::bench::telemetry {

double Tolerance::threshold(double baseline) const {
  return std::max(rel * std::abs(baseline), abs);
}

const char* to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kWithinNoise: return "within-noise";
    case Outcome::kImprovement: return "improvement";
    case Outcome::kRegression: return "regression";
    case Outcome::kMissingInCurrent: return "missing";
    case Outcome::kNewInCurrent: return "new";
  }
  return "?";
}

namespace {

/// Counts `d` into the comparison totals and stores it.
void push(Comparison& cmp, Delta d) {
  if (d.gated) {
    switch (d.outcome) {
      case Outcome::kRegression: ++cmp.regressions; break;
      case Outcome::kMissingInCurrent: ++cmp.missing; break;
      case Outcome::kImprovement: ++cmp.improvements; break;
      case Outcome::kWithinNoise: ++cmp.within_noise; break;
      case Outcome::kNewInCurrent: ++cmp.added; break;
    }
  } else if (d.outcome == Outcome::kNewInCurrent) {
    ++cmp.added;
  } else if (d.outcome == Outcome::kImprovement) {
    ++cmp.improvements;
  } else if (d.outcome == Outcome::kWithinNoise) {
    ++cmp.within_noise;
  }
  cmp.deltas.push_back(std::move(d));
}

/// Classifies a higher-is-worse quantity (wall, RSS, error metrics).
Outcome classify_directional(double baseline, double current,
                             const Tolerance& tol) {
  const double delta = current - baseline;
  const double thr = tol.threshold(baseline);
  if (delta > thr) return Outcome::kRegression;
  if (delta < -thr) return Outcome::kImprovement;
  return Outcome::kWithinNoise;
}

/// Classifies a deterministic quantity where drift in either direction
/// means behaviour changed (event counts, evaluation counts).
Outcome classify_drift(double baseline, double current,
                       const Tolerance& tol) {
  return std::abs(current - baseline) > tol.threshold(baseline)
             ? Outcome::kRegression
             : Outcome::kWithinNoise;
}

void compare_bench(Comparison& cmp, const std::string& name,
                   const json::Value& base, const json::Value& cur,
                   const CompareOptions& opts) {
  const auto median = [](const json::Value& bench, const char* field) {
    return bench[field]["median"].as_number(
        std::numeric_limits<double>::quiet_NaN());
  };

  // Wall time and peak RSS: present in every suite entry.
  {
    const double b = median(base, "wall_s");
    const double c = median(cur, "wall_s");
    push(cmp, Delta{name, "wall_s", b, c,
                    classify_directional(b, c, opts.wall), true});
  }
  if (base.find("peak_rss_mb") != nullptr && cur.find("peak_rss_mb") != nullptr) {
    const double b = median(base, "peak_rss_mb");
    const double c = median(cur, "peak_rss_mb");
    push(cmp, Delta{name, "peak_rss_mb", b, c,
                    classify_directional(b, c, opts.rss), true});
  }

  // Reported metrics, gated per kind.
  const json::Value::Object& base_metrics = base["metrics"].as_object();
  const json::Value::Object& cur_metrics = cur["metrics"].as_object();
  for (const auto& [mname, bval] : base_metrics) {
    const std::string label = "metric:" + mname;
    const double b = bval["value"].as_number();
    const MetricKind kind =
        metric_kind_from_string(bval["kind"].as_string())
            .value_or(MetricKind::kInfo);
    const auto it = cur_metrics.find(mname);
    if (it == cur_metrics.end()) {
      push(cmp, Delta{name, label, b, 0.0, Outcome::kMissingInCurrent,
                      kind != MetricKind::kInfo});
      continue;
    }
    const double c = it->second["value"].as_number();
    Outcome outcome = Outcome::kWithinNoise;
    bool gated = true;
    switch (kind) {
      case MetricKind::kAccuracy:
        outcome = classify_directional(b, c, opts.accuracy);
        break;
      case MetricKind::kPerf:
        outcome = classify_directional(b, c, opts.perf_metric);
        break;
      case MetricKind::kCount:
        outcome = classify_drift(b, c, opts.count);
        break;
      case MetricKind::kInfo:
        outcome = classify_drift(b, c, opts.count);
        gated = false;
        break;
    }
    push(cmp, Delta{name, label, b, c, outcome, gated});
  }
  for (const auto& [mname, cval] : cur_metrics) {
    if (base_metrics.find(mname) == base_metrics.end()) {
      push(cmp, Delta{name, "metric:" + mname, 0.0,
                      cval["value"].as_number(), Outcome::kNewInCurrent,
                      false});
    }
  }

  // Obs counters: deterministic event/evaluation totals — except under
  // google-benchmark, which tunes iteration counts to wall time.
  const bool micro = cur["experiment"]["kind"].as_string() == "micro" ||
                     base["experiment"]["kind"].as_string() == "micro";
  if (!micro) {
    const json::Value::Object& base_counters = base["counters"].as_object();
    const json::Value::Object& cur_counters = cur["counters"].as_object();
    for (const auto& [cname, bval] : base_counters) {
      const std::string label = "counter:" + cname;
      const double b = bval.as_number();
      const auto it = cur_counters.find(cname);
      if (it == cur_counters.end()) {
        push(cmp, Delta{name, label, b, 0.0, Outcome::kMissingInCurrent,
                        true});
        continue;
      }
      const double c = it->second.as_number();
      push(cmp, Delta{name, label, b, c, classify_drift(b, c, opts.count),
                      true});
    }
    for (const auto& [cname, cval] : cur_counters) {
      if (base_counters.find(cname) == base_counters.end()) {
        push(cmp, Delta{name, "counter:" + cname, 0.0, cval.as_number(),
                        Outcome::kNewInCurrent, false});
      }
    }
  }
}

}  // namespace

Comparison compare_suites(const json::Value& baseline,
                          const json::Value& current,
                          const CompareOptions& opts) {
  Comparison cmp;
  const json::Value::Object& base_benches = baseline["benches"].as_object();
  const json::Value::Object& cur_benches = current["benches"].as_object();

  for (const auto& [name, base_entry] : base_benches) {
    const auto it = cur_benches.find(name);
    if (it == cur_benches.end()) {
      push(cmp, Delta{name, "(bench)", 0.0, 0.0, Outcome::kMissingInCurrent,
                      opts.fail_on_missing_bench});
      continue;
    }
    compare_bench(cmp, name, base_entry, it->second, opts);
  }
  for (const auto& [name, cur_entry] : cur_benches) {
    if (base_benches.find(name) == base_benches.end()) {
      push(cmp, Delta{name, "(bench)", 0.0, 0.0, Outcome::kNewInCurrent,
                      false});
    }
  }
  return cmp;
}

namespace {

std::string fmt(double v, int precision = 4) {
  if (!std::isfinite(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string pct_change(double baseline, double current) {
  if (baseline == 0.0 || !std::isfinite(baseline) || !std::isfinite(current)) {
    return "-";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%",
                (current / baseline - 1.0) * 100.0);
  return buf;
}

}  // namespace

void write_markdown_report(std::ostream& out, const json::Value& suite,
                           const Comparison* cmp,
                           const std::string& baseline_desc) {
  out << "# Benchmark telemetry report\n\n";
  out << "- git sha: `" << suite["git_sha"].as_string() << "`\n";
  out << "- created: " << suite["created_utc"].as_string() << "\n";
  out << "- repeats per bench: " << fmt(suite["repeat"].as_number(), 3)
      << " (medians reported)\n";
  const json::Value::Object& benches = suite["benches"].as_object();
  out << "- benches: " << benches.size() << "\n\n";

  out << "## Suite\n\n";
  out << "| bench | kind | wall [s] | peak RSS [MiB] | spans dropped | "
         "exit |\n";
  out << "|---|---|---:|---:|---:|---:|\n";
  for (const auto& [name, b] : benches) {
    out << "| " << name << " | " << b["experiment"]["kind"].as_string()
        << " | " << fmt(b["wall_s"]["median"].as_number()) << " | "
        << fmt(b["peak_rss_mb"]["median"].as_number()) << " | "
        << fmt(b["spans_dropped_total"].as_number(), 10) << " | "
        << fmt(b["exit_code"].as_number(), 3);
    // term_signal/retries only exist for signal-killed / re-run benches.
    if (const json::Value* sig = b.find("term_signal")) {
      out << " (" << sig->as_string() << ")";
    }
    if (b["timed_out"].as_bool()) out << " (timeout)";
    if (const json::Value* retries = b.find("retries")) {
      out << " (retried x" << fmt(retries->as_number(), 3) << ")";
    }
    out << " |\n";
  }

  out << "\n## Accuracy metrics\n\n";
  out << "| bench | metric | value | unit |\n|---|---|---:|---|\n";
  bool any_accuracy = false;
  for (const auto& [name, b] : benches) {
    for (const auto& [mname, m] : b["metrics"].as_object()) {
      if (m["kind"].as_string() != "accuracy") continue;
      any_accuracy = true;
      out << "| " << name << " | " << mname << " | "
          << fmt(m["value"].as_number()) << " | " << m["unit"].as_string()
          << " |\n";
    }
  }
  if (!any_accuracy) out << "| - | - | - | - |\n";

  if (cmp == nullptr) {
    out << "\n## Baseline comparison\n\nNo baseline supplied; gating "
           "skipped.\n";
    return;
  }

  out << "\n## Baseline comparison\n\n";
  out << "Compared against " << baseline_desc << ".\n\n";
  out << "**Verdict: " << (cmp->ok() ? "PASS" : "FAIL — regression") << "** — "
      << cmp->regressions << " regression(s), " << cmp->missing
      << " missing, " << cmp->improvements << " improvement(s), "
      << cmp->within_noise << " within noise, " << cmp->added << " new.\n\n";

  bool any_flagged = false;
  for (const Delta& d : cmp->deltas) {
    if (d.outcome == Outcome::kWithinNoise ||
        d.outcome == Outcome::kNewInCurrent) {
      continue;
    }
    if (!any_flagged) {
      out << "| bench | metric | baseline | current | change | outcome |\n";
      out << "|---|---|---:|---:|---:|---|\n";
      any_flagged = true;
    }
    out << "| " << d.bench << " | " << d.metric << " | " << fmt(d.baseline)
        << " | " << fmt(d.current) << " | "
        << pct_change(d.baseline, d.current) << " | " << to_string(d.outcome)
        << (d.gated ? "" : " (not gated)") << " |\n";
  }
  if (!any_flagged) {
    out << "All gated metrics within noise tolerances.\n";
  } else if (cmp->improvements > 0 && cmp->ok()) {
    out << "\nImprovements beyond tolerance: consider refreshing "
           "`bench/baseline.json` so future regressions are measured "
           "against the better numbers.\n";
  }
}

}  // namespace hec::bench::telemetry
