// Configuration-space search (the paper's stated open problem).
//
// "An approach to reduce the configuration space is beyond the scope of
// this paper" (Section IV-B). This module provides two such approaches
// for the canonical query — the minimum-energy configuration meeting a
// deadline:
//
//  * branch_and_bound_search: EXACT. Node-count pairs are bounded below
//    by their idle-floor energy (E >= sum of idle powers x the pair's
//    fastest achievable time); pairs whose bound exceeds the incumbent
//    are pruned without sweeping their operating points.
//  * greedy_search: APPROXIMATE. Multi-start coordinate descent over the
//    six integer coordinates (nodes, cores, P-state index per type),
//    accepting feasible energy-improving neighbours.
//
// Both report how many model evaluations they spent, so benches can
// compare them against the exhaustive sweep's 36,380.
#pragma once

#include <optional>

#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"

namespace hec {

/// A search outcome plus its evaluation cost.
struct SearchResult {
  ConfigOutcome best;
  std::size_t evaluations = 0;
};

/// Exact minimum-energy-under-deadline via idle-floor branch and bound.
/// Returns nullopt when no configuration within `limits` meets the
/// deadline. Preconditions: work_units > 0, deadline_s > 0.
std::optional<SearchResult> branch_and_bound_search(
    const ConfigEvaluator& evaluator, const NodeSpec& arm,
    const NodeSpec& amd, const EnumerationLimits& limits, double work_units,
    double deadline_s);

/// Approximate search by multi-start coordinate descent. `starts`
/// controls robustness (>= 1).
std::optional<SearchResult> greedy_search(const ConfigEvaluator& evaluator,
                                          const NodeSpec& arm,
                                          const NodeSpec& amd,
                                          const EnumerationLimits& limits,
                                          double work_units,
                                          double deadline_s, int starts = 4);

}  // namespace hec
