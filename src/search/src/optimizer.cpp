#include "hec/search/optimizer.h"

#include <algorithm>
#include <array>
#include <map>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

namespace {

ClusterConfig pair_config(int n_arm, int n_amd, int c_arm, double f_arm,
                          int c_amd, double f_amd) {
  return ClusterConfig{NodeConfig{n_arm, c_arm, f_arm},
                       NodeConfig{n_amd, c_amd, f_amd}};
}

/// Fastest operating point of a node-count pair: all cores at fmax on
/// both sides (execution rate is monotone in cores and frequency for the
/// model's affine SPImem; exactness is cross-checked by the tests).
ClusterConfig fastest_config(const NodeSpec& arm, const NodeSpec& amd,
                             int n_arm, int n_amd) {
  return pair_config(n_arm, n_amd, arm.cores, arm.pstates.max_ghz(),
                     amd.cores, amd.pstates.max_ghz());
}

}  // namespace

std::optional<SearchResult> branch_and_bound_search(
    const ConfigEvaluator& evaluator, const NodeSpec& arm,
    const NodeSpec& amd, const EnumerationLimits& limits, double work_units,
    double deadline_s) {
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(deadline_s > 0.0);
  HEC_EXPECTS(limits.max_arm_nodes >= 0 && limits.max_amd_nodes >= 0);

  HEC_SPAN("search.branch_and_bound");
  // Compile each side's deployments once; every evaluation below is an
  // O(1) combine of cached entries, bit-identical to
  // ConfigEvaluator::evaluate on the same configuration (and counted the
  // same way: one evaluation per combine).
  const DeploymentTable arm_table(evaluator.arm_model(),
                                  limits.max_arm_nodes);
  const DeploymentTable amd_table(evaluator.amd_model(),
                                  limits.max_amd_nodes);
  // PStateTable is sorted ascending, so fmax is the last index.
  const std::size_t fa_max = arm.pstates.size() - 1;
  const std::size_t fd_max = amd.pstates.size() - 1;
  const NodeConfig arm_unused{0, 1, arm.pstates.min_ghz()};
  const NodeConfig amd_unused{0, 1, amd.pstates.min_ghz()};

  const auto evaluate_pair = [&](const ClusterConfig& config, int n_arm,
                                 int n_amd, int c_arm, std::size_t f_arm,
                                 int c_amd, std::size_t f_amd) {
    if (n_arm > 0 && n_amd > 0) {
      return MemoizedConfigEvaluator::evaluate_hetero(
          config, arm_table.entry(n_arm, c_arm, f_arm),
          amd_table.entry(n_amd, c_amd, f_amd), work_units);
    }
    if (n_arm > 0) {
      return MemoizedConfigEvaluator::evaluate_arm_only(
          config, arm_table.entry(n_arm, c_arm, f_arm), work_units);
    }
    return MemoizedConfigEvaluator::evaluate_amd_only(
        config, amd_table.entry(n_amd, c_amd, f_amd), work_units);
  };

  struct PairBound {
    double bound_j;
    int n_arm, n_amd;
  };
  std::vector<PairBound> feasible_pairs;
  std::optional<ConfigOutcome> incumbent;
  std::size_t evaluations = 0;

  // Phase 1: one evaluation per node-count pair at its fastest point.
  for (int n_arm = 0; n_arm <= limits.max_arm_nodes; ++n_arm) {
    for (int n_amd = 0; n_amd <= limits.max_amd_nodes; ++n_amd) {
      if (n_arm == 0 && n_amd == 0) continue;
      const ClusterConfig fast = fastest_config(arm, amd, n_arm, n_amd);
      const ConfigOutcome outcome = evaluate_pair(
          fast, n_arm, n_amd, arm.cores, fa_max, amd.cores, fd_max);
      ++evaluations;
      if (outcome.t_s > deadline_s) continue;  // pair cannot meet it
      if (!incumbent || outcome.energy_j < incumbent->energy_j) {
        incumbent = outcome;
      }
      // Any feasible config of this pair spends at least the powered
      // idle floor for at least the pair's fastest time.
      feasible_pairs.push_back(
          {evaluator.powered_idle_w(fast) * outcome.t_s, n_arm, n_amd});
    }
  }
  if (!incumbent) return std::nullopt;

  // Phase 2: sweep pairs in bound order until the bound exceeds the
  // incumbent — everything after is pruned. Traversal matches
  // enumerate_operating_points (arm outer, amd inner; cores before
  // P-state), so incumbent ties resolve exactly as before.
  std::sort(feasible_pairs.begin(), feasible_pairs.end(),
            [](const PairBound& a, const PairBound& b) {
              return a.bound_j < b.bound_j;
            });
  const auto consider = [&](const ConfigOutcome& outcome) {
    ++evaluations;
    if (outcome.t_s <= deadline_s &&
        outcome.energy_j < incumbent->energy_j) {
      incumbent = outcome;
    }
  };
  for (const PairBound& pair : feasible_pairs) {
    if (pair.bound_j >= incumbent->energy_j) break;
    if (pair.n_arm == 0) {
      for (const DeploymentEntry& d :
           amd_table.entries_for_nodes(pair.n_amd)) {
        consider(MemoizedConfigEvaluator::evaluate_amd_only(
            ClusterConfig{arm_unused, d.config}, d, work_units));
      }
      continue;
    }
    if (pair.n_amd == 0) {
      for (const DeploymentEntry& a :
           arm_table.entries_for_nodes(pair.n_arm)) {
        consider(MemoizedConfigEvaluator::evaluate_arm_only(
            ClusterConfig{a.config, amd_unused}, a, work_units));
      }
      continue;
    }
    for (const DeploymentEntry& a : arm_table.entries_for_nodes(pair.n_arm)) {
      for (const DeploymentEntry& d :
           amd_table.entries_for_nodes(pair.n_amd)) {
        consider(MemoizedConfigEvaluator::evaluate_hetero(
            ClusterConfig{a.config, d.config}, a, d, work_units));
      }
    }
  }
  HEC_COUNTER_ADD("config.evaluations", static_cast<double>(evaluations));
  HEC_COUNTER_ADD("search.evaluations", static_cast<double>(evaluations));
  HEC_GAUGE_SET("search.incumbent_energy_j", incumbent->energy_j);
  return SearchResult{*incumbent, evaluations};
}

std::optional<SearchResult> greedy_search(const ConfigEvaluator& evaluator,
                                          const NodeSpec& arm,
                                          const NodeSpec& amd,
                                          const EnumerationLimits& limits,
                                          double work_units,
                                          double deadline_s, int starts) {
  HEC_EXPECTS(work_units > 0.0);
  HEC_EXPECTS(deadline_s > 0.0);
  HEC_EXPECTS(starts >= 1);

  HEC_SPAN("search.greedy");
  const auto& arm_freqs = arm.pstates.frequencies_ghz();
  const auto& amd_freqs = amd.pstates.frequencies_ghz();

  // Coordinates: [n_arm, c_arm, f_arm index, n_amd, c_amd, f_amd index].
  using Coord = std::array<int, 6>;
  auto decode = [&](const Coord& x) {
    return pair_config(x[0], x[3], x[1],
                       arm_freqs[static_cast<std::size_t>(x[2])], x[4],
                       amd_freqs[static_cast<std::size_t>(x[5])]);
  };
  auto valid = [&](const Coord& x) {
    return x[0] >= 0 && x[0] <= limits.max_arm_nodes && x[1] >= 1 &&
           x[1] <= arm.cores && x[2] >= 0 &&
           x[2] < static_cast<int>(arm_freqs.size()) && x[3] >= 0 &&
           x[3] <= limits.max_amd_nodes && x[4] >= 1 &&
           x[4] <= amd.cores && x[5] >= 0 &&
           x[5] < static_cast<int>(amd_freqs.size()) &&
           (x[0] > 0 || x[3] > 0);
  };

  std::size_t evaluations = 0;
  std::map<Coord, ConfigOutcome> memo;
  auto eval = [&](const Coord& x) -> const ConfigOutcome& {
    auto it = memo.find(x);
    if (it == memo.end()) {
      ++evaluations;
      it = memo.emplace(x, evaluator.evaluate(decode(x), work_units)).first;
    }
    return it->second;
  };

  const int fa_max = static_cast<int>(arm_freqs.size()) - 1;
  const int fd_max = static_cast<int>(amd_freqs.size()) - 1;
  std::vector<Coord> seeds;
  // Both types at full tilt, each homogeneous pole, and a half mix.
  seeds.push_back({limits.max_arm_nodes, arm.cores, fa_max,
                   limits.max_amd_nodes, amd.cores, fd_max});
  if (limits.max_arm_nodes > 0) {
    seeds.push_back({limits.max_arm_nodes, arm.cores, fa_max, 0, amd.cores,
                     fd_max});
  }
  if (limits.max_amd_nodes > 0) {
    seeds.push_back({0, arm.cores, fa_max, limits.max_amd_nodes, amd.cores,
                     fd_max});
  }
  seeds.push_back({std::max(0, limits.max_arm_nodes / 2), arm.cores,
                   fa_max, std::max(0, limits.max_amd_nodes / 2), amd.cores,
                   fd_max});
  seeds.resize(std::min<std::size_t>(seeds.size(),
                                     static_cast<std::size_t>(starts)));

  std::optional<ConfigOutcome> best;
  for (const Coord& seed : seeds) {
    if (!valid(seed)) continue;
    const ConfigOutcome& seeded = eval(seed);
    if (seeded.t_s > deadline_s) continue;
    Coord current = seed;
    ConfigOutcome current_outcome = seeded;
    for (bool improved = true; improved;) {
      improved = false;
      for (int dim = 0; dim < 6 && !improved; ++dim) {
        for (int step : {-1, +1}) {
          Coord next = current;
          next[static_cast<std::size_t>(dim)] += step;
          if (!valid(next)) continue;
          const ConfigOutcome& candidate = eval(next);
          if (candidate.t_s <= deadline_s &&
              candidate.energy_j < current_outcome.energy_j) {
            current = next;
            current_outcome = candidate;
            improved = true;
            break;
          }
        }
      }
    }
    if (!best || current_outcome.energy_j < best->energy_j) {
      best = current_outcome;
    }
  }
  if (!best) return std::nullopt;
  HEC_COUNTER_ADD("search.evaluations", static_cast<double>(evaluations));
  HEC_GAUGE_SET("search.incumbent_energy_j", best->energy_j);
  return SearchResult{*best, evaluations};
}

}  // namespace hec
