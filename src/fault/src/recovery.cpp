#include "hec/fault/recovery.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

std::vector<double> rematch_survivors(
    std::span<const TypedDeployment> deployments,
    std::span<const int> survivors, double remaining_units) {
  HEC_EXPECTS(deployments.size() == survivors.size());
  HEC_EXPECTS(remaining_units > 0.0);
  std::vector<TypedDeployment> live;
  std::vector<std::size_t> index;
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    HEC_EXPECTS(survivors[i] >= 0);
    if (survivors[i] == 0) continue;
    TypedDeployment d = deployments[i];
    d.config.nodes = survivors[i];
    live.push_back(d);
    index.push_back(i);
  }
  HEC_EXPECTS(!live.empty());
  const std::vector<double> shares = match_split_multi(live, remaining_units);
  std::vector<double> out(deployments.size(), 0.0);
  for (std::size_t k = 0; k < live.size(); ++k) out[index[k]] = shares[k];
  return out;
}

namespace {

/// Per-deployment constants of the linear model, hoisted out of the
/// segment loop. The model is exactly linear in work units and node
/// count, so one predict(1 unit, 1 node) call yields the per-node
/// execution rate and per-node component power draws.
struct DeploymentRates {
  double rate_units_per_s = 0.0;   ///< one node's execution rate
  double energy_per_unit_j = 0.0;  ///< energy one unit costs (any scale)
  EnergyBreakdown node_power_w;    ///< per-node draw while executing
  double idle_node_w = 0.0;        ///< per-node draw while waiting
};

DeploymentRates rates_of(const TypedDeployment& d) {
  HEC_EXPECTS(d.model != nullptr);
  NodeConfig one = d.config;
  one.nodes = 1;
  const Prediction p = d.model->predict(1.0, one);
  HEC_EXPECTS(p.t_s > 0.0);
  DeploymentRates r;
  r.rate_units_per_s = 1.0 / p.t_s;
  r.energy_per_unit_j = p.energy.total_j();
  r.node_power_w.core_j = p.energy.core_j / p.t_s;
  r.node_power_w.mem_j = p.energy.mem_j / p.t_s;
  r.node_power_w.io_j = p.energy.io_j / p.t_s;
  r.node_power_w.idle_j = p.energy.idle_j / p.t_s;
  r.idle_node_w = d.model->power().idle_w;
  return r;
}

/// Timeline breakpoint: an instant where some node's rate multiplier or
/// liveness changes. Only crashes carry an action; straggler and thermal
/// boundaries merely delimit constant-rate segments.
struct Breakpoint {
  double t = 0.0;
  bool is_crash = false;
  std::size_t dep = 0;
  int node = 0;
};

}  // namespace

FaultyRunResult simulate_faulty_run(
    std::span<const TypedDeployment> deployments, double work_units,
    const FaultConfig& config, std::uint64_t seed) {
  HEC_EXPECTS(!deployments.empty());
  HEC_EXPECTS(work_units > 0.0);

  HEC_SPAN_NAMED(span, "fault.simulate_faulty_run");
  HEC_COUNTER_INC("fault.runs");
  FaultyRunResult out;
  out.survivors.reserve(deployments.size());
  for (const TypedDeployment& d : deployments) {
    HEC_EXPECTS(d.model != nullptr);
    HEC_EXPECTS(d.config.nodes >= 1);
    out.survivors.push_back(d.config.nodes);
  }

  const MultiPrediction nominal = predict_multi(deployments, work_units);
  if (!config.enabled()) {
    // Zero-overhead default: exactly the nominal closed form, no RNG.
    out.t_s = nominal.t_s;
    for (const Prediction& p : nominal.parts) out.energy += p.energy;
    return out;
  }

  // --- sample per-node fault timelines (fixed order => deterministic) ---
  Rng base(seed);
  const double horizon = nominal.t_s;
  std::vector<std::vector<NodeFaultSample>> faults(deployments.size());
  std::vector<Breakpoint> events;
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    faults[i].reserve(static_cast<std::size_t>(deployments[i].config.nodes));
    for (int j = 0; j < deployments[i].config.nodes; ++j) {
      Rng node_rng = base.split(static_cast<std::uint64_t>(j) + 1);
      const NodeFaultSample s =
          sample_node_faults(config, node_rng, horizon);
      if (s.crashes()) events.push_back({s.crash_time_s, true, i, j});
      if (s.straggler_start_s < FaultConfig::kNever) {
        events.push_back({s.straggler_start_s, false, i, j});
        events.push_back({s.straggler_end_s, false, i, j});
      }
      if (s.thermal_onset_s < FaultConfig::kNever) {
        events.push_back({s.thermal_onset_s, false, i, j});
      }
      faults[i].push_back(s);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Breakpoint& a, const Breakpoint& b) {
                     return a.t < b.t;
                   });

  // --- per-deployment model constants and mutable run state ---
  std::vector<DeploymentRates> rates;
  rates.reserve(deployments.size());
  for (const TypedDeployment& d : deployments) rates.push_back(rates_of(d));

  std::vector<double> w = match_split_multi(deployments, work_units);
  std::vector<std::vector<bool>> alive(deployments.size());
  std::vector<std::vector<double>> since_cp(deployments.size());
  for (std::size_t i = 0; i < deployments.size(); ++i) {
    alive[i].assign(static_cast<std::size_t>(deployments[i].config.nodes),
                    true);
    since_cp[i].assign(static_cast<std::size_t>(deployments[i].config.nodes),
                       0.0);
  }

  const double work_eps = work_units * 1e-12;
  double t = 0.0;
  double stall_until = 0.0;
  double next_cp = config.checkpoint_interval_s;  // kNever when disabled
  std::size_t ev = 0;
  int total_alive = 0;
  for (const auto& s : out.survivors) total_alive += s;

  // Each iteration advances one constant-rate segment; the breakpoint
  // count bounds the segment count, so cap generously against bugs.
  for (long iteration = 0;; ++iteration) {
    if (iteration > 10'000'000) {
      throw std::runtime_error(
          "simulate_faulty_run: segment loop failed to converge");
    }

    double remaining = 0.0;
    for (double wi : w) remaining += wi;
    if (remaining <= work_eps) {
      out.t_s = t;
      out.completed = true;
      break;
    }

    const bool stalled = t < stall_until;

    // Deployment rates over this segment (constant until the next
    // breakpoint: every multiplier change is an event time).
    std::vector<double> rate(deployments.size(), 0.0);
    for (std::size_t i = 0; i < deployments.size(); ++i) {
      if (stalled) continue;
      double mult_sum = 0.0;
      for (std::size_t j = 0; j < alive[i].size(); ++j) {
        if (alive[i][j]) mult_sum += faults[i][j].rate_multiplier(t);
      }
      rate[i] = rates[i].rate_units_per_s * mult_sum;
    }

    // Earliest of: stall end, any share completion, next breakpoint,
    // next checkpoint.
    double t_next = FaultConfig::kNever;
    if (stalled) t_next = stall_until;
    for (std::size_t i = 0; i < deployments.size(); ++i) {
      if (w[i] > work_eps && rate[i] > 0.0) {
        t_next = std::min(t_next, t + w[i] / rate[i]);
      }
    }
    if (ev < events.size()) t_next = std::min(t_next, events[ev].t);
    t_next = std::min(t_next, next_cp);
    if (!(t_next < FaultConfig::kNever)) {
      // No live node can make progress and no event changes that: the
      // job is stuck (everything crashed mid-stall, etc.).
      out.completed = false;
      out.t_s = t;
      break;
    }
    t_next = std::max(t_next, t);

    // Accrue work and energy over [t, t_next).
    const double dt = t_next - t;
    if (dt > 0.0) {
      for (std::size_t i = 0; i < deployments.size(); ++i) {
        int m_alive = 0;
        for (std::size_t j = 0; j < alive[i].size(); ++j) {
          if (alive[i][j]) ++m_alive;
        }
        if (m_alive == 0) continue;  // crashed nodes are powered off
        const bool executing = !stalled && w[i] > work_eps;
        if (!executing) {
          // Finished its share (idle tail) or stalled in recovery:
          // idle floor only.
          out.energy.idle_j += m_alive * rates[i].idle_node_w * dt;
          continue;
        }
        out.energy.core_j += m_alive * rates[i].node_power_w.core_j * dt;
        out.energy.mem_j += m_alive * rates[i].node_power_w.mem_j * dt;
        out.energy.io_j += m_alive * rates[i].node_power_w.io_j * dt;
        out.energy.idle_j += m_alive * rates[i].node_power_w.idle_j * dt;
        const double dw = std::min(w[i], rate[i] * dt);
        w[i] -= dw;
        for (std::size_t j = 0; j < alive[i].size(); ++j) {
          if (alive[i][j]) {
            since_cp[i][j] += rates[i].rate_units_per_s *
                              faults[i][j].rate_multiplier(t) * dt;
          }
        }
      }
      t = t_next;
    } else {
      t = t_next;
    }

    // Checkpoint due: completed work becomes durable cluster-wide.
    if (next_cp <= t) {
      for (auto& per_dep : since_cp) {
        std::fill(per_dep.begin(), per_dep.end(), 0.0);
      }
      ++out.checkpoints;
      if (config.checkpoint_cost_s > 0.0) {
        stall_until = std::max(stall_until, t) + config.checkpoint_cost_s;
        out.overhead_s += config.checkpoint_cost_s;
      }
      next_cp += config.checkpoint_interval_s;
    }

    // Fault events due at this instant.
    bool need_rematch = false;
    while (ev < events.size() && events[ev].t <= t) {
      const Breakpoint& e = events[ev];
      if (e.is_crash && alive[e.dep][static_cast<std::size_t>(e.node)]) {
        alive[e.dep][static_cast<std::size_t>(e.node)] = false;
        --out.survivors[e.dep];
        --total_alive;
        ++out.crashes;
        const double lost =
            since_cp[e.dep][static_cast<std::size_t>(e.node)];
        since_cp[e.dep][static_cast<std::size_t>(e.node)] = 0.0;
        if (lost > 0.0) {
          out.wasted_units += lost;
          out.wasted_j += lost * rates[e.dep].energy_per_unit_j;
          w[e.dep] += lost;  // the lost share must be redone
        }
        need_rematch = true;
      }
      ++ev;
    }
    if (need_rematch) {
      if (total_alive == 0) {
        out.completed = false;
        out.t_s = t;
        break;
      }
      double rem = 0.0;
      for (double wi : w) rem += wi;
      if (rem > work_eps) {
        w = rematch_survivors(deployments, out.survivors, rem);
        ++out.rematches;
        const double stall =
            config.rematch_overhead_s + config.restart_overhead_s;
        if (stall > 0.0) {
          stall_until = std::max(stall_until, t) + stall;
          out.overhead_s += stall;
        }
      }
    }
  }
  span.sim_window(0.0, out.t_s);
  HEC_COUNTER_ADD("fault.crashes", static_cast<double>(out.crashes));
  HEC_COUNTER_ADD("fault.checkpoints", static_cast<double>(out.checkpoints));
  HEC_COUNTER_ADD("fault.rematches", static_cast<double>(out.rematches));
  HEC_COUNTER_ADD("fault.wasted_units", out.wasted_units);
  return out;
}

}  // namespace hec
