#include "hec/fault/fault_model.h"

#include <algorithm>
#include <cmath>

#include "hec/util/expect.h"

namespace hec {

NodeFaultSample sample_node_faults(const FaultConfig& config, Rng& rng,
                                   double horizon_s) {
  HEC_EXPECTS(horizon_s >= 0.0);
  HEC_EXPECTS(config.straggler_prob >= 0.0 && config.straggler_prob <= 1.0);
  HEC_EXPECTS(config.thermal_cap_prob >= 0.0 &&
              config.thermal_cap_prob <= 1.0);
  HEC_EXPECTS(config.straggler_slowdown >= 1.0);
  HEC_EXPECTS(config.thermal_cap_factor > 0.0 &&
              config.thermal_cap_factor <= 1.0);

  NodeFaultSample sample;
  // Fixed draw count per node (three uniforms + one exponential-shaped
  // uniform) keeps sibling nodes' streams aligned no matter which fault
  // classes are enabled.
  const double u_crash = rng.uniform();
  const double u_straggle = rng.uniform();
  const double straggle_at = rng.uniform(0.0, std::max(horizon_s, 1e-12));
  const double u_thermal = rng.uniform();
  const double thermal_at = rng.uniform(0.0, std::max(horizon_s, 1e-12));

  if (config.crashes_enabled()) {
    // Inverse-CDF exponential: -ln(1-u) * MTTF; u < 1 so the log is finite.
    sample.crash_time_s =
        -std::log1p(-std::min(u_crash, 0x1.fffffffffffffp-1)) *
        config.mttf_s;
  }
  if (u_straggle < config.straggler_prob &&
      config.straggler_slowdown > 1.0 && config.straggler_window_s > 0.0) {
    sample.straggler_start_s = straggle_at;
    sample.straggler_end_s = straggle_at + config.straggler_window_s;
    sample.straggler_slowdown = config.straggler_slowdown;
  }
  if (u_thermal < config.thermal_cap_prob &&
      config.thermal_cap_factor < 1.0) {
    sample.thermal_onset_s = thermal_at;
    sample.thermal_factor = config.thermal_cap_factor;
  }
  return sample;
}

NodeFaultPlan to_node_fault_plan(const NodeFaultSample& sample,
                                 double f_ghz) {
  HEC_EXPECTS(f_ghz > 0.0);
  NodeFaultPlan plan;
  plan.crash_time_s = sample.crash_time_s;
  plan.straggler_start_s = sample.straggler_start_s;
  plan.straggler_end_s = sample.straggler_end_s;
  plan.straggler_slowdown = sample.straggler_slowdown;
  if (sample.thermal_factor < 1.0) {
    plan.thermal_cap_time_s = sample.thermal_onset_s;
    plan.thermal_cap_f_ghz = f_ghz * sample.thermal_factor;
  }
  return plan;
}

}  // namespace hec
