// Recovery policies over a matched heterogeneous execution.
//
// Runs one job under the analytical model with sampled faults and the
// configured recovery policy:
//   * restart-from-checkpoint — synchronised cluster checkpoints every
//     `checkpoint_interval_s`; when a node fail-stops, only its work since
//     the last checkpoint is lost (all of it without checkpointing);
//   * failure-aware re-matching — after every crash the mix-and-match
//     split (match_split_multi) is rerun over the surviving nodes, so
//     survivors again finish simultaneously; the re-balance stall and the
//     wasted (lost) work are charged to the run.
//
// The execution timeline is piecewise linear: between fault/checkpoint
// boundaries every deployment processes work at a constant rate, so the
// simulation walks O(faults + checkpoints) segments — cheap enough for
// Monte Carlo over thousands of configurations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hec/fault/fault_model.h"
#include "hec/model/multi_matching.h"

namespace hec {

/// Outcome of one job execution under faults and recovery.
struct FaultyRunResult {
  bool completed = true;     ///< false when every node crashed first
  double t_s = 0.0;          ///< job completion (or abandonment) time
  EnergyBreakdown energy;    ///< total energy, including waste + overhead

  int crashes = 0;           ///< fail-stop events before completion
  int rematches = 0;         ///< failure-aware re-matching rounds
  int checkpoints = 0;       ///< checkpoints taken before completion
  double wasted_units = 0.0; ///< completed work lost to crashes and redone
  double wasted_j = 0.0;     ///< energy that had been spent on lost work
  double overhead_s = 0.0;   ///< checkpoint + restart + rematch stalls
  std::vector<int> survivors;  ///< per-deployment nodes alive at the end
};

/// Failure-aware re-matching: the matched split of `remaining_units` over
/// the surviving sub-cluster (deployments[i] reduced to survivors[i]
/// nodes). Deployments with zero survivors receive a zero share. By the
/// rate-proportional matching property every surviving deployment finishes
/// its share at the same instant.
/// Preconditions: sizes match, at least one survivor, remaining_units > 0.
std::vector<double> rematch_survivors(
    std::span<const TypedDeployment> deployments,
    std::span<const int> survivors, double remaining_units);

/// Simulates one job of `work_units` on the matched deployments under
/// faults sampled from `config` with `seed`. With config.enabled() ==
/// false, no sampling happens and the result equals the nominal
/// predict_multi outcome exactly (same closed-form arithmetic).
FaultyRunResult simulate_faulty_run(
    std::span<const TypedDeployment> deployments, double work_units,
    const FaultConfig& config, std::uint64_t seed);

}  // namespace hec
