// Stochastic fault models for heterogeneous clusters.
//
// The paper's mix-and-match technique assumes every node finishes its
// matched share simultaneously; one fail-stop node or one throttled
// straggler silently breaks both the time prediction and the idle-energy
// minimisation. This module defines the fault classes the reliability
// extension injects — fail-stop crashes (exponential MTTF), transient
// stragglers (bounded slowdown windows), and thermal frequency capping —
// and samples per-node fault timelines from them. The sampled timelines
// feed two consumers: the event-driven node simulator (via NodeFaultPlan)
// and the analytical recovery simulation (hec/fault/recovery.h).
#pragma once

#include <cstdint>
#include <limits>

#include "hec/sim/node_sim.h"
#include "hec/util/rng.h"

namespace hec {

/// All fault-injection and recovery knobs for one experiment. The
/// default-constructed config is inert (enabled() == false): infinite
/// MTTF, zero straggler/thermal probability, no checkpointing — the
/// zero-overhead path every nominal pipeline keeps using.
struct FaultConfig {
  static constexpr double kNever = std::numeric_limits<double>::infinity();

  // --- fault model ---
  /// Mean time to failure of one node (exponential fail-stop model);
  /// infinity disables crashes.
  double mttf_s = kNever;
  /// Probability that a node experiences one straggler window per job.
  double straggler_prob = 0.0;
  /// Chunk slowdown factor inside a straggler window (> 1).
  double straggler_slowdown = 2.0;
  /// Length of one straggler window in seconds (bounded, then recovers).
  double straggler_window_s = 0.0;
  /// Probability that a node hits thermal frequency capping mid-job.
  double thermal_cap_prob = 0.0;
  /// Capped-clock fraction of the nominal frequency (0 < factor <= 1).
  double thermal_cap_factor = 0.75;

  // --- recovery policy ---
  /// Synchronised cluster checkpoint interval; work completed since the
  /// last checkpoint is lost when its node crashes. Infinity = none.
  double checkpoint_interval_s = kNever;
  /// Wall-clock pause per checkpoint (all nodes stall, idle-floor power).
  double checkpoint_cost_s = 0.0;
  /// Stall after a crash before survivors resume (failure detection plus
  /// restart-from-checkpoint), charged at idle-floor power.
  double restart_overhead_s = 0.0;
  /// Stall for re-running the mix-and-match split over survivors.
  double rematch_overhead_s = 0.0;

  bool crashes_enabled() const { return mttf_s < kNever; }
  bool enabled() const {
    return crashes_enabled() || straggler_prob > 0.0 ||
           thermal_cap_prob > 0.0;
  }
};

/// One node's sampled fault timeline for one run. All times are absolute
/// simulation seconds from job start.
struct NodeFaultSample {
  double crash_time_s = FaultConfig::kNever;
  double straggler_start_s = FaultConfig::kNever;
  double straggler_end_s = FaultConfig::kNever;
  double straggler_slowdown = 1.0;
  double thermal_onset_s = FaultConfig::kNever;
  /// Execution-rate multiplier while capped (~ capped f / nominal f).
  double thermal_factor = 1.0;

  bool crashes() const { return crash_time_s < FaultConfig::kNever; }

  /// Execution-rate multiplier of this (alive) node at time t: 1 nominal,
  /// reduced inside the straggler window and after the thermal onset.
  double rate_multiplier(double t) const {
    double m = 1.0;
    if (t >= straggler_start_s && t < straggler_end_s) {
      m /= straggler_slowdown;
    }
    if (t >= thermal_onset_s) m *= thermal_factor;
    return m;
  }
};

/// Samples one node's fault timeline. `horizon_s` bounds where straggler
/// windows and thermal onsets may begin (use the job's nominal completion
/// time); crash times are unbounded exponentials. Draws a fixed number of
/// variates per call, so per-node streams stay aligned across configs.
NodeFaultSample sample_node_faults(const FaultConfig& config, Rng& rng,
                                   double horizon_s);

/// Bridges a sampled timeline to the event-driven node simulator:
/// the thermal cap becomes an absolute capped frequency for a node
/// clocked at `f_ghz`.
NodeFaultPlan to_node_fault_plan(const NodeFaultSample& sample,
                                 double f_ghz);

}  // namespace hec
