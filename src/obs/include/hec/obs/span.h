// Span tracer: RAII scopes recorded into per-thread ring buffers.
//
// A span is one timed scope (HEC_SPAN("matching") in hec/obs/obs.h).
// Scopes nest: each thread tracks its current depth, so an exporter can
// reconstruct the call tree without parent pointers. Spans carry wall
// time (steady-clock microseconds since the tracer's epoch) and an
// optional *simulation-time* window — the discrete-event simulator's
// clock is unrelated to wall time, and attributing a phase to "sim
// seconds 0..0.3" is what makes a trace of a trace-driven model legible.
//
// Each thread owns a fixed-capacity ring; when it wraps, the oldest
// events are overwritten and counted as dropped. Recording takes only
// the ring's own mutex, which no other thread touches except during
// snapshot/export — uncontended in steady state, and race-free under
// TSan when an export races an instrumented worker.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "hec/obs/metrics.h"

namespace hec::obs {

/// One completed scope.
struct SpanEvent {
  const char* name = "";  ///< stable storage (string literal in practice)
  double start_us = 0.0;  ///< wall micros since the tracer's epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;    ///< dense thread index (registration order)
  std::uint32_t depth = 0;  ///< nesting depth at begin (0 = top level)
  double sim_begin_s = std::numeric_limits<double>::quiet_NaN();
  double sim_end_s = std::numeric_limits<double>::quiet_NaN();

  bool has_sim_window() const noexcept {
    return sim_begin_s == sim_begin_s && sim_end_s == sim_end_s;
  }
};

/// Per-thread ring buffers + depth bookkeeping. Use the process-global
/// tracer() in instrumented code; local instances are for tests.
class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Steady-clock microseconds since this tracer's construction.
  double now_us() const noexcept;

  /// Opens a scope on the calling thread; returns its depth (0-based).
  std::uint32_t begin_span() noexcept;

  /// Closes a scope: decrements the thread's depth, stamps ev.tid and
  /// records the event. A close without a matching open is counted in
  /// unbalanced() and the depth is clamped at zero.
  void end_span(SpanEvent ev) noexcept;

  /// Records a pre-built event without depth bookkeeping (exporter tests
  /// use this to build deterministic traces).
  void record(SpanEvent ev) noexcept;

  /// Copies every buffered event, sorted by start time.
  std::vector<SpanEvent> snapshot() const;

  /// Events overwritten after a ring wrapped.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Per-thread recording/drop totals. A snapshot that silently lost
  /// its oldest events reads as a complete trace; exporters surface
  /// these counts so a truncated trace is visible as such. `dropped`
  /// sums to dropped() across entries.
  struct ThreadDropStats {
    std::uint32_t tid = 0;
    std::uint64_t recorded = 0;  ///< events ever recorded on this thread
    std::uint64_t dropped = 0;   ///< of those, overwritten by ring wrap
  };
  std::vector<ThreadDropStats> thread_drop_stats() const;

  /// Currently open scopes across all threads (0 when balanced).
  int open_spans() const;

  /// Closes observed without a matching open.
  std::uint64_t unbalanced() const noexcept {
    return unbalanced_.load(std::memory_order_relaxed);
  }

  /// Discards buffered events and drop/unbalance counts (depths stay).
  void clear();

 private:
  struct ThreadRing {
    mutable std::mutex m;
    std::vector<SpanEvent> ring;  ///< grows to kRingCapacity, then wraps
    std::uint64_t count = 0;      ///< total recorded; > size() => wrapped
    std::atomic<int> depth{0};
    std::uint32_t tid = 0;
  };

  ThreadRing& local_ring() noexcept;

  const std::uint64_t id_;  ///< distinguishes tracer instances in the TLS cache
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> unbalanced_{0};
};

/// Process-global tracer (leaked singleton, like obs::registry()).
Tracer& tracer();

/// RAII scope against the global tracer. Prefer the HEC_SPAN macros,
/// which compile to nothing under HEC_OBS_DISABLE.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) noexcept;
  ~SpanGuard();
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Annotates the span with the simulation-time window it covers.
  void sim_window(double begin_s, double end_s) noexcept {
    sim_begin_s_ = begin_s;
    sim_end_s_ = end_s;
  }

 private:
  const char* name_;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
  double sim_begin_s_ = std::numeric_limits<double>::quiet_NaN();
  double sim_end_s_ = std::numeric_limits<double>::quiet_NaN();
  bool active_;
};

/// Stand-in emitted by the HEC_SPAN macros under HEC_OBS_DISABLE: same
/// interface, no code.
struct NoopSpan {
  void sim_window(double, double) const noexcept {}
};

/// RAII wall-time observation into a histogram (see HEC_SCOPED_TIMER).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), active_(enabled()) {
    if (active_) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (!active_) return;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0_;
    h_->observe(dt.count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
  bool active_;
};

/// No-op twin of ScopedTimer for the disabled build.
struct NoopTimer {};

}  // namespace hec::obs
