// Lock-cheap metrics registry: counters, gauges and log-scale histograms.
//
// Instrumented hot paths (event-queue steps, per-config evaluations) run
// under hec::parallel::ThreadPool, so a metric write must never take a
// lock that other writers contend on. Counters stripe their cells across
// cache lines and each thread writes its own stripe (assigned round-robin
// on first use), so concurrent increments are a relaxed fetch_add on a
// line no other thread touches until there are more threads than stripes.
// The registry mutex is only taken on registration (find-or-create by
// name) and on snapshot/export — the HEC_COUNTER_* macros cache the
// returned reference in a function-local static, so each call site pays
// the lookup once per process.
//
// All values are doubles: the model's "counts" (work units, instructions)
// are already fractional, and integer counts below 2^53 stay exact.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hec::obs {

namespace detail {
inline std::atomic<bool> g_enabled{true};

/// Stripe index of the calling thread (stable per thread). The address
/// of a constant-initialised thread_local identifies the thread without
/// the guard branch dynamically-initialised TLS costs on every access;
/// stripe collisions between threads only add contention, never lose
/// updates (cells are still atomic). Inline so hot counter adds don't
/// pay a cross-TU call.
///
/// The address must be hashed, not shifted: TLS blocks are carved out
/// of per-thread mappings at large power-of-two strides, so the low
/// bits of &tag are identical across threads and a plain shift would
/// put every thread on stripe 0. Fibonacci multiplicative hashing
/// spreads the high-stride differences into the top bits.
inline std::size_t this_thread_stripe() noexcept {
  thread_local constinit char tag = 0;
  const auto addr = reinterpret_cast<std::uintptr_t>(&tag);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(addr) * 0x9E3779B97F4A7C15ull) >> 48);
}
}  // namespace detail

/// Runtime kill switch for all instrumentation (metrics AND spans). The
/// default is enabled; disabling reduces every instrumented operation to
/// one relaxed atomic load + branch. Compile-time removal is the
/// HEC_OBS_DISABLE macro (see hec/obs/obs.h).
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotone sum, striped across cache lines (see file comment).
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;  // power of two

  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(double v) noexcept {
    if (!enabled()) return;
    cells_[detail::this_thread_stripe() & (kStripes - 1)].v.fetch_add(
        v, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1.0); }

  /// Sum over all stripes. Concurrent adds may or may not be included.
  double value() const noexcept {
    double sum = 0.0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0.0, std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }

 private:
  struct alignas(64) Cell {
    std::atomic<double> v{0.0};
  };
  std::string name_;
  std::array<Cell, kStripes> cells_{};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::atomic<double> v_{0.0};
};

/// Fixed log2-scale histogram: bin i counts observations in
/// [2^(kMinExp2 + i), 2^(kMinExp2 + i + 1)). The bottom bin doubles as
/// the underflow bucket (values <= 2^kMinExp2, including non-positive
/// observations) and the top bin as the overflow bucket. The range
/// covers ~1 ns .. ~500 s when observing seconds, and 1 .. 10^10 when
/// observing counts — wide enough that clamping is a non-event.
class Histogram {
 public:
  static constexpr int kMinExp2 = -30;
  static constexpr int kMaxExp2 = 34;
  static constexpr std::size_t kBins =
      static_cast<std::size_t>(kMaxExp2 - kMinExp2);

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept {
    if (!enabled()) return;
    bins_[bin_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bin that `v` lands in (clamped to [0, kBins - 1]).
  static std::size_t bin_index(double v) noexcept;

  /// Exclusive upper edge of bin i: 2^(kMinExp2 + i + 1).
  static double bin_upper_bound(std::size_t i) noexcept;

  std::uint64_t bin_count(std::size_t i) const noexcept {
    return bins_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  void reset() noexcept {
    for (auto& b : bins_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
  }

  /// Folds a pre-binned delta (another histogram's bins/count/sum, or a
  /// decoded telemetry record) into this histogram. Used by the
  /// cross-process merge path: the distribution shape is preserved
  /// exactly because both sides share the fixed log2 bin edges.
  void accumulate(const std::array<std::uint64_t, kBins>& bins,
                  std::uint64_t count, double sum) noexcept {
    if (!enabled()) return;
    for (std::size_t i = 0; i < kBins; ++i) {
      if (bins[i] != 0) bins_[i].fetch_add(bins[i], std::memory_order_relaxed);
    }
    count_.fetch_add(count, std::memory_order_relaxed);
    sum_.fetch_add(sum, std::memory_order_relaxed);
  }

  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
  std::array<std::atomic<std::uint64_t>, kBins> bins_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> metric map. Registration is find-or-create under a mutex;
/// returned references stay valid for the registry's lifetime (metrics
/// are never deleted, only reset).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct HistogramSnapshot {
    std::string name;
    std::array<std::uint64_t, Histogram::kBins> bins{};
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Estimated q-quantile (q in [0, 1]) from the log2 buckets.
    ///
    /// The rank is located by walking the cumulative bucket counts and
    /// interpolated *geometrically* within its bucket — the buckets are
    /// log-uniform, so a log-linear ramp is the maximum-entropy
    /// assumption about where mass sits inside one. The estimate is
    /// exact at bucket edges and off by at most the bucket width (a
    /// factor of 2) in between. Returns NaN for an empty histogram.
    double quantile(double q) const noexcept;
  };

  /// One coherent point-in-time view of every metric, for exporters and
  /// for diffing a registry across run phases (the bench telemetry layer
  /// snapshots at exit). Counters/gauges are (name, value) sorted by
  /// name, like the individual accessors.
  struct Snapshot {
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

  /// Point-in-time copies, sorted by name (for exporters and tests).
  std::vector<std::pair<std::string, double>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<HistogramSnapshot> histograms() const;

  bool empty() const;

  /// Zeroes every value; registrations (and handed-out references) stay.
  void reset();

  /// Folds a snapshot *delta* (see snapshot_delta) into this registry:
  /// counters add, histograms accumulate bin-wise. Gauges are skipped —
  /// an instantaneous value from another process has no meaningful sum
  /// or last-writer order here, so gauge authority stays local.
  void accumulate(const Snapshot& delta);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-global registry (leaked singleton: safe to touch from static
/// destructors such as the bench harness's at-exit reporter).
MetricsRegistry& registry();

/// What changed between two snapshots of the *same* process: counters
/// and histograms subtract per name (a name missing from `base` counts
/// as zero); gauges carry the `now` value but only when it differs from
/// the base (changed-since-base filter). Zero counter deltas and
/// histograms with no new observations are dropped. This is what a
/// forked worker ships: `base` is the snapshot inherited at fork, so
/// the delta contains exactly the work this attempt did.
MetricsRegistry::Snapshot snapshot_delta(const MetricsRegistry::Snapshot& now,
                                         const MetricsRegistry::Snapshot& base);

}  // namespace hec::obs
