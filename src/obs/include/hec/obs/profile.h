// ProfileTree: folds the span stream into an aggregated call tree.
//
// The tracer records flat per-thread spans (name, start, dur, depth);
// this aggregator reconstructs the nesting per thread from the depth
// field and merges identical call paths across threads and processes
// into one tree node carrying invocation count, total wall time, self
// wall time (total minus direct children) and the union of sim-time
// windows attributed to that path. Two exports:
//
//   * write_json      — `hec-profile/v1`, deterministic sorted-key JSON
//                       (children live in std::map, numbers printed with
//                       fixed formats), parseable by hec/bench/json.h;
//   * write_collapsed — folded-stack lines "a;b;c <self_us>" for
//                       flamegraph.pl / speedscope / inferno.
//
// Folding is order-independent: spans are sorted by (process, tid,
// start, depth) before reconstruction, so shuffled delivery — e.g.
// telemetry sidecars merged in arbitrary completion order — yields a
// byte-identical profile.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace hec::obs {

class Tracer;
struct ExternalTrace;

/// One span normalised for folding. Unlike SpanEvent the name is owned
/// (external spans have no string literal to point at) and the process
/// label is explicit ("" = the local process).
struct ProfileSpan {
  std::string process;  ///< "" local; else a track label ("worker shard=0 ...")
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  bool has_sim = false;
  double sim_begin_s = 0.0;
  double sim_end_s = 0.0;
};

/// One aggregated call-tree node. Synthetic frames — process containers
/// and "(unknown)" stand-ins for parents lost to ring wrap — carry
/// count 0 and self 0; only measured spans contribute count/self.
struct ProfileNode {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double child_us = 0.0;  ///< sum of direct children's total_us
  bool has_sim = false;
  double sim_begin_s = 0.0;
  double sim_end_s = 0.0;
  std::map<std::string, ProfileNode> children;

  /// Wall time spent in this frame itself. Clamped at zero: a parent
  /// whose children were recorded but whose own close was dropped can
  /// transiently read total < child.
  double self_us() const {
    return total_us > child_us ? total_us - child_us : 0.0;
  }
};

class ProfileTree {
 public:
  /// Folds a batch of spans into the tree. Order-independent: any
  /// permutation of the same batch produces the same tree. Spans whose
  /// parent frames are missing (ring wrap ate them) nest under
  /// "(unknown)" stand-in frames rather than being misattributed.
  void add(std::vector<ProfileSpan> spans);

  /// Folds a snapshot of a live tracer (the local process).
  void add(const Tracer& tracer);

  /// Folds every track of a merged external trace; each track's spans
  /// nest under a synthetic root frame named after the track label
  /// (superseded attempts get the same " [superseded]" suffix as the
  /// Chrome trace exporter).
  void add(const ExternalTrace& external);

  bool empty() const { return roots_.empty(); }
  const std::map<std::string, ProfileNode>& roots() const { return roots_; }

  /// Sum of root totals: all attributed wall time.
  double total_us() const;

  /// Pre-order flattening, paths joined with ';'. Deterministic
  /// (lexicographic at every level).
  struct Row {
    std::string path;
    std::uint32_t depth = 0;
    const ProfileNode* node = nullptr;
  };
  std::vector<Row> rows() const;

  /// `hec-profile/v1` JSON document. Byte-deterministic for a given
  /// tree: keys sorted, numbers in fixed formats.
  void write_json(std::ostream& out) const;

  /// Collapsed folded-stack lines: "root;child;leaf <self_us>", one per
  /// frame with non-zero self time, integer microseconds as the sample
  /// weight. Feed straight to flamegraph.pl.
  void write_collapsed(std::ostream& out) const;

 private:
  std::map<std::string, ProfileNode> roots_;
};

}  // namespace hec::obs
