// Exporters for the metrics registry and span tracer.
//
// Three formats, one per consumer:
//   * Chrome trace_event JSON — open in chrome://tracing or
//     https://ui.perfetto.dev to see the span tree per thread;
//   * JSONL — one self-describing JSON object per line (spans, then
//     counters/gauges/histograms), greppable and stream-parseable;
//   * Prometheus text exposition — counters/gauges/cumulative histogram
//     buckets, for diffing metric dumps across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hec::obs {

class MetricsRegistry;
class Tracer;

/// A span decoded from another process's telemetry (hec/shard's
/// `hec-telemetry/v1` sidecars). Same shape as SpanEvent, but the name
/// is owned: SpanEvent stores `const char*` because live spans point at
/// string literals, and a decoded name has no literal to point at.
struct ExternalSpan {
  std::string name;
  double start_us = 0.0;  ///< tracer-epoch-relative (see Tracer::now_us)
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< tid in the *originating* process
  std::uint32_t depth = 0;
  /// Sim-time window, absent by default. Unlike SpanEvent this uses an
  /// ordered sentinel instead of NaN — the JSON codec cannot carry NaN.
  double sim_begin_s = 0.0;
  double sim_end_s = -1.0;
  bool has_sim_window() const { return sim_end_s >= sim_begin_s; }
};

/// One remapped track in the merged trace: all spans of one foreign
/// process, rendered under their own trace-local pid with `label` as
/// the process name. `superseded` marks attempts whose work was redone
/// (killed/retried shard attempts) so the viewer shows them as such.
struct ExternalTrack {
  std::string label;
  std::uint64_t pid = 0;  ///< trace-local pid (NOT the OS pid)
  std::int64_t sort_index = 0;
  bool superseded = false;
  std::vector<ExternalSpan> spans;
};

/// A point-in-time decision marker (lease granted, shard stolen, retry
/// scheduled...) rendered as a Chrome instant event on its own thread
/// track of the coordinator process.
struct InstantEvent {
  std::string name;
  double ts_us = 0.0;  ///< tracer-epoch-relative
  std::string detail;  ///< free-form args payload
};

/// Spans and instant events gathered from other processes, merged into
/// one Chrome trace next to the local tracer's spans.
struct ExternalTrace {
  std::vector<ExternalTrack> tracks;
  std::vector<InstantEvent> instants;
  bool empty() const { return tracks.empty() && instants.empty(); }
};

/// Chrome trace_event JSON: {"traceEvents":[...complete "X" events...]}.
/// Span wall times map to ts/dur (microseconds); sim-time windows and
/// nesting depth ride in args. "otherData" always carries the tracer's
/// ring-drop accounting ("obs.spans_dropped_total" plus per-thread
/// "obs.spans_dropped_tid<N>" for threads that wrapped), so a truncated
/// trace is visible as such; when `metrics` is non-null, counter and
/// gauge totals are embedded alongside so one file carries the whole
/// observation.
///
/// When `external` is non-null, the local tracer renders as pid 1
/// ("coordinator"), every ExternalTrack renders under its trace-local
/// pid with process_name/process_sort_index metadata events, and
/// instant events land on a dedicated "decisions" thread of pid 1 —
/// one file, one timeline, per-worker tracks. All processes share the
/// tracer epoch (workers are forked after the coordinator's tracer is
/// constructed and CLOCK_MONOTONIC is system-wide), so no timestamp
/// rebasing is needed.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const MetricsRegistry* metrics = nullptr,
                        const ExternalTrace* external = nullptr);

/// JSONL event log: {"type":"span",...} lines, one {"type":"tracer",...}
/// line with per-thread recorded/dropped span counts, then
/// {"type":"counter",...}, {"type":"gauge",...} and
/// {"type":"histogram",...} lines. Histogram lines carry estimated
/// p50/p95/p99 quantiles next to the raw buckets.
void write_jsonl(std::ostream& out, const Tracer& tracer,
                 const MetricsRegistry& metrics);

/// Prometheus-style text dump. Metric names are sanitised to
/// [a-zA-Z0-9_] and prefixed "hec_" ("sim.events_processed" becomes
/// "hec_sim_events_processed"); histogram buckets are cumulative with a
/// final +Inf bucket, as the exposition format requires, and each
/// histogram additionally exposes <name>_p50/_p95/_p99 gauges with the
/// log-interpolated quantile estimates. When `tracer` is non-null the
/// dump also carries hec_obs_spans_dropped_total and per-thread
/// hec_obs_spans_dropped{tid="N"} so exports taken after a ring wrapped
/// do not read as complete traces.
void write_prometheus(std::ostream& out, const MetricsRegistry& metrics,
                      const Tracer* tracer = nullptr);

/// Escapes a Prometheus label *value* per the text exposition format:
/// backslash, double quote and newline become \\, \" and \n. Anything
/// writing `name{label="<value>"}` lines must route the value through
/// this, or a label containing a quote corrupts the whole scrape.
std::string prometheus_escape_label(std::string_view raw);

}  // namespace hec::obs
