// Exporters for the metrics registry and span tracer.
//
// Three formats, one per consumer:
//   * Chrome trace_event JSON — open in chrome://tracing or
//     https://ui.perfetto.dev to see the span tree per thread;
//   * JSONL — one self-describing JSON object per line (spans, then
//     counters/gauges/histograms), greppable and stream-parseable;
//   * Prometheus text exposition — counters/gauges/cumulative histogram
//     buckets, for diffing metric dumps across runs.
#pragma once

#include <iosfwd>

namespace hec::obs {

class MetricsRegistry;
class Tracer;

/// Chrome trace_event JSON: {"traceEvents":[...complete "X" events...]}.
/// Span wall times map to ts/dur (microseconds); sim-time windows and
/// nesting depth ride in args. "otherData" always carries the tracer's
/// ring-drop accounting ("obs.spans_dropped_total" plus per-thread
/// "obs.spans_dropped_tid<N>" for threads that wrapped), so a truncated
/// trace is visible as such; when `metrics` is non-null, counter and
/// gauge totals are embedded alongside so one file carries the whole
/// observation.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const MetricsRegistry* metrics = nullptr);

/// JSONL event log: {"type":"span",...} lines, one {"type":"tracer",...}
/// line with per-thread recorded/dropped span counts, then
/// {"type":"counter",...}, {"type":"gauge",...} and
/// {"type":"histogram",...} lines. Histogram lines carry estimated
/// p50/p95/p99 quantiles next to the raw buckets.
void write_jsonl(std::ostream& out, const Tracer& tracer,
                 const MetricsRegistry& metrics);

/// Prometheus-style text dump. Metric names are sanitised to
/// [a-zA-Z0-9_] and prefixed "hec_" ("sim.events_processed" becomes
/// "hec_sim_events_processed"); histogram buckets are cumulative with a
/// final +Inf bucket, as the exposition format requires, and each
/// histogram additionally exposes <name>_p50/_p95/_p99 gauges with the
/// log-interpolated quantile estimates. When `tracer` is non-null the
/// dump also carries hec_obs_spans_dropped_total and per-thread
/// hec_obs_spans_dropped{tid="N"} so exports taken after a ring wrapped
/// do not read as complete traces.
void write_prometheus(std::ostream& out, const MetricsRegistry& metrics,
                      const Tracer* tracer = nullptr);

}  // namespace hec::obs
