// Exporters for the metrics registry and span tracer.
//
// Three formats, one per consumer:
//   * Chrome trace_event JSON — open in chrome://tracing or
//     https://ui.perfetto.dev to see the span tree per thread;
//   * JSONL — one self-describing JSON object per line (spans, then
//     counters/gauges/histograms), greppable and stream-parseable;
//   * Prometheus text exposition — counters/gauges/cumulative histogram
//     buckets, for diffing metric dumps across runs.
#pragma once

#include <iosfwd>

namespace hec::obs {

class MetricsRegistry;
class Tracer;

/// Chrome trace_event JSON: {"traceEvents":[...complete "X" events...]}.
/// Span wall times map to ts/dur (microseconds); sim-time windows and
/// nesting depth ride in args. When `metrics` is non-null, counter and
/// gauge totals are embedded under "otherData" so one file carries the
/// whole observation.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const MetricsRegistry* metrics = nullptr);

/// JSONL event log: {"type":"span",...} lines then {"type":"counter",...},
/// {"type":"gauge",...} and {"type":"histogram",...} lines.
void write_jsonl(std::ostream& out, const Tracer& tracer,
                 const MetricsRegistry& metrics);

/// Prometheus-style text dump. Metric names are sanitised to
/// [a-zA-Z0-9_] and prefixed "hec_" ("sim.events_processed" becomes
/// "hec_sim_events_processed"); histogram buckets are cumulative with a
/// final +Inf bucket, as the exposition format requires.
void write_prometheus(std::ostream& out, const MetricsRegistry& metrics);

}  // namespace hec::obs
