// hec::obs umbrella: instrumentation macros and leveled logging.
//
// Instrumented code uses only these macros, never the classes directly:
//
//   HEC_SPAN("config.evaluate_all");           // RAII scope, auto-named var
//   HEC_SPAN_NAMED(span, "sim.node_run");      // when sim_window() is needed
//   span.sim_window(0.0, result.wall_s);
//   HEC_COUNTER_INC("sim.events_processed");
//   HEC_COUNTER_ADD("sim.core_busy_s", result.cpu_busy_s);
//   HEC_GAUGE_SET("pareto.frontier_size", n);
//   HEC_HISTOGRAM_OBSERVE("config.eval_wall_s", seconds);
//   HEC_SCOPED_TIMER("config.eval_wall_s");    // observes on scope exit
//
// Metric names are "subsystem.metric" (dots become underscores in the
// Prometheus dump). The counter/gauge/histogram macros cache the
// registry lookup in a function-local static, so the steady-state cost
// is one relaxed atomic load (the obs::enabled() gate) plus one relaxed
// fetch_add on a thread-striped cell.
//
// Defining HEC_OBS_DISABLE (CMake: -DHEC_OBS_DISABLE=ON) compiles every
// macro to nothing: no statics, no atomics, no clock reads. Arguments
// are still parsed but never evaluated, so instrumentation cannot carry
// side effects the disabled build would miss.
#pragma once

#include <string>

#include "hec/obs/metrics.h"  // IWYU pragma: export
#include "hec/obs/span.h"     // IWYU pragma: export

namespace hec::obs {

/// Stderr log verbosity: 0 quiet (default), 1 progress, 2 debug.
int log_level() noexcept;
void set_log_level(int level) noexcept;

/// Writes "[hec] msg" to stderr when `level` <= log_level().
void log(int level, const std::string& msg);

}  // namespace hec::obs

#define HEC_OBS_CONCAT_IMPL(a, b) a##b
#define HEC_OBS_CONCAT(a, b) HEC_OBS_CONCAT_IMPL(a, b)

#ifndef HEC_OBS_DISABLE

#define HEC_SPAN(name)                           \
  [[maybe_unused]] ::hec::obs::SpanGuard HEC_OBS_CONCAT( \
      hec_obs_span_, __COUNTER__) { name }

#define HEC_SPAN_NAMED(var, name) \
  ::hec::obs::SpanGuard var { name }

#define HEC_COUNTER_ADD(name, amount)                      \
  do {                                                     \
    static ::hec::obs::Counter& hec_obs_c =                \
        ::hec::obs::registry().counter(name);              \
    hec_obs_c.add(amount);                                 \
  } while (false)

#define HEC_COUNTER_INC(name) HEC_COUNTER_ADD(name, 1.0)

#define HEC_GAUGE_SET(name, value)                         \
  do {                                                     \
    static ::hec::obs::Gauge& hec_obs_g =                  \
        ::hec::obs::registry().gauge(name);                \
    hec_obs_g.set(value);                                  \
  } while (false)

#define HEC_HISTOGRAM_OBSERVE(name, value)                 \
  do {                                                     \
    static ::hec::obs::Histogram& hec_obs_h =              \
        ::hec::obs::registry().histogram(name);            \
    hec_obs_h.observe(value);                              \
  } while (false)

#define HEC_SCOPED_TIMER(name)                                       \
  [[maybe_unused]] ::hec::obs::ScopedTimer HEC_OBS_CONCAT(           \
      hec_obs_timer_, __COUNTER__) {                                 \
    []() -> ::hec::obs::Histogram& {                                 \
      static ::hec::obs::Histogram& hec_obs_h =                      \
          ::hec::obs::registry().histogram(name);                    \
      return hec_obs_h;                                              \
    }()                                                              \
  }

#else  // HEC_OBS_DISABLE

#define HEC_SPAN(name)                                   \
  [[maybe_unused]] ::hec::obs::NoopSpan HEC_OBS_CONCAT(  \
      hec_obs_span_, __COUNTER__) {}

#define HEC_SPAN_NAMED(var, name) \
  [[maybe_unused]] ::hec::obs::NoopSpan var {}

#define HEC_COUNTER_ADD(name, amount) \
  do {                                \
    (void)sizeof(amount);             \
  } while (false)

#define HEC_COUNTER_INC(name) \
  do {                        \
  } while (false)

#define HEC_GAUGE_SET(name, value) \
  do {                             \
    (void)sizeof(value);           \
  } while (false)

#define HEC_HISTOGRAM_OBSERVE(name, value) \
  do {                                     \
    (void)sizeof(value);                   \
  } while (false)

#define HEC_SCOPED_TIMER(name)                          \
  [[maybe_unused]] ::hec::obs::NoopTimer HEC_OBS_CONCAT( \
      hec_obs_timer_, __COUNTER__) {}

#endif  // HEC_OBS_DISABLE
