#include "hec/obs/span.h"

#include <algorithm>

namespace hec::obs {

namespace {

std::uint64_t next_tracer_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer()
    : id_(next_tracer_id()), epoch_(std::chrono::steady_clock::now()) {}

double Tracer::now_us() const noexcept {
  const std::chrono::duration<double, std::micro> dt =
      std::chrono::steady_clock::now() - epoch_;
  return dt.count();
}

Tracer::ThreadRing& Tracer::local_ring() noexcept {
  // Cache the ring pointer per (thread, tracer-instance). A plain
  // thread_local pointer would dangle across distinct tracers in tests,
  // so the cache also remembers which tracer it belongs to.
  thread_local std::uint64_t cached_id = 0;
  thread_local ThreadRing* cached_ring = nullptr;
  if (cached_id == id_ && cached_ring != nullptr) return *cached_ring;

  auto ring = std::make_unique<ThreadRing>();
  ThreadRing* raw = ring.get();
  {
    std::lock_guard lock(rings_mutex_);
    raw->tid = static_cast<std::uint32_t>(rings_.size());
    rings_.push_back(std::move(ring));
  }
  cached_id = id_;
  cached_ring = raw;
  return *raw;
}

std::uint32_t Tracer::begin_span() noexcept {
  ThreadRing& r = local_ring();
  const int depth = r.depth.fetch_add(1, std::memory_order_relaxed);
  return static_cast<std::uint32_t>(depth < 0 ? 0 : depth);
}

void Tracer::end_span(SpanEvent ev) noexcept {
  ThreadRing& r = local_ring();
  const int depth = r.depth.fetch_sub(1, std::memory_order_relaxed);
  if (depth <= 0) {
    // Close without a matching open: clamp and flag instead of going
    // negative forever.
    r.depth.store(0, std::memory_order_relaxed);
    unbalanced_.fetch_add(1, std::memory_order_relaxed);
  }
  ev.tid = r.tid;
  std::lock_guard lock(r.m);
  if (r.ring.size() < kRingCapacity) {
    r.ring.push_back(ev);
  } else {
    r.ring[static_cast<std::size_t>(r.count % kRingCapacity)] = ev;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++r.count;
}

void Tracer::record(SpanEvent ev) noexcept {
  ThreadRing& r = local_ring();
  ev.tid = r.tid;
  std::lock_guard lock(r.m);
  if (r.ring.size() < kRingCapacity) {
    r.ring.push_back(ev);
  } else {
    r.ring[static_cast<std::size_t>(r.count % kRingCapacity)] = ev;
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  ++r.count;
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::vector<SpanEvent> out;
  std::lock_guard lock(rings_mutex_);
  for (const auto& r : rings_) {
    std::lock_guard ring_lock(r->m);
    out.insert(out.end(), r->ring.begin(), r->ring.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::vector<Tracer::ThreadDropStats> Tracer::thread_drop_stats() const {
  std::vector<ThreadDropStats> out;
  std::lock_guard lock(rings_mutex_);
  out.reserve(rings_.size());
  for (const auto& r : rings_) {
    std::lock_guard ring_lock(r->m);
    // count is total recorded; once the ring wrapped, everything beyond
    // its capacity was overwritten.
    const std::uint64_t size = r->ring.size();
    out.push_back({r->tid, r->count, r->count > size ? r->count - size : 0});
  }
  return out;
}

int Tracer::open_spans() const {
  int open = 0;
  std::lock_guard lock(rings_mutex_);
  for (const auto& r : rings_) {
    open += r->depth.load(std::memory_order_relaxed);
  }
  return open;
}

void Tracer::clear() {
  std::lock_guard lock(rings_mutex_);
  for (const auto& r : rings_) {
    std::lock_guard ring_lock(r->m);
    r->ring.clear();
    r->count = 0;
  }
  dropped_.store(0, std::memory_order_relaxed);
  unbalanced_.store(0, std::memory_order_relaxed);
}

Tracer& tracer() {
  // Leaked on purpose, same reasoning as obs::registry().
  static Tracer* instance = new Tracer();
  return *instance;
}

SpanGuard::SpanGuard(const char* name) noexcept
    : name_(name), active_(enabled()) {
  if (!active_) return;
  Tracer& t = tracer();
  depth_ = t.begin_span();
  start_us_ = t.now_us();
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  Tracer& t = tracer();
  SpanEvent ev;
  ev.name = name_;
  ev.start_us = start_us_;
  ev.dur_us = t.now_us() - start_us_;
  ev.depth = depth_;
  ev.sim_begin_s = sim_begin_s_;
  ev.sim_end_s = sim_end_s_;
  t.end_span(ev);
}

}  // namespace hec::obs
