// Internal JSON text helpers shared by the obs exporters (export.cpp,
// profile.cpp). Not installed: hec::obs sits below hec::benchkit in the
// dependency order, so it hand-rolls its JSON instead of using
// hec/bench/json.h — these helpers keep the hand-rolling in one place.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace hec::obs::internal {

inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; exporters only call this with finite
/// values but a defensive null keeps the output parseable regardless.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Microsecond timestamps: fixed %.3f so values are stable under
/// accumulation order and the trace stays byte-deterministic.
inline std::string json_micros(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace hec::obs::internal
