#include "hec/obs/profile.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <tuple>
#include <utility>

#include "hec/obs/export.h"
#include "hec/obs/span.h"
#include "json_text.h"

namespace hec::obs {

namespace {

/// Stand-in frame for spans whose parents were lost to ring wrap: a
/// depth-3 span with no surviving depth-2 parent nests under this
/// instead of being misattributed to an unrelated sibling.
constexpr const char* kUnknownFrame = "(unknown)";

void merge_sim_window(ProfileNode& n, const ProfileSpan& s) {
  if (!s.has_sim) return;
  if (!n.has_sim) {
    n.has_sim = true;
    n.sim_begin_s = s.sim_begin_s;
    n.sim_end_s = s.sim_end_s;
  } else {
    n.sim_begin_s = std::min(n.sim_begin_s, s.sim_begin_s);
    n.sim_end_s = std::max(n.sim_end_s, s.sim_end_s);
  }
}

}  // namespace

void ProfileTree::add(std::vector<ProfileSpan> spans) {
  // Total order over every field that matters: after this sort any
  // delivery permutation of the same batch folds identically.
  std::sort(spans.begin(), spans.end(),
            [](const ProfileSpan& a, const ProfileSpan& b) {
              return std::tie(a.process, a.tid, a.start_us, a.depth, a.name,
                              a.dur_us) < std::tie(b.process, b.tid, b.start_us,
                                                   b.depth, b.name, b.dur_us);
            });

  // One reconstruction stack per (process, tid) group. stack[i] is the
  // open frame at depth i (plus a leading process-container frame for
  // external groups). std::map node references are stable under
  // insertion, so raw pointers survive sibling lookups.
  std::vector<ProfileNode*> stack;
  std::size_t container_frames = 0;
  const ProfileSpan* group = nullptr;

  const auto lookup = [this, &stack](const std::string& name) -> ProfileNode& {
    auto& siblings = stack.empty() ? roots_ : stack.back()->children;
    return siblings[name];
  };

  for (const ProfileSpan& s : spans) {
    if (group == nullptr || group->process != s.process ||
        group->tid != s.tid) {
      group = &s;
      stack.clear();
      container_frames = 0;
      if (!s.process.empty()) {
        stack.push_back(&roots_[s.process]);
        container_frames = 1;
      }
    }
    const std::size_t target = container_frames + s.depth;
    while (stack.size() > target) stack.pop_back();
    while (stack.size() < target) stack.push_back(&lookup(kUnknownFrame));

    ProfileNode& node = lookup(s.name);
    node.count += 1;
    node.total_us += s.dur_us;
    merge_sim_window(node, s);
    if (!stack.empty()) {
      stack.back()->child_us += s.dur_us;
      // The process container is synthetic: it has no measured span of
      // its own, so its total is defined as the sum of its top-level
      // children (keeping self at zero and total_us() exact).
      if (stack.size() == container_frames) stack.back()->total_us += s.dur_us;
    }
    stack.push_back(&node);
  }
}

void ProfileTree::add(const Tracer& tracer) {
  std::vector<ProfileSpan> spans;
  for (const SpanEvent& ev : tracer.snapshot()) {
    ProfileSpan s;
    s.tid = ev.tid;
    s.depth = ev.depth;
    s.name = ev.name != nullptr ? ev.name : "";
    s.start_us = ev.start_us;
    s.dur_us = ev.dur_us;
    if (ev.has_sim_window()) {
      s.has_sim = true;
      s.sim_begin_s = ev.sim_begin_s;
      s.sim_end_s = ev.sim_end_s;
    }
    spans.push_back(std::move(s));
  }
  add(std::move(spans));
}

void ProfileTree::add(const ExternalTrace& external) {
  std::vector<ProfileSpan> spans;
  for (const ExternalTrack& track : external.tracks) {
    std::string label = track.label;
    if (track.superseded) label += " [superseded]";
    for (const ExternalSpan& ev : track.spans) {
      ProfileSpan s;
      s.process = label;
      s.tid = ev.tid;
      s.depth = ev.depth;
      s.name = ev.name;
      s.start_us = ev.start_us;
      s.dur_us = ev.dur_us;
      if (ev.has_sim_window()) {
        s.has_sim = true;
        s.sim_begin_s = ev.sim_begin_s;
        s.sim_end_s = ev.sim_end_s;
      }
      spans.push_back(std::move(s));
    }
  }
  add(std::move(spans));
}

double ProfileTree::total_us() const {
  double total = 0.0;
  for (const auto& [name, node] : roots_) total += node.total_us;
  return total;
}

namespace {

void flatten(const std::map<std::string, ProfileNode>& siblings,
             const std::string& prefix, std::uint32_t depth,
             std::vector<ProfileTree::Row>& out) {
  for (const auto& [name, node] : siblings) {
    std::string path = prefix.empty() ? name : prefix + ";" + name;
    out.push_back({path, depth, &node});
    flatten(node.children, path, depth + 1, out);
  }
}

void write_node_json(std::ostream& out, const ProfileNode& node) {
  using internal::json_micros;
  using internal::json_number;
  out << "{\"count\":" << node.count
      << ",\"self_us\":" << json_micros(node.self_us())
      << ",\"total_us\":" << json_micros(node.total_us);
  if (node.has_sim) {
    out << ",\"sim_begin_s\":" << json_number(node.sim_begin_s)
        << ",\"sim_end_s\":" << json_number(node.sim_end_s);
  }
  if (!node.children.empty()) {
    out << ",\"children\":{";
    bool first = true;
    for (const auto& [name, child] : node.children) {
      if (!first) out << ",";
      first = false;
      out << "\"" << internal::json_escape(name) << "\":";
      write_node_json(out, child);
    }
    out << "}";
  }
  out << "}";
}

}  // namespace

std::vector<ProfileTree::Row> ProfileTree::rows() const {
  std::vector<Row> out;
  flatten(roots_, "", 0, out);
  return out;
}

void ProfileTree::write_json(std::ostream& out) const {
  out << "{\"schema\":\"hec-profile/v1\",\"total_us\":"
      << internal::json_micros(total_us()) << ",\"tree\":{";
  bool first = true;
  for (const auto& [name, node] : roots_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << internal::json_escape(name) << "\":";
    write_node_json(out, node);
  }
  out << "}}\n";
}

void ProfileTree::write_collapsed(std::ostream& out) const {
  for (const Row& row : rows()) {
    const long long weight = std::llround(row.node->self_us());
    if (weight <= 0) continue;
    out << row.path << " " << weight << "\n";
  }
}

}  // namespace hec::obs
