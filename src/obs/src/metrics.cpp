#include "hec/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hec::obs {

std::size_t Histogram::bin_index(double v) noexcept {
  if (!(v > 0.0)) return 0;  // non-positive and NaN -> underflow bucket
  int exp = 0;
  // v = m * 2^exp with m in [0.5, 1), so v lies in [2^(exp-1), 2^exp):
  // the bin whose inclusive lower edge is 2^(exp-1).
  (void)std::frexp(v, &exp);
  const long idx = static_cast<long>(exp) - 1 - kMinExp2;
  if (idx < 0) return 0;
  if (idx >= static_cast<long>(kBins)) return kBins - 1;
  return static_cast<std::size_t>(idx);
}

double Histogram::bin_upper_bound(std::size_t i) noexcept {
  return std::ldexp(1.0, kMinExp2 + static_cast<int>(i) + 1);
}

double MetricsRegistry::HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the requested quantile among `count` observations (nearest
  // rank, 1-based), then the bucket holding it.
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < Histogram::kBins; ++i) {
    if (bins[i] == 0) continue;
    const double next = cum + static_cast<double>(bins[i]);
    if (rank <= next || i + 1 == Histogram::kBins) {
      const double lower =
          std::ldexp(1.0, Histogram::kMinExp2 + static_cast<int>(i));
      // Geometric interpolation: fraction f through the bucket maps to
      // lower * 2^f, hitting the lower/upper edges at f = 0 / 1.
      const double f = (rank - cum) / static_cast<double>(bins[i]);
      return lower * std::exp2(std::min(std::max(f, 0.0), 1.0));
    }
    cum = next;
  }
  return std::numeric_limits<double>::quiet_NaN();  // unreachable
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::counters()
    const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<MetricsRegistry::HistogramSnapshot> MetricsRegistry::histograms()
    const {
  std::lock_guard lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    for (std::size_t i = 0; i < Histogram::kBins; ++i) {
      snap.bins[i] = h->bin_count(i);
    }
    snap.count = h->count();
    snap.sum = h->sum();
    out.push_back(std::move(snap));
  }
  return out;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  // Each accessor takes the registry mutex on its own; a metric updated
  // between the three copies can differ across sections, which is the
  // same guarantee concurrent writers already get within one section
  // (relaxed loads). Exporters and the bench telemetry layer only read
  // quiesced registries, where the view is exact.
  return Snapshot{counters(), gauges(), histograms()};
}

bool MetricsRegistry::empty() const {
  std::lock_guard lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsRegistry::accumulate(const Snapshot& delta) {
  for (const auto& [name, value] : delta.counters) counter(name).add(value);
  for (const HistogramSnapshot& h : delta.histograms) {
    histogram(h.name).accumulate(h.bins, h.count, h.sum);
  }
}

MetricsRegistry::Snapshot snapshot_delta(
    const MetricsRegistry::Snapshot& now,
    const MetricsRegistry::Snapshot& base) {
  // All snapshot vectors are sorted by name, so each lookup is a simple
  // merge walk; linear scans would also do at these sizes, but keeping
  // the two-pointer shape makes the sorted-output invariant obvious.
  MetricsRegistry::Snapshot delta;
  {
    auto b = base.counters.begin();
    for (const auto& [name, value] : now.counters) {
      while (b != base.counters.end() && b->first < name) ++b;
      const double prev =
          (b != base.counters.end() && b->first == name) ? b->second : 0.0;
      if (value != prev) delta.counters.emplace_back(name, value - prev);
    }
  }
  {
    auto b = base.gauges.begin();
    for (const auto& [name, value] : now.gauges) {
      while (b != base.gauges.end() && b->first < name) ++b;
      const bool had = b != base.gauges.end() && b->first == name;
      if (!had || b->second != value) delta.gauges.emplace_back(name, value);
    }
  }
  {
    auto b = base.histograms.begin();
    for (const auto& h : now.histograms) {
      while (b != base.histograms.end() && b->name < h.name) ++b;
      MetricsRegistry::HistogramSnapshot d = h;
      if (b != base.histograms.end() && b->name == h.name) {
        for (std::size_t i = 0; i < Histogram::kBins; ++i) {
          d.bins[i] -= b->bins[i];
        }
        d.count -= b->count;
        d.sum -= b->sum;
      }
      if (d.count != 0) delta.histograms.push_back(std::move(d));
    }
  }
  return delta;
}

MetricsRegistry& registry() {
  // Leaked on purpose: exporters run from static destructors (bench
  // harness at-exit reporting), which must not race registry teardown.
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace hec::obs
