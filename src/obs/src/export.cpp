#include "hec/obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

#include "hec/obs/metrics.h"
#include "hec/obs/span.h"

namespace hec::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; exporters only call this with finite
/// values but a defensive null keeps the output parseable regardless.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_micros(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string prometheus_name(std::string_view raw) {
  std::string out = "hec_";
  for (const char c : raw) {
    const auto uc = static_cast<unsigned char>(c);
    out += std::isalnum(uc) ? c : '_';
  }
  return out;
}

void write_span_args(std::ostream& out, const SpanEvent& ev) {
  out << "{\"depth\":" << ev.depth;
  if (ev.has_sim_window()) {
    out << ",\"sim_begin_s\":" << json_number(ev.sim_begin_s)
        << ",\"sim_end_s\":" << json_number(ev.sim_end_s);
  }
  out << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const MetricsRegistry* metrics) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : tracer.snapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(ev.name)
        << "\",\"cat\":\"hec\",\"ph\":\"X\",\"ts\":" << json_micros(ev.start_us)
        << ",\"dur\":" << json_micros(ev.dur_us)
        << ",\"pid\":1,\"tid\":" << ev.tid << ",\"args\":";
    write_span_args(out, ev);
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"";
  if (metrics != nullptr) {
    out << ",\"otherData\":{";
    bool first_metric = true;
    for (const auto& [name, value] : metrics->counters()) {
      if (!first_metric) out << ",";
      first_metric = false;
      out << "\"" << json_escape(name) << "\":" << json_number(value);
    }
    for (const auto& [name, value] : metrics->gauges()) {
      if (!first_metric) out << ",";
      first_metric = false;
      out << "\"" << json_escape(name) << "\":" << json_number(value);
    }
    out << "}";
  }
  out << "}\n";
}

void write_jsonl(std::ostream& out, const Tracer& tracer,
                 const MetricsRegistry& metrics) {
  for (const SpanEvent& ev : tracer.snapshot()) {
    out << "{\"type\":\"span\",\"name\":\"" << json_escape(ev.name)
        << "\",\"start_us\":" << json_micros(ev.start_us)
        << ",\"dur_us\":" << json_micros(ev.dur_us) << ",\"tid\":" << ev.tid
        << ",\"depth\":" << ev.depth;
    if (ev.has_sim_window()) {
      out << ",\"sim_begin_s\":" << json_number(ev.sim_begin_s)
          << ",\"sim_end_s\":" << json_number(ev.sim_end_s);
    }
    out << "}\n";
  }
  for (const auto& [name, value] : metrics.counters()) {
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << json_number(value) << "}\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << json_number(value) << "}\n";
  }
  for (const auto& h : metrics.histograms()) {
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
        << "\",\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
        << ",\"bins\":[";
    bool first = true;
    for (std::size_t i = 0; i < Histogram::kBins; ++i) {
      if (h.bins[i] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "{\"le\":" << json_number(Histogram::bin_upper_bound(i))
          << ",\"n\":" << h.bins[i] << "}";
    }
    out << "]}\n";
  }
}

void write_prometheus(std::ostream& out, const MetricsRegistry& metrics) {
  for (const auto& [name, value] : metrics.counters()) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << json_number(value) << "\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " " << json_number(value) << "\n";
  }
  for (const auto& h : metrics.histograms()) {
    const std::string pname = prometheus_name(h.name);
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBins; ++i) {
      if (h.bins[i] == 0) continue;
      cumulative += h.bins[i];
      out << pname << "_bucket{le=\""
          << json_number(Histogram::bin_upper_bound(i)) << "\"} " << cumulative
          << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << pname << "_sum " << json_number(h.sum) << "\n";
    out << pname << "_count " << h.count << "\n";
  }
}

}  // namespace hec::obs
