#include "hec/obs/export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "hec/obs/metrics.h"
#include "hec/obs/span.h"
#include "json_text.h"

namespace hec::obs {

using internal::json_escape;
using internal::json_micros;
using internal::json_number;

namespace {

/// Prometheus values, unlike JSON, have NaN/Inf spellings.
std::string prom_number(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string prometheus_name(std::string_view raw) {
  std::string out = "hec_";
  for (const char c : raw) {
    const auto uc = static_cast<unsigned char>(c);
    out += std::isalnum(uc) ? c : '_';
  }
  return out;
}

void write_span_args(std::ostream& out, const SpanEvent& ev) {
  out << "{\"depth\":" << ev.depth;
  if (ev.has_sim_window()) {
    out << ",\"sim_begin_s\":" << json_number(ev.sim_begin_s)
        << ",\"sim_end_s\":" << json_number(ev.sim_end_s);
  }
  out << "}";
}

}  // namespace

std::string prometheus_escape_label(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

/// Trace-local tid for the coordinator's decision markers: far above
/// any real per-process span tid (those are small ordinals handed out
/// by the tracer), so the instants always get their own track.
constexpr std::uint32_t kDecisionsTid = 1000000;

void write_metadata_event(std::ostream& out, bool& first, const char* what,
                          std::uint64_t pid, std::uint64_t tid,
                          const std::string& name_arg) {
  if (!first) out << ",";
  first = false;
  out << "\n{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
      << json_escape(name_arg) << "\"}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const MetricsRegistry* metrics,
                        const ExternalTrace* external) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : tracer.snapshot()) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"" << json_escape(ev.name)
        << "\",\"cat\":\"hec\",\"ph\":\"X\",\"ts\":" << json_micros(ev.start_us)
        << ",\"dur\":" << json_micros(ev.dur_us)
        << ",\"pid\":1,\"tid\":" << ev.tid << ",\"args\":";
    write_span_args(out, ev);
    out << "}";
  }
  if (external != nullptr && !external->empty()) {
    write_metadata_event(out, first, "process_name", 1, 0, "coordinator");
    for (const ExternalTrack& track : external->tracks) {
      std::string label = track.label;
      if (track.superseded) label += " [superseded]";
      write_metadata_event(out, first, "process_name", track.pid, 0, label);
      if (!first) out << ",";
      out << "\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":"
          << track.pid << ",\"tid\":0,\"args\":{\"sort_index\":"
          << track.sort_index << "}}";
      for (const ExternalSpan& ev : track.spans) {
        out << ",\n{\"name\":\"" << json_escape(ev.name)
            << "\",\"cat\":\"hec\",\"ph\":\"X\",\"ts\":"
            << json_micros(ev.start_us) << ",\"dur\":" << json_micros(ev.dur_us)
            << ",\"pid\":" << track.pid << ",\"tid\":" << ev.tid
            << ",\"args\":{\"depth\":" << ev.depth;
        if (track.superseded) out << ",\"superseded\":true";
        if (ev.has_sim_window()) {
          out << ",\"sim_begin_s\":" << json_number(ev.sim_begin_s)
              << ",\"sim_end_s\":" << json_number(ev.sim_end_s);
        }
        out << "}}";
      }
    }
    if (!external->instants.empty()) {
      write_metadata_event(out, first, "thread_name", 1, kDecisionsTid,
                           "coordinator decisions");
      for (const InstantEvent& ev : external->instants) {
        out << ",\n{\"name\":\"" << json_escape(ev.name)
            << "\",\"cat\":\"hec\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
            << json_micros(ev.ts_us) << ",\"pid\":1,\"tid\":" << kDecisionsTid
            << ",\"args\":{\"detail\":\"" << json_escape(ev.detail) << "\"}}";
      }
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"";
  out << ",\"otherData\":{\"obs.spans_dropped_total\":" << tracer.dropped();
  for (const auto& t : tracer.thread_drop_stats()) {
    if (t.dropped == 0) continue;
    out << ",\"obs.spans_dropped_tid" << t.tid << "\":" << t.dropped;
  }
  if (metrics != nullptr) {
    for (const auto& [name, value] : metrics->counters()) {
      out << ",\"" << json_escape(name) << "\":" << json_number(value);
    }
    for (const auto& [name, value] : metrics->gauges()) {
      out << ",\"" << json_escape(name) << "\":" << json_number(value);
    }
  }
  out << "}}\n";
}

void write_jsonl(std::ostream& out, const Tracer& tracer,
                 const MetricsRegistry& metrics) {
  for (const SpanEvent& ev : tracer.snapshot()) {
    out << "{\"type\":\"span\",\"name\":\"" << json_escape(ev.name)
        << "\",\"start_us\":" << json_micros(ev.start_us)
        << ",\"dur_us\":" << json_micros(ev.dur_us) << ",\"tid\":" << ev.tid
        << ",\"depth\":" << ev.depth;
    if (ev.has_sim_window()) {
      out << ",\"sim_begin_s\":" << json_number(ev.sim_begin_s)
          << ",\"sim_end_s\":" << json_number(ev.sim_end_s);
    }
    out << "}\n";
  }
  out << "{\"type\":\"tracer\",\"spans_dropped_total\":" << tracer.dropped()
      << ",\"by_thread\":[";
  bool first_thread = true;
  for (const auto& t : tracer.thread_drop_stats()) {
    if (!first_thread) out << ",";
    first_thread = false;
    out << "{\"tid\":" << t.tid << ",\"recorded\":" << t.recorded
        << ",\"dropped\":" << t.dropped << "}";
  }
  out << "]}\n";
  for (const auto& [name, value] : metrics.counters()) {
    out << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << json_number(value) << "}\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    out << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
        << "\",\"value\":" << json_number(value) << "}\n";
  }
  for (const auto& h : metrics.histograms()) {
    out << "{\"type\":\"histogram\",\"name\":\"" << json_escape(h.name)
        << "\",\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
        << ",\"p50\":" << json_number(h.quantile(0.50))
        << ",\"p95\":" << json_number(h.quantile(0.95))
        << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"bins\":[";
    bool first = true;
    for (std::size_t i = 0; i < Histogram::kBins; ++i) {
      if (h.bins[i] == 0) continue;
      if (!first) out << ",";
      first = false;
      out << "{\"le\":" << json_number(Histogram::bin_upper_bound(i))
          << ",\"n\":" << h.bins[i] << "}";
    }
    out << "]}\n";
  }
}

void write_prometheus(std::ostream& out, const MetricsRegistry& metrics,
                      const Tracer* tracer) {
  for (const auto& [name, value] : metrics.counters()) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " counter\n";
    out << pname << " " << json_number(value) << "\n";
  }
  for (const auto& [name, value] : metrics.gauges()) {
    const std::string pname = prometheus_name(name);
    out << "# TYPE " << pname << " gauge\n";
    out << pname << " " << json_number(value) << "\n";
  }
  for (const auto& h : metrics.histograms()) {
    const std::string pname = prometheus_name(h.name);
    out << "# TYPE " << pname << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBins; ++i) {
      if (h.bins[i] == 0) continue;
      cumulative += h.bins[i];
      out << pname << "_bucket{le=\""
          << json_number(Histogram::bin_upper_bound(i)) << "\"} " << cumulative
          << "\n";
    }
    out << pname << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << pname << "_sum " << json_number(h.sum) << "\n";
    out << pname << "_count " << h.count << "\n";
    // Estimated quantiles as sibling gauges: a histogram and a summary
    // cannot legally share one metric name, so the quantiles get their
    // own _pNN names instead of {quantile=...} labels. Skipped entirely
    // for empty histograms — quantile() is NaN with no samples, and a
    // NaN gauge poisons scrapers that treat the dump as numbers.
    if (h.count == 0) continue;
    for (const auto& [suffix, q] :
         {std::pair<const char*, double>{"_p50", 0.50},
          {"_p95", 0.95},
          {"_p99", 0.99}}) {
      out << "# TYPE " << pname << suffix << " gauge\n";
      out << pname << suffix << " " << prom_number(h.quantile(q)) << "\n";
    }
  }
  if (tracer != nullptr) {
    out << "# TYPE hec_obs_spans_dropped_total counter\n";
    out << "hec_obs_spans_dropped_total " << tracer->dropped() << "\n";
    for (const auto& t : tracer->thread_drop_stats()) {
      out << "hec_obs_spans_dropped{tid=\""
          << prometheus_escape_label(std::to_string(t.tid)) << "\"} "
          << t.dropped << "\n";
    }
  }
}

}  // namespace hec::obs
