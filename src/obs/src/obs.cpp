#include "hec/obs/obs.h"

#include <atomic>
#include <iostream>

namespace hec::obs {

namespace {
std::atomic<int> g_log_level{0};
}  // namespace

int log_level() noexcept { return g_log_level.load(std::memory_order_relaxed); }

void set_log_level(int level) noexcept {
  g_log_level.store(level, std::memory_order_relaxed);
}

void log(int level, const std::string& msg) {
  if (level > log_level()) return;
  std::cerr << "[hec] " << msg << "\n";
}

}  // namespace hec::obs
