#include "hec/shard/critical_path.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace hec::shard {

namespace {

enum class EventKind { kSpawn, kDone, kSteal, kReassign, kRetry, kFailed };

struct ShardEvent {
  EventKind kind = EventKind::kSpawn;
  double ts_us = 0.0;
  std::size_t shard = 0;
  std::uint64_t attempt = 0;
};

std::optional<std::uint64_t> parse_field(const std::string& detail,
                                         const char* key) {
  const std::size_t pos = detail.find(key);
  if (pos == std::string::npos) return std::nullopt;
  const char* start = detail.c_str() + pos + std::strlen(key);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(start, &end, 10);
  if (end == start) return std::nullopt;
  return v;
}

std::optional<EventKind> classify(const std::string& name) {
  if (name == "shard.spawn") return EventKind::kSpawn;
  if (name == "shard.done") return EventKind::kDone;
  if (name == "shard.steal") return EventKind::kSteal;
  if (name == "shard.reassign") return EventKind::kReassign;
  if (name == "shard.retry") return EventKind::kRetry;
  if (name == "shard.failed") return EventKind::kFailed;
  return std::nullopt;  // shard.deadline etc: no per-shard chain edge
}

const char* cause_of(EventKind kind) {
  switch (kind) {
    case EventKind::kSteal:
      return "stolen";
    case EventKind::kReassign:
      return "reassigned";
    case EventKind::kRetry:
      return "retried";
    case EventKind::kFailed:
      return "failed";
    default:
      return "ended";
  }
}

std::string shard_attempt_label(std::size_t shard, std::uint64_t attempt) {
  return "shard " + std::to_string(shard) + " attempt " +
         std::to_string(attempt);
}

}  // namespace

const char* to_string(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kLeadIn:
      return "lead-in";
    case SegmentKind::kAttemptRun:
      return "run";
    case SegmentKind::kWastedRun:
      return "wasted-run";
    case SegmentKind::kBackoff:
      return "backoff";
    case SegmentKind::kTail:
      return "tail";
  }
  return "unknown";
}

double CriticalPath::total_us() const {
  double total = 0.0;
  for (const PathSegment& s : segments) total += s.dur_us();
  return total;
}

CriticalPath critical_path(const std::vector<obs::InstantEvent>& instants,
                           double begin_us, double end_us) {
  CriticalPath path;
  path.begin_us = begin_us;
  path.end_us = end_us;

  std::vector<ShardEvent> events;
  for (const obs::InstantEvent& ev : instants) {
    const std::optional<EventKind> kind = classify(ev.name);
    if (!kind) continue;
    const std::optional<std::uint64_t> shard = parse_field(ev.detail, "shard=");
    if (!shard) continue;
    ShardEvent e;
    e.kind = *kind;
    e.ts_us = std::clamp(ev.ts_us, begin_us, end_us);
    e.shard = static_cast<std::size_t>(*shard);
    e.attempt = parse_field(ev.detail, "attempt=").value_or(0);
    events.push_back(e);
  }
  if (events.empty()) return path;
  std::stable_sort(events.begin(), events.end(),
                   [](const ShardEvent& a, const ShardEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  // The gating shard: the one whose result landed last. Every other
  // shard's chain finished under it, so this shard's attempt history is
  // the critical path. Runs that never completed (deadline, exhausted
  // retries) gate on whichever shard was active last instead.
  const ShardEvent* gate = nullptr;
  for (const ShardEvent& e : events) {
    if (e.kind == EventKind::kDone) gate = &e;
  }
  if (gate != nullptr) {
    path.gating_done = true;
  } else {
    gate = &events.back();
  }
  path.gating_shard = gate->shard;

  std::vector<ShardEvent> chain;
  for (const ShardEvent& e : events) {
    if (e.shard == path.gating_shard) chain.push_back(e);
  }

  const auto emit = [&path](SegmentKind kind, std::string label, double b,
                            double e, std::size_t shard = SIZE_MAX,
                            std::uint64_t attempt = 0) {
    if (e <= b) return;  // zero-length edges keep the tiling sum exact
    path.segments.push_back({kind, std::move(label), b, e, shard, attempt});
  };

  // Segments tile [begin_us, end_us]: lead-in, then the gating shard's
  // alternating run/backoff chain, then the merge tail. `cursor` is the
  // end of the last emitted segment, so sum(dur) == wall by induction.
  double cursor = begin_us;
  emit(SegmentKind::kLeadIn, "coordinator plan + queue", cursor,
       chain.front().ts_us);
  cursor = chain.front().ts_us;

  bool open = false;
  double attempt_start = cursor;
  std::uint64_t attempt = 0;
  for (const ShardEvent& e : chain) {
    switch (e.kind) {
      case EventKind::kSpawn:
        emit(SegmentKind::kBackoff, "backoff / requeue wait", cursor, e.ts_us,
             path.gating_shard);
        open = true;
        attempt = e.attempt;
        attempt_start = e.ts_us;
        cursor = e.ts_us;
        break;
      case EventKind::kDone:
        emit(SegmentKind::kAttemptRun,
             shard_attempt_label(path.gating_shard, open ? attempt : e.attempt) +
                 " run",
             open ? attempt_start : cursor, e.ts_us, path.gating_shard,
             open ? attempt : e.attempt);
        open = false;
        cursor = e.ts_us;
        break;
      case EventKind::kSteal:
      case EventKind::kReassign:
      case EventKind::kRetry:
      case EventKind::kFailed:
        emit(SegmentKind::kWastedRun,
             shard_attempt_label(path.gating_shard, open ? attempt : e.attempt) +
                 " run (" + cause_of(e.kind) + ")",
             open ? attempt_start : cursor, e.ts_us, path.gating_shard,
             open ? attempt : e.attempt);
        open = false;
        cursor = e.ts_us;
        break;
    }
  }
  if (open) {
    // Attempt still in flight at window end: killed by the deadline or
    // the final kill_all(). Its segment runs to the edge; no tail.
    emit(SegmentKind::kWastedRun,
         shard_attempt_label(path.gating_shard, attempt) + " run (aborted)",
         attempt_start, end_us, path.gating_shard, attempt);
  } else {
    emit(SegmentKind::kTail, "telemetry ingest + merge + finish", cursor,
         end_us);
  }
  return path;
}

std::optional<CriticalPath> critical_path_from_chrome_trace(
    const bench::json::Value& trace, std::string* why) {
  const auto fail = [why](const char* reason) -> std::optional<CriticalPath> {
    if (why != nullptr) *why = reason;
    return std::nullopt;
  };
  const bench::json::Value* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("not a Chrome trace (no traceEvents array)");
  }

  std::vector<obs::InstantEvent> instants;
  double begin_us = 0.0;
  double end_us = -1.0;
  for (const bench::json::Value& ev : events->as_array()) {
    const std::string& ph = ev["ph"].as_string();
    const std::string& name = ev["name"].as_string();
    if (ph == "X" && name == "shard.coordinator") {
      begin_us = ev["ts"].as_number();
      end_us = begin_us + ev["dur"].as_number();
    } else if (ph == "i" && name.rfind("shard.", 0) == 0) {
      instants.push_back(
          {name, ev["ts"].as_number(), ev["args"]["detail"].as_string()});
    }
  }
  if (instants.empty()) {
    return fail(
        "trace has no shard decision markers (not a sharded run, or obs "
        "was disabled)");
  }
  if (end_us < begin_us) {
    // Coordinator span lost (ring wrap): fall back to the markers' own
    // extent — lead-in and tail read as zero, the chain itself survives.
    begin_us = instants.front().ts_us;
    end_us = instants.front().ts_us;
    for (const obs::InstantEvent& ev : instants) {
      begin_us = std::min(begin_us, ev.ts_us);
      end_us = std::max(end_us, ev.ts_us);
    }
  }
  return critical_path(instants, begin_us, end_us);
}

}  // namespace hec::shard
