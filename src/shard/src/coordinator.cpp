// Coordinator half of the sharded sweep: plans shards, places attempts
// on workers through a Transport (fork+pipe or supervised sockets —
// hec/shard/transport.h), supervises them through the lease table, and
// merges the per-shard frontiers. See hec/shard/shard.h for the
// robustness model.
//
// Threading: exactly one extra thread — the monitor (a PeriodicTask)
// that scans the lease table and queues revocations. All process and
// socket operations happen on the caller's thread. The monitor
// callback and fork() serialise on one mutex, so a child is never
// created while the monitor is mid-operation and the child never
// inherits a locked lock it could trip over.
#include "hec/shard/shard.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "hec/bench/json.h"
#include "hec/config/evaluate.h"
#include "hec/obs/obs.h"
#include "hec/parallel/periodic.h"
#include "hec/pareto/streaming.h"
#include "hec/resilience/journal.h"
#include "hec/shard/lease.h"
#include "hec/shard/protocol.h"
#include "hec/shard/result_file.h"
#include "hec/shard/telemetry.h"
#include "hec/shard/transport.h"
#include "hec/sweep/kernel.h"
#include "hec/util/atomic_file.h"
#include "hec/util/failpoint.h"
#include "internal.h"

namespace hec::shard {

namespace {

using Clock = std::chrono::steady_clock;

struct ShardState {
  IndexRange range;
  std::size_t attempts = 0;  ///< spawns so far (every respawn costs budget)
  bool complete = false;
  bool failed = false;  ///< retry budget exhausted
  double eligible_at_s = 0.0;
  std::vector<TimeEnergyPoint> frontier;
};

struct RunningWorker {
  std::unique_ptr<WorkerLink> link;
  std::size_t shard = 0;
  std::uint64_t attempt = 0;
  /// How the attempt's messages concluded it this turn: recycle the
  /// link for the next assignment (D delivered a loadable result, or F
  /// — the connection itself behaved), or quarantine it (garbage or a
  /// D without a result: the peer is broken, never reuse the link).
  enum class Concluded { kNo, kRecycle, kQuarantine } concluded =
      Concluded::kNo;
};

/// Restores the previous SIGPIPE disposition on scope exit. The
/// coordinator writes to worker links (socket assignments, pings); a
/// peer dying mid-write must surface as EPIPE on the write loop, never
/// as SIGPIPE process death.
struct SigPipeGuard {
  void (*previous)(int);
  SigPipeGuard() { previous = std::signal(SIGPIPE, SIG_IGN); }
  ~SigPipeGuard() {
    if (previous != SIG_ERR) std::signal(SIGPIPE, previous);
  }
};

void make_state_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0775) == 0 || errno == EEXIST) return;
  throw IoError("cannot create shard state dir '" + dir +
                "': " + std::strerror(errno));
}

/// Mints the per-run id that fingerprints telemetry sidecars and tags
/// the assignment lines. Wall clock + pid hashed together: two runs of
/// the same sweep in the same state directory must never collide, or a
/// stale sidecar could merge into the wrong run.
std::uint64_t mint_run_id() {
  const auto wall =
      std::chrono::system_clock::now().time_since_epoch().count();
  return resilience::fnv1a64(std::to_string(wall) + ":" +
                             std::to_string(::getpid()));
}

/// Rate observed between an attempt's first and last cursor reports.
struct AttemptInfo {
  std::size_t shard = 0;
  pid_t pid = -1;
  bool saw_cursor = false;
  std::size_t first_cursor = 0;
  double first_seen_s = 0.0;
  std::size_t last_cursor = 0;
  double last_seen_s = 0.0;
  bool completed = false;
  bool superseded = false;

  double configs_per_s() const {
    if (!saw_cursor || last_seen_s <= first_seen_s ||
        last_cursor <= first_cursor) {
      return 0.0;
    }
    return static_cast<double>(last_cursor - first_cursor) /
           (last_seen_s - first_seen_s);
  }
};

/// The whole supervision state, shared between the caller's thread and
/// the monitor thread (only `lease` and `revocations` cross threads).
class Coordinator {
 public:
  Coordinator(const ShardedSweepSpec& spec, const ShardedSweepOptions& opts)
      : spec_(spec),
        opts_(opts),
        signature_(internal::sweep_signature(spec)),
        run_id_(mint_run_id()),
        merger_(telemetry_fingerprint(internal::sweep_signature(spec),
                                      run_id_)),
        lease_(opts.heartbeat_timeout_s, opts.progress_timeout_s),
        start_(Clock::now()) {}

  ShardedSweepResult run();

 private:
  double now_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void plan_shards();
  void make_transport();
  bool load_result(std::size_t shard);
  bool try_reuse_result(std::size_t shard);
  bool spawn(std::size_t shard);
  void spawn_eligible();
  void drain_revocations();
  void pump_links();
  /// Drains worker `idx` and fully resolves what came out: messages,
  /// conclusion (recycle/quarantine), or death. May erase the entry.
  void service_link(std::size_t idx);
  /// Drops a connection that sent garbage (corrupt frame or malformed
  /// record) and requeues its shard. Socket-transport only; the same
  /// connection is never retried.
  void quarantine(std::size_t idx, const std::string& why);
  void handle_line(RunningWorker& worker, const Message& m);
  void requeue(std::size_t shard, std::uint64_t attempt, const char* cause,
               bool backoff);
  void kill_all();
  std::optional<std::size_t> find_running(std::size_t shard,
                                          std::uint64_t attempt) const;
  bool work_remains() const;
  ShardedSweepResult finish();

  /// True when workers ship telemetry sidecars this run.
  bool telemetry_enabled() const {
#ifdef HEC_OBS_DISABLE
    return false;
#else
    return opts_.telemetry_interval_s >= 0.0;
#endif
  }
  /// Records a coordinator decision as an instant event for the merged
  /// trace's decisions track.
  void note(const char* name, std::string detail);
  /// Reads every known attempt's sidecar into the merger.
  void ingest_telemetry();
  /// Time-gated telemetry ingest + status/progress emission; called
  /// once per supervision-loop turn and unconditionally from finish().
  void observe(bool final_pass);
  /// Atomically replaces the hec-sweep-status/v1 document (and emits
  /// the opt-in stderr progress line).
  void write_status(bool final_pass);
  /// Indices covered so far: committed shards plus live lease progress.
  std::size_t configs_covered() const;

  const ShardedSweepSpec& spec_;
  const ShardedSweepOptions& opts_;
  const std::string signature_;
  const std::uint64_t run_id_;

  /// Declared before running_ so links are destroyed before their
  /// transport (links deregister fds / close sockets through it).
  std::unique_ptr<Transport> transport_;
  std::vector<ShardState> shards_;
  std::vector<RunningWorker> running_;
  std::uint64_t spawn_ordinal_ = 0;
  bool deadline_hit_ = false;
  ShardedSweepResult tally_;

  TelemetryMerger merger_;
  std::map<std::uint64_t, AttemptInfo> attempts_;
  std::vector<obs::InstantEvent> instants_;
  double last_ingest_s_ = 0.0;
  double last_status_s_ = 0.0;

  LeaseTable lease_;
  /// Serialises fork() with the monitor callback and guards
  /// `revocations_` (see file comment).
  std::mutex fork_mutex_;
  std::vector<LeaseRevocation> revocations_;
  const Clock::time_point start_;
};

void Coordinator::plan_shards() {
  const std::size_t parts =
      opts_.shards != 0 ? opts_.shards
                        : std::max<std::size_t>(1, 4 * opts_.workers);
  for (const IndexRange& range : slice_index_space(spec_.total, parts)) {
    ShardState state;
    state.range = range;
    shards_.push_back(std::move(state));
  }
  tally_.shards_total = shards_.size();
  tally_.configs_total = spec_.total;
}

/// Loads shard's result file if present and fingerprint-valid, marking
/// the shard complete. No reuse accounting — callers decide whether a
/// load counts as the first delivery or a recovery.
bool Coordinator::load_result(std::size_t shard) {
  ShardState& state = shards_[shard];
  if (state.complete) return true;
  const std::string path = shard_result_path(opts_.state_dir, shard);
  std::string why;
  std::optional<ShardResult> result =
      load_shard_result(path, signature_, state.range, &why);
  if (!result) {
    if (!why.empty()) {
      std::fprintf(stderr,
                   "warning: ignoring shard result %s (%s); recomputing "
                   "shard %zu from scratch\n",
                   path.c_str(), why.c_str(), shard);
    }
    return false;
  }
  state.complete = true;
  state.frontier = std::move(result->frontier);
  return true;
}

/// load_result plus recovery accounting: a result found on disk outside
/// the normal D-delivery path was salvaged, not computed this attempt.
bool Coordinator::try_reuse_result(std::size_t shard) {
  if (shards_[shard].complete || !load_result(shard)) {
    return shards_[shard].complete;
  }
  ++tally_.results_reused;
  HEC_COUNTER_INC("shard.results_reused");
  return true;
}

bool Coordinator::spawn(std::size_t shard) {
  ShardState& state = shards_[shard];
  HEC_FAILPOINT_HIT("shard.assign");

  // The assignment travels as its encoded protocol record — the A line
  // carries the slice, run id, and seed frontier the worker will prune
  // with, so wire format and behavior can never drift apart. The
  // attempt ordinal is provisional until the transport actually places
  // it (a socket transport with nobody idle places nothing).
  Message assign;
  assign.kind = MessageKind::kAssign;
  assign.shard = shard;
  assign.attempt = spawn_ordinal_ + 1;
  assign.first = state.range.first;
  assign.last = state.range.last;
  assign.run = run_id_;
  assign.seed = spec_.seed_frontier;

  std::unique_ptr<WorkerLink> link = transport_->assign(assign);
  if (!link) return false;
  const std::uint64_t attempt = ++spawn_ordinal_;
  const std::string who = link->describe();
  const pid_t pid = link->pid();

  running_.push_back({std::move(link), shard, attempt});
  ++state.attempts;
  lease_.grant(shard, attempt, state.range.first, now_s());
  ++tally_.spawns;
  HEC_COUNTER_INC("shard.spawns");
  AttemptInfo& info = attempts_[attempt];
  info.shard = shard;
  info.pid = pid;
  note("shard.spawn", "shard=" + std::to_string(shard) +
                          " attempt=" + std::to_string(attempt) + " worker=" +
                          who + " slice=" + describe(state.range));
  return true;
}

void Coordinator::spawn_eligible() {
  while (running_.size() < opts_.workers) {
    const double now = now_s();
    std::optional<std::size_t> pick;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const ShardState& s = shards_[i];
      if (s.complete || s.failed || s.eligible_at_s > now) continue;
      if (find_running(i, 0).has_value()) continue;  // already leased
      pick = i;
      break;
    }
    if (!pick) return;
    if (!spawn(*pick)) return;  // transport has no capacity right now
  }
}

std::optional<std::size_t> Coordinator::find_running(
    std::size_t shard, std::uint64_t attempt) const {
  for (std::size_t i = 0; i < running_.size(); ++i) {
    if (running_[i].shard == shard &&
        (attempt == 0 || running_[i].attempt == attempt)) {
      return i;
    }
  }
  return std::nullopt;
}

/// Schedules the next attempt of `shard` (or marks it failed when the
/// budget is gone). A result file committed by a dying worker that
/// never delivered its D line is discovered and reused here — the
/// at-least-once idempotence path.
void Coordinator::requeue(std::size_t shard, std::uint64_t attempt,
                          const char* cause, bool backoff) {
  ShardState& state = shards_[shard];
  if (try_reuse_result(shard)) return;
  // No reusable result: whatever the dead attempt counted will be
  // recounted by its successor (journal resume keeps the *frontier*
  // exact, but the successor's completion counter spans the whole
  // slice). Supersede the attempt so the merge never double-counts;
  // its spans stay in the trace, tagged.
  if (auto it = attempts_.find(attempt); it != attempts_.end()) {
    it->second.superseded = true;
  }
  merger_.mark_superseded(attempt);
  if (state.attempts > opts_.max_retries) {
    state.failed = true;
    note("shard.failed", "shard=" + std::to_string(shard) + " attempts=" +
                             std::to_string(state.attempts));
    std::fprintf(stderr,
                 "error: shard %zu (slice %s) exhausted its retry budget "
                 "(%zu attempts) %s; giving up\n",
                 shard, describe(state.range).c_str(), state.attempts,
                 cause);
    return;
  }
  // attempts-1 doublings of the base delay, capped; steals skip the
  // backoff entirely (the shard did nothing wrong, its worker did).
  const double delay =
      backoff ? std::min(opts_.retry_backoff_max_s,
                         opts_.retry_backoff_s *
                             static_cast<double>(
                                 std::uint64_t{1} << std::min<std::size_t>(
                                     state.attempts - 1, 32)))
              : 0.0;
  state.eligible_at_s = now_s() + delay;
}

void Coordinator::kill_all() {
  for (RunningWorker& worker : running_) {
    lease_.release(worker.shard, worker.attempt);
    worker.link->kill();
  }
  running_.clear();
}

void Coordinator::drain_revocations() {
  std::vector<LeaseRevocation> pending;
  {
    std::lock_guard lock(fork_mutex_);
    pending.swap(revocations_);
  }
  for (const LeaseRevocation& rev : pending) {
    const std::optional<std::size_t> idx = find_running(rev.shard, rev.attempt);
    if (!idx || !lease_.release(rev.shard, rev.attempt)) continue;
    const bool steal = rev.action == LeaseAction::kSteal;
    std::fprintf(stderr,
                 "warning: shard %zu attempt %llu %s for %.2fs; %s\n",
                 rev.shard, static_cast<unsigned long long>(rev.attempt),
                 steal ? "made no progress" : "sent no heartbeat", rev.idle_s,
                 steal ? "stealing the shard (journal keeps its progress)"
                       : "presuming the worker dead and requeueing");
    running_[*idx].link->kill();
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(*idx));
    if (steal) {
      ++tally_.steals;
      HEC_COUNTER_INC("shard.steals");
      note("shard.steal",
           "shard=" + std::to_string(rev.shard) + " attempt=" +
               std::to_string(rev.attempt) + " idle_s=" +
               std::to_string(rev.idle_s));
      requeue(rev.shard, rev.attempt, "stalling", /*backoff=*/false);
    } else {
      ++tally_.reassignments;
      HEC_COUNTER_INC("shard.reassignments");
      note("shard.reassign",
           "shard=" + std::to_string(rev.shard) + " attempt=" +
               std::to_string(rev.attempt) + " cause=heartbeat-timeout");
      requeue(rev.shard, rev.attempt, "losing heartbeats", /*backoff=*/true);
    }
  }
}

void Coordinator::handle_line(RunningWorker& worker, const Message& m) {
  // A message from a superseded attempt (a straggler racing its killer)
  // must never mutate shard state; the attempt check filters it.
  if (m.shard != worker.shard || m.attempt != worker.attempt) return;
  const double now = now_s();
  switch (m.kind) {
    case MessageKind::kProgress: {
      const std::optional<double> gap = lease_.heartbeat_gap_s(m.shard, now);
      if (lease_.heartbeat(m.shard, m.attempt, m.cursor, now)) {
        HEC_COUNTER_INC("shard.heartbeats");
        if (gap) HEC_HISTOGRAM_OBSERVE("shard.heartbeat_gap_s", *gap);
      }
      AttemptInfo& info = attempts_[m.attempt];
      if (!info.saw_cursor) {
        info.saw_cursor = true;
        info.first_cursor = m.cursor;
        info.first_seen_s = now;
        info.last_cursor = m.cursor;
        info.last_seen_s = now;
      } else if (m.cursor >= info.last_cursor) {
        // A reordered or stale heartbeat (pipe scheduling, socket
        // buffering) can arrive with a cursor behind what we already
        // recorded; rewinding would corrupt coverage and rate
        // accounting, so recorded progress is monotone per attempt.
        // (The lease table applies the same guard independently.)
        info.last_cursor = m.cursor;
        info.last_seen_s = now;
      }
      break;
    }
    case MessageKind::kResult: {
      // Socket transport's durable-result carrier: the worker committed
      // this frontier locally, then shipped it so a coordinator without
      // a shared filesystem can commit its own copy BEFORE the D that
      // follows — the same durability ordering as the local path. The D
      // handler then verifies the file like any other.
      if (shards_[m.shard].complete) break;
      try {
        write_shard_result(shard_result_path(opts_.state_dir, m.shard),
                           signature_, {shards_[m.shard].range, m.seed});
      } catch (const IoError& e) {
        std::fprintf(stderr,
                     "warning: cannot commit shipped result of shard %zu: "
                     "%s\n",
                     m.shard, e.what());
      }
      break;
    }
    case MessageKind::kDone: {
      lease_.release(m.shard, m.attempt);
      if (!load_result(m.shard)) {
        // D without a loadable result is a broken worker; retry (and
        // never hand this connection another assignment).
        worker.concluded = RunningWorker::Concluded::kQuarantine;
        ++tally_.retries;
        HEC_COUNTER_INC("shard.retries");
        note("shard.retry",
             "shard=" + std::to_string(m.shard) + " attempt=" +
                 std::to_string(m.attempt) + " cause=no-result");
        requeue(m.shard, m.attempt, "reporting done without a loadable result",
                /*backoff=*/true);
      } else {
        worker.concluded = RunningWorker::Concluded::kRecycle;
        if (m.has_stats) {
          // Best-effort evaluated/pruned accounting (see shard.h): only
          // attempts that completed their shard this run contribute.
          tally_.configs_evaluated += m.evaluated;
          tally_.configs_pruned += m.pruned;
          HEC_COUNTER_ADD("shard.configs_pruned",
                          static_cast<double>(m.pruned));
        }
        AttemptInfo& info = attempts_[m.attempt];
        info.completed = true;
        if (info.saw_cursor) {
          // Credit the slice tail, so a completed attempt's rate spans
          // its whole observed run rather than stopping at the last
          // heartbeat before the result commit.
          info.last_cursor = shards_[m.shard].range.first +
                             shards_[m.shard].range.size();
          info.last_seen_s = now;
        }
        note("shard.done", "shard=" + std::to_string(m.shard) +
                               " attempt=" + std::to_string(m.attempt));
      }
      break;
    }
    case MessageKind::kFailed: {
      lease_.release(m.shard, m.attempt);
      worker.concluded = RunningWorker::Concluded::kRecycle;
      std::fprintf(stderr, "warning: shard %zu attempt %llu failed: %s\n",
                   m.shard, static_cast<unsigned long long>(m.attempt),
                   m.detail.c_str());
      ++tally_.retries;
      HEC_COUNTER_INC("shard.retries");
      note("shard.retry", "shard=" + std::to_string(m.shard) + " attempt=" +
                              std::to_string(m.attempt) + " error=" + m.detail);
      requeue(m.shard, m.attempt, "failing", /*backoff=*/true);
      break;
    }
    case MessageKind::kAssign:
    case MessageKind::kHello:
    case MessageKind::kWelcome:
    case MessageKind::kPing:
    case MessageKind::kBye:
      break;  // not worker→coordinator report traffic; ignore
  }
}

void Coordinator::quarantine(std::size_t idx, const std::string& why) {
  RunningWorker& worker = running_[idx];
  std::fprintf(stderr,
               "warning: shard %zu attempt %llu sent garbage (%s); "
               "quarantining the connection and requeueing\n",
               worker.shard, static_cast<unsigned long long>(worker.attempt),
               why.c_str());
  HEC_COUNTER_INC("shard.net.frames_rejected");
  HEC_COUNTER_INC("shard.net.disconnects");
  worker.link->kill();
  if (!shards_[worker.shard].complete &&
      lease_.release(worker.shard, worker.attempt)) {
    ++tally_.reassignments;
    HEC_COUNTER_INC("shard.reassignments");
    note("shard.reassign",
         "shard=" + std::to_string(worker.shard) + " attempt=" +
             std::to_string(worker.attempt) + " cause=garbage");
    requeue(worker.shard, worker.attempt, "sending garbage",
            /*backoff=*/true);
  }
  running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void Coordinator::service_link(std::size_t idx) {
  RunningWorker& worker = running_[idx];
  const DrainResult drained = worker.link->drain();
  const bool socket = std::strcmp(worker.link->kind(), "socket") == 0;
  for (const std::string& line : drained.lines) {
    const std::optional<Message> m = parse(line);
    if (!m) {
      if (socket) {
        // A framed-but-malformed record past the handshake: the peer
        // is broken or lying. Quarantine — never parse-and-hope on the
        // same connection.
        quarantine(idx, "malformed record: " + line);
        return;
      }
      std::fprintf(stderr,
                   "warning: shard %zu attempt %llu sent a malformed "
                   "report (%s); treating the worker as failed\n",
                   worker.shard,
                   static_cast<unsigned long long>(worker.attempt),
                   line.c_str());
      continue;  // its exit (or lease expiry) triggers the requeue
    }
    handle_line(worker, *m);
  }
  if (drained.corrupt) {
    quarantine(idx, drained.why);
    return;
  }
  if (worker.concluded != RunningWorker::Concluded::kNo) {
    // The attempt reported D/F: release the link. A broken peer's link
    // (quarantine) is severed; a healthy one goes back to the transport
    // (socket: idle pool; pipe: reap the exited child).
    std::unique_ptr<WorkerLink> link = std::move(worker.link);
    const bool broken =
        worker.concluded == RunningWorker::Concluded::kQuarantine;
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(idx));
    if (broken) {
      if (socket) HEC_COUNTER_INC("shard.net.disconnects");
      link->kill();
    } else {
      transport_->recycle(std::move(link));
    }
    return;
  }
  if (drained.closed) {
    // Gone without a conclusion: dead-worker path — identical for a
    // SIGKILLed child and a dropped connection.
    const std::string how =
        worker.link->check_dead().value_or(drained.why.empty()
                                               ? "connection closed"
                                               : drained.why);
    worker.link->kill();
    if (!shards_[worker.shard].complete &&
        lease_.release(worker.shard, worker.attempt)) {
      std::fprintf(stderr,
                   "warning: shard %zu attempt %llu exited (%s) without "
                   "reporting; requeueing\n",
                   worker.shard,
                   static_cast<unsigned long long>(worker.attempt),
                   how.c_str());
      if (socket) HEC_COUNTER_INC("shard.net.disconnects");
      ++tally_.reassignments;
      HEC_COUNTER_INC("shard.reassignments");
      note("shard.reassign",
           "shard=" + std::to_string(worker.shard) + " attempt=" +
               std::to_string(worker.attempt) + " cause=exit");
      requeue(worker.shard, worker.attempt, "dying repeatedly",
              /*backoff=*/true);
    }
    running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(idx));
  }
}

void Coordinator::pump_links() {
  const bool capacity_appeared = transport_->pump(now_s());
  if (capacity_appeared) {
    // A connection was just welcomed into the idle pool: return to the
    // supervision loop without sleeping so the pending shard is
    // assigned now, not one tick later.
    return;
  }
  std::vector<pollfd> fds;
  fds.reserve(running_.size());
  for (const RunningWorker& worker : running_) {
    const int fd = worker.link->poll_fd();
    if (fd >= 0) fds.push_back({fd, POLLIN, 0});
  }
  if (fds.empty()) {
    // Nothing to listen to (no live links / backoff wait): sleep one
    // supervision tick instead of spinning.
    ::poll(nullptr, 0, 20);
    return;
  }
  const int ready = ::poll(fds.data(), fds.size(), 20);
  if (ready <= 0) return;
  for (const pollfd& p : fds) {
    if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    // Re-locate by fd each time: servicing may have erased entries.
    const std::optional<std::size_t> idx = [&]() -> std::optional<std::size_t> {
      for (std::size_t i = 0; i < running_.size(); ++i) {
        if (running_[i].link->poll_fd() == p.fd) return i;
      }
      return std::nullopt;
    }();
    if (!idx) continue;
    service_link(*idx);
  }
}

void Coordinator::note(const char* name, std::string detail) {
#ifndef HEC_OBS_DISABLE
  instants_.push_back({name, obs::tracer().now_us(), std::move(detail)});
#else
  (void)name;
  (void)detail;
#endif
}

void Coordinator::ingest_telemetry() {
  if (!telemetry_enabled()) return;
  for (const auto& [attempt, info] : attempts_) {
    (void)info;
    std::string why;
    if (merger_.ingest_file(shard_telemetry_path(opts_.state_dir, attempt),
                            &why)) {
      HEC_COUNTER_INC("shard.telemetry_ingests");
    } else if (!why.empty()) {
      HEC_COUNTER_INC("shard.telemetry_rejected");
      obs::log(2, "rejecting telemetry sidecar of attempt " +
                      std::to_string(attempt) + ": " + why);
    }
  }
}

std::size_t Coordinator::configs_covered() const {
  std::size_t covered = 0;
  for (const ShardState& s : shards_) {
    if (s.complete) covered += s.range.size();
  }
  // Live attempts on incomplete shards: the lease cursor is durable
  // progress (journaled), so count it even though the shard may still
  // die and resume.
  for (const RunningWorker& w : running_) {
    if (shards_[w.shard].complete) continue;
    const auto it = attempts_.find(w.attempt);
    if (it != attempts_.end() && it->second.saw_cursor &&
        it->second.last_cursor > shards_[w.shard].range.first) {
      covered += it->second.last_cursor - shards_[w.shard].range.first;
    }
  }
  return covered;
}

void Coordinator::write_status(bool final_pass) {
  using bench::json::Value;
  const double now = now_s();
  std::size_t complete = 0;
  std::size_t failed = 0;
  for (const ShardState& s : shards_) {
    if (s.complete) ++complete;
    if (s.failed) ++failed;
  }
  const bool all_done = complete == shards_.size();
  const std::size_t covered = all_done ? spec_.total : configs_covered();
  const double coverage_pct =
      all_done || spec_.total == 0
          ? 100.0
          : 100.0 * static_cast<double>(covered) /
                static_cast<double>(spec_.total);
  const double rate = now > 0.0 ? static_cast<double>(covered) / now : 0.0;
  const std::size_t frontier_size = [&] {
    if (final_pass) return tally_.frontier.size();
    std::vector<std::vector<TimeEnergyPoint>> partials;
    for (const ShardState& s : shards_) {
      if (s.complete) partials.push_back(s.frontier);
    }
    return merge_frontiers(partials).size();
  }();

  Value doc;
  doc["schema"] = "hec-sweep-status/v1";
  doc["run_id"] = std::to_string(run_id_);  // string: ids exceed 2^53
  doc["elapsed_s"] = now;
  doc["complete"] = all_done;
  doc["deadline_hit"] = deadline_hit_;
  doc["shards"]["total"] = shards_.size();
  doc["shards"]["complete"] = complete;
  doc["shards"]["failed"] = failed;
  doc["shards"]["running"] = running_.size();
  doc["configs"]["total"] = spec_.total;
  doc["configs"]["visited"] = covered;
  doc["coverage_pct"] = coverage_pct;
  doc["configs_per_s"] = rate;
  if (rate > 0.0 && covered < spec_.total) {
    doc["eta_s"] = static_cast<double>(spec_.total - covered) / rate;
  } else {
    doc["eta_s"] = Value();  // null: done, or no observed progress yet
  }
  doc["frontier_size"] = frontier_size;
  doc["spawns"] = tally_.spawns;
  doc["reassignments"] = tally_.reassignments;
  doc["steals"] = tally_.steals;
  doc["retries"] = tally_.retries;
  doc["results_reused"] = tally_.results_reused;
  doc["telemetry"]["records"] = merger_.records();
  doc["telemetry"]["rejected"] = merger_.rejected();
  doc["telemetry"]["superseded"] = merger_.superseded();

  Value::Array workers;
  for (const RunningWorker& w : running_) {
    const auto it = attempts_.find(w.attempt);
    if (it == attempts_.end()) continue;
    const AttemptInfo& info = it->second;
    Value entry;
    entry["attempt"] = w.attempt;
    entry["shard"] = w.shard;
    entry["pid"] = info.pid;
    entry["cursor"] =
        info.saw_cursor ? info.last_cursor : shards_[w.shard].range.first;
    entry["configs_per_s"] = info.configs_per_s();
    if (info.saw_cursor) {
      entry["heartbeat_age_s"] = now - info.last_seen_s;
    } else {
      entry["heartbeat_age_s"] = Value();  // spawned, nothing heard yet
    }
    workers.push_back(std::move(entry));
  }
  doc["workers"] = std::move(workers);

  // Every attempt ever spawned, not just the live ones: the final
  // document (live list empty) still carries the whole run's rates,
  // which is what the bench throughput-spread metric reads.
  Value::Array rates;
  for (const auto& [attempt, info] : attempts_) {
    Value entry;
    entry["attempt"] = attempt;
    entry["shard"] = info.shard;
    entry["configs_per_s"] = info.configs_per_s();
    entry["completed"] = info.completed;
    entry["superseded"] = info.superseded;
    rates.push_back(std::move(entry));
  }
  doc["worker_rates"] = std::move(rates);

  try {
    util::atomic_write_file(opts_.status_path, doc.dump(true) + "\n");
  } catch (const IoError& e) {
    // Status is best-effort: a bad path must not kill a healthy sweep.
    obs::log(2, std::string("status write failed: ") + e.what());
  }

  // The opt-in progress line (visible at --log-level info and up). The
  // "sharded sweep:" prefix is the contract output-comparison scripts
  // filter on.
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "sharded sweep: %5.1f%% (%zu/%zu configs) | %.0f configs/s | "
                "eta %.1fs | workers %zu | retries %zu steals %zu | "
                "frontier %zu",
                coverage_pct, covered, spec_.total, rate,
                rate > 0.0 && covered < spec_.total
                    ? static_cast<double>(spec_.total - covered) / rate
                    : 0.0,
                running_.size(), tally_.retries, tally_.steals, frontier_size);
  std::string line(buf);
  for (const RunningWorker& w : running_) {
    const auto it = attempts_.find(w.attempt);
    if (it == attempts_.end()) continue;
    char rate_buf[64];
    std::snprintf(rate_buf, sizeof(rate_buf), " a%llu=%.0f/s",
                  static_cast<unsigned long long>(w.attempt),
                  it->second.configs_per_s());
    line += rate_buf;
  }
  obs::log(1, line);
}

void Coordinator::observe(bool final_pass) {
  const double now = now_s();
  // Sidecar ingest is decoupled from the status cadence: merged
  // counters matter even when no status file was requested (a
  // --metrics-out dump at the end must see every flushed delta).
  constexpr double kIngestInterval = 0.5;
  if (telemetry_enabled() &&
      (final_pass || now - last_ingest_s_ >= kIngestInterval)) {
    last_ingest_s_ = now;
    ingest_telemetry();
  }
  if (!opts_.status_path.empty() &&
      (final_pass || now - last_status_s_ >= opts_.status_interval_s)) {
    last_status_s_ = now;
    write_status(final_pass);
  }
}

bool Coordinator::work_remains() const {
  if (!running_.empty()) return true;
  for (const ShardState& s : shards_) {
    if (!s.complete && !s.failed) return true;
  }
  return false;
}

ShardedSweepResult Coordinator::finish() {
  HEC_SPAN("shard.merge");
  std::vector<std::vector<TimeEnergyPoint>> partials;
  partials.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardState& state = shards_[i];
    if (!state.complete) {
      if (state.failed) tally_.failed_shards.push_back(i);
      continue;
    }
    HEC_FAILPOINT_HIT("shard.merge");
    ++tally_.shards_complete;
    tally_.configs_visited += state.range.size();
    partials.push_back(std::move(state.frontier));
  }
  tally_.frontier = merge_frontiers(partials);
  tally_.complete = tally_.shards_complete == tally_.shards_total;
  tally_.deadline_hit = deadline_hit_;
  tally_.run_id = run_id_;
  if (telemetry_enabled()) {
    // The last ingest pass sees every final flush (workers final-flush
    // before their result commit, and all workers are reaped by now),
    // then the non-superseded deltas fold into the coordinator registry
    // so one --metrics-out dump covers the whole fleet.
    ingest_telemetry();
    merger_.apply(obs::registry());
    tally_.trace = merger_.build_trace(std::move(instants_));
  }
  for (const auto& [attempt, info] : attempts_) {
    tally_.worker_rates.push_back({attempt, info.shard, info.configs_per_s(),
                                   info.completed, info.superseded});
  }
  HEC_GAUGE_SET("shard.shards_complete",
                static_cast<double>(tally_.shards_complete));
  HEC_GAUGE_SET("shard.configs_visited",
                static_cast<double>(tally_.configs_visited));
  HEC_GAUGE_SET("sweep.frontier_size",
                static_cast<double>(tally_.frontier.size()));
  if (!opts_.status_path.empty()) write_status(/*final_pass=*/true);
  return std::move(tally_);
}

void Coordinator::make_transport() {
  if (!opts_.listen.empty() || opts_.listener != nullptr) {
    SocketTransportConfig config;
    config.run_id = run_id_;
    config.space_fp = space_fingerprint(spec_);
    config.net_timeout_s = opts_.net_timeout_s;
    if (opts_.listener != nullptr) {
      config.listener = opts_.listener;
    } else {
      config.owned = std::make_unique<Listener>(util::parse_endpoint(
          opts_.listen, "listen endpoint", /*allow_port_zero=*/true));
      std::fprintf(stderr, "sharded sweep: listening on %s (run %llu)\n",
                   config.owned->describe().c_str(),
                   static_cast<unsigned long long>(run_id_));
    }
    transport_ = make_socket_transport(std::move(config));
  } else {
    transport_ = make_fork_pipe_transport(spec_, opts_, fork_mutex_);
  }
}

ShardedSweepResult Coordinator::run() {
  HEC_SPAN("shard.coordinator");
  // See SigPipeGuard: worker links are written to from this process.
  SigPipeGuard sigpipe_guard;
  make_state_dir(opts_.state_dir);
  make_transport();
  plan_shards();
  for (std::size_t i = 0; i < shards_.size(); ++i) try_reuse_result(i);

  // The monitor: scans leases, queues revocations. It shares
  // fork_mutex_ with spawn() so fork() never interleaves with it.
  const double scan_interval = std::clamp(
      std::min(opts_.heartbeat_timeout_s, opts_.progress_timeout_s) / 4.0,
      0.01, 1.0);
  PeriodicTask monitor(scan_interval, [this] {
    std::lock_guard lock(fork_mutex_);
    std::vector<LeaseRevocation> expired = lease_.expired(now_s());
    revocations_.insert(revocations_.end(), expired.begin(), expired.end());
  });

  try {
    while (work_remains()) {
      if (now_s() >= opts_.deadline_s) {
        deadline_hit_ = true;
        note("shard.deadline",
             "deadline_s=" + std::to_string(opts_.deadline_s) +
                 " outstanding=" + std::to_string(running_.size()));
        std::fprintf(stderr,
                     "warning: global deadline (%.3fs) reached with %zu "
                     "worker(s) outstanding; emitting the partial frontier\n",
                     opts_.deadline_s, running_.size());
        kill_all();
        break;
      }
      drain_revocations();
      spawn_eligible();
      pump_links();
      observe(/*final_pass=*/false);
    }
  } catch (...) {
    // Whatever went wrong, never leak live children, connections or
    // the monitor.
    monitor.stop();
    kill_all();
    transport_->shutdown();
    throw;
  }
  monitor.stop();
  kill_all();
  // Socket transport: tell idle workers the run is over (B line) and
  // close the listener so redialing workers see ECONNREFUSED.
  transport_->shutdown();
  return finish();
}

}  // namespace

std::string shard_journal_path(const std::string& state_dir, std::size_t id) {
  return state_dir + "/shard-" + std::to_string(id) + ".journal";
}

std::string shard_result_path(const std::string& state_dir, std::size_t id) {
  return state_dir + "/shard-" + std::to_string(id) + ".result";
}

ShardedSweepResult run_sharded(const ShardedSweepSpec& spec,
                               const ShardedSweepOptions& opts) {
  if (opts.workers == 0) {
    throw std::invalid_argument("sharded sweep needs at least one worker");
  }
  if (!spec.body) {
    throw std::invalid_argument("sharded sweep needs a sweep body");
  }
  if (spec.claim == 0) {
    throw std::invalid_argument("sharded sweep claim must be positive");
  }
  if (opts.state_dir.empty()) {
    throw std::invalid_argument(
        "sharded sweep needs a state_dir for journals and results");
  }
  Coordinator coordinator(spec, opts);
  return coordinator.run();
}

ShardedSweepResult sharded_sweep_frontier(const NodeTypeModel& arm_model,
                                          const NodeTypeModel& amd_model,
                                          const EnumerationLimits& limits,
                                          double work_units,
                                          const ShardedSweepOptions& opts) {
  HEC_SPAN("shard.sweep_frontier");
  // Characterize once, fork many: the memo tables, bound table and SoA
  // batches are all built before any worker exists and shared
  // copy-on-write with all of them.
  const MemoizedConfigEvaluator memo(arm_model, amd_model, limits);
  TwoTypeSweepKernel::Options kopts;
  kopts.prune = opts.prune;
  kopts.simd = opts.simd;
  kopts.chunk = opts.prune_chunk;
  const TwoTypeSweepKernel kernel(memo, work_units, kopts);
  ShardedSweepSpec spec;
  spec.signature = memo.layout().describe();
  spec.total = memo.size();
  spec.work_units = work_units;
  // Global incumbents ride every A line, so each shard prunes against
  // the same bound no matter which worker runs it or when.
  spec.seed_frontier = kernel.incumbents();
  spec.body = [&kernel](std::size_t first, std::size_t count,
                        ParetoAccumulator& acc) {
    kernel.consume(first, count, acc);
  };
  spec.body_stats = [&kernel] {
    const KernelStats s = kernel.stats();
    return std::pair<std::size_t, std::size_t>(s.evaluated, s.pruned);
  };
  return run_sharded(spec, opts);
}

}  // namespace hec::shard
