#include "hec/shard/result_file.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "hec/bench/json.h"
#include "hec/resilience/journal.h"
#include "hec/util/atomic_file.h"

namespace hec::shard {

namespace json = hec::bench::json;

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

json::Value result_payload(const std::string& signature,
                           const ShardResult& result) {
  json::Value payload;
  payload["space"] = signature;
  payload["first"] = static_cast<double>(result.range.first);
  payload["last"] = static_cast<double>(result.range.last);
  json::Value::Array frontier;
  frontier.reserve(result.frontier.size());
  for (const TimeEnergyPoint& p : result.frontier) {
    json::Value::Array point;
    point.emplace_back(p.t_s);
    point.emplace_back(p.energy_j);
    point.emplace_back(static_cast<double>(p.tag));
    frontier.emplace_back(std::move(point));
  }
  payload["frontier"] = json::Value(std::move(frontier));
  return payload;
}

}  // namespace

void write_shard_result(const std::string& path, const std::string& signature,
                        const ShardResult& result) {
  const json::Value payload = result_payload(signature, result);
  const std::string payload_text = payload.dump(/*pretty=*/false);
  std::ostringstream out;
  out << "{\"schema\":\"" << kResultSchema << "\",\"result\":" << payload_text
      << ",\"crc64\":\"" << hex64(resilience::fnv1a64(payload_text))
      << "\"}\n";
  util::atomic_write_file(path, out.str());
}

std::optional<ShardResult> load_shard_result(const std::string& path,
                                             const std::string& signature,
                                             const IndexRange& range,
                                             std::string* why) {
  const auto reject = [&](std::string reason) -> std::optional<ShardResult> {
    if (why != nullptr) *why = std::move(reason);
    return std::nullopt;
  };
  std::ifstream in(path);
  if (!in) return std::nullopt;  // absent is the common case, not an error
  std::stringstream buffer;
  buffer << in.rdbuf();

  std::string error;
  const auto doc = json::Value::parse(buffer.str(), &error);
  if (!doc) return reject("unparseable result file: " + error);
  if (doc->operator[]("schema").as_string() != kResultSchema) {
    return reject("unknown schema '" +
                  doc->operator[]("schema").as_string() + "'");
  }
  const json::Value& payload = doc->operator[]("result");
  if (!payload.is_object()) return reject("result is not an object");
  const std::string want_crc = doc->operator[]("crc64").as_string();
  const std::string got_crc =
      hex64(resilience::fnv1a64(payload.dump(/*pretty=*/false)));
  if (want_crc != got_crc) {
    return reject("CRC mismatch (want " + want_crc + ", got " + got_crc + ")");
  }
  if (payload["space"].as_string() != signature) {
    return reject("result is for space '" + payload["space"].as_string() +
                  "', this sweep is '" + signature + "'");
  }
  ShardResult result;
  result.range.first = static_cast<std::size_t>(payload["first"].as_number());
  result.range.last = static_cast<std::size_t>(payload["last"].as_number());
  if (result.range != range) {
    return reject("result covers slice " + describe(result.range) +
                  ", expected " + describe(range));
  }
  double prev_t = -1.0;
  for (const json::Value& pv : payload["frontier"].as_array()) {
    const json::Value::Array& triple = pv.as_array();
    if (triple.size() != 3) return reject("frontier point is not [t,e,tag]");
    TimeEnergyPoint p;
    p.t_s = triple[0].as_number();
    p.energy_j = triple[1].as_number();
    p.tag = static_cast<std::size_t>(triple[2].as_number());
    if (p.t_s <= prev_t) return reject("frontier not strictly sorted");
    prev_t = p.t_s;
    result.frontier.push_back(p);
  }
  return result;
}

}  // namespace hec::shard
