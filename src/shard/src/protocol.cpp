#include "hec/shard/protocol.h"

#include <charconv>
#include <string_view>

namespace hec::shard {

namespace {

/// Consumes one space-delimited token from `rest`. Empty on exhaustion.
std::string_view next_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  std::size_t end = rest.find(' ');
  if (end == std::string_view::npos) end = rest.size();
  const std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end);
  return token;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

}  // namespace

std::string encode(const Message& m) {
  std::string line;
  switch (m.kind) {
    case MessageKind::kAssign:
      line = "A " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt) +
             ' ' + std::to_string(m.first) + ' ' + std::to_string(m.last) +
             ' ' + std::to_string(m.run);
      break;
    case MessageKind::kProgress:
      line = "R " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt) +
             ' ' + std::to_string(m.cursor);
      break;
    case MessageKind::kDone:
      line = "D " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt);
      break;
    case MessageKind::kFailed:
      line = "F " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt);
      if (!m.detail.empty()) {
        line += ' ';
        // The detail is free text from an exception; newlines would break
        // the line framing, so flatten them.
        for (const char c : m.detail) line += c == '\n' ? ' ' : c;
      }
      break;
  }
  line += '\n';
  return line;
}

std::optional<Message> parse(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::string_view rest = line;
  const std::string_view tag = next_token(rest);
  if (tag.size() != 1) return std::nullopt;

  Message m;
  switch (tag.front()) {
    case 'A': {
      m.kind = MessageKind::kAssign;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt) ||
          !parse_number(next_token(rest), m.first) ||
          !parse_number(next_token(rest), m.last) ||
          !parse_number(next_token(rest), m.run)) {
        return std::nullopt;
      }
      break;
    }
    case 'R': {
      m.kind = MessageKind::kProgress;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt) ||
          !parse_number(next_token(rest), m.cursor)) {
        return std::nullopt;
      }
      break;
    }
    case 'D': {
      m.kind = MessageKind::kDone;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt)) {
        return std::nullopt;
      }
      break;
    }
    case 'F': {
      m.kind = MessageKind::kFailed;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt)) {
        return std::nullopt;
      }
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      m.detail = std::string(rest);
      rest = {};
      break;
    }
    default:
      return std::nullopt;
  }
  // Trailing garbage after a well-formed record is a framing bug.
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (!rest.empty()) return std::nullopt;
  return m;
}

void LineBuffer::feed(std::string_view bytes) {
  for (const char c : bytes) {
    if (c == '\n') {
      lines_.push_back(std::move(partial_));
      partial_.clear();
    } else {
      partial_ += c;
    }
  }
}

std::vector<std::string> LineBuffer::take() {
  std::vector<std::string> out;
  out.swap(lines_);
  return out;
}

}  // namespace hec::shard
