#include "hec/shard/protocol.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace hec::shard {

namespace {

/// Consumes one space-delimited token from `rest`. Empty on exhaustion.
std::string_view next_token(std::string_view& rest) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  std::size_t end = rest.find(' ');
  if (end == std::string_view::npos) end = rest.size();
  const std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end);
  return token;
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return ec == std::errc{} && ptr == token.data() + token.size();
}

/// Parses a %a-rendered double, bit-exact. from_chars would also do, but
/// strtod's hex-float support is universal; the token must be consumed
/// in full. Non-finite values are rejected: no sweep ever produces a
/// NaN/inf time or energy, so one on the wire is a corrupt or hostile
/// peer — and a NaN seed point would poison every Pareto dominance
/// comparison it touches.
bool parse_hex_double(std::string_view token, double& out) {
  const std::string text(token);  // strtod needs NUL termination
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size() && !text.empty() &&
         std::isfinite(out);
}

/// One seed point as a colon-joined t:e:tag token (%a floats).
std::string encode_seed_point(const TimeEnergyPoint& p) {
  char buf[80];
  std::snprintf(buf, sizeof buf, "%a:%a:%zu", p.t_s, p.energy_j, p.tag);
  return buf;
}

bool parse_seed_point(std::string_view token, TimeEnergyPoint& p) {
  const std::size_t c1 = token.find(':');
  if (c1 == std::string_view::npos) return false;
  const std::size_t c2 = token.find(':', c1 + 1);
  if (c2 == std::string_view::npos) return false;
  return parse_hex_double(token.substr(0, c1), p.t_s) &&
         parse_hex_double(token.substr(c1 + 1, c2 - c1 - 1), p.energy_j) &&
         parse_number(token.substr(c2 + 1), p.tag);
}

/// Parses "<n> <t:e:tag>×n" from `rest` into `out`. The count is
/// validated against both kMaxWireFrontier and the bytes actually
/// present (each point needs at least "x:y:z " — 6 bytes), so a peer
/// claiming a huge count cannot make us allocate it.
bool parse_point_list(std::string_view& rest,
                      std::vector<TimeEnergyPoint>& out) {
  std::size_t n = 0;
  if (!parse_number(next_token(rest), n)) return false;
  if (n > kMaxWireFrontier || n > rest.size() / 2 + 1) return false;
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!parse_seed_point(next_token(rest), out[i])) return false;
  }
  return true;
}

std::string encode_point_list(const std::vector<TimeEnergyPoint>& points) {
  std::string text = std::to_string(points.size());
  for (const TimeEnergyPoint& p : points) {
    text += ' ' + encode_seed_point(p);
  }
  return text;
}

}  // namespace

std::string encode(const Message& m) {
  std::string line;
  switch (m.kind) {
    case MessageKind::kAssign:
      line = "A " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt) +
             ' ' + std::to_string(m.first) + ' ' + std::to_string(m.last) +
             ' ' + std::to_string(m.run);
      if (!m.seed.empty()) {
        line += ' ' + std::to_string(m.seed.size());
        for (const TimeEnergyPoint& p : m.seed) {
          line += ' ' + encode_seed_point(p);
        }
      }
      break;
    case MessageKind::kProgress:
      line = "R " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt) +
             ' ' + std::to_string(m.cursor);
      break;
    case MessageKind::kDone:
      line = "D " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt);
      if (m.has_stats) {
        line += ' ' + std::to_string(m.evaluated) + ' ' +
                std::to_string(m.pruned);
      }
      break;
    case MessageKind::kFailed:
      line = "F " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt);
      if (!m.detail.empty()) {
        line += ' ';
        // The detail is free text from an exception; newlines would break
        // the line framing, so flatten them.
        for (const char c : m.detail) line += c == '\n' ? ' ' : c;
      }
      break;
    case MessageKind::kHello:
      line = "H " + std::to_string(m.space) + ' ' + std::to_string(m.run);
      break;
    case MessageKind::kWelcome:
      line = "W " + std::to_string(m.run);
      break;
    case MessageKind::kResult:
      line = "P " + std::to_string(m.shard) + ' ' + std::to_string(m.attempt) +
             ' ' + encode_point_list(m.seed);
      break;
    case MessageKind::kPing:
      line = "N";
      break;
    case MessageKind::kBye:
      line = "B";
      break;
  }
  line += '\n';
  return line;
}

std::optional<Message> parse(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  std::string_view rest = line;
  const std::string_view tag = next_token(rest);
  if (tag.size() != 1) return std::nullopt;

  Message m;
  switch (tag.front()) {
    case 'A': {
      m.kind = MessageKind::kAssign;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt) ||
          !parse_number(next_token(rest), m.first) ||
          !parse_number(next_token(rest), m.last) ||
          !parse_number(next_token(rest), m.run)) {
        return std::nullopt;
      }
      // Optional seed block: <n> then exactly n t:e:tag triples. The v1
      // short form (no tail) parses as an empty seed.
      std::string_view lookahead = rest;
      if (!next_token(lookahead).empty()) {
        if (!parse_point_list(rest, m.seed)) return std::nullopt;
      }
      break;
    }
    case 'R': {
      m.kind = MessageKind::kProgress;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt) ||
          !parse_number(next_token(rest), m.cursor)) {
        return std::nullopt;
      }
      break;
    }
    case 'D': {
      m.kind = MessageKind::kDone;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt)) {
        return std::nullopt;
      }
      // Optional stats tail: <evaluated> <pruned>, both or neither (the
      // v1 short form).
      std::string_view lookahead = rest;
      const std::string_view eval_token = next_token(lookahead);
      if (!eval_token.empty()) {
        if (!parse_number(eval_token, m.evaluated) ||
            !parse_number(next_token(lookahead), m.pruned)) {
          return std::nullopt;
        }
        m.has_stats = true;
        rest = lookahead;
      }
      break;
    }
    case 'F': {
      m.kind = MessageKind::kFailed;
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt)) {
        return std::nullopt;
      }
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      m.detail = std::string(rest);
      rest = {};
      break;
    }
    case 'H': {
      m.kind = MessageKind::kHello;
      if (!parse_number(next_token(rest), m.space) ||
          !parse_number(next_token(rest), m.run)) {
        return std::nullopt;
      }
      break;
    }
    case 'W': {
      m.kind = MessageKind::kWelcome;
      if (!parse_number(next_token(rest), m.run)) return std::nullopt;
      break;
    }
    case 'P': {
      m.kind = MessageKind::kResult;
      // The count is mandatory here (unlike the A tail): a result
      // payload with zero points is "P s a 0", never a short form, so a
      // truncated line can't silently parse as an empty frontier.
      if (!parse_number(next_token(rest), m.shard) ||
          !parse_number(next_token(rest), m.attempt) ||
          !parse_point_list(rest, m.seed)) {
        return std::nullopt;
      }
      break;
    }
    case 'N':
      m.kind = MessageKind::kPing;
      break;
    case 'B':
      m.kind = MessageKind::kBye;
      break;
    default:
      return std::nullopt;
  }
  // Trailing garbage after a well-formed record is a framing bug.
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (!rest.empty()) return std::nullopt;
  return m;
}

void LineBuffer::feed(std::string_view bytes) {
  for (const char c : bytes) {
    if (c == '\n') {
      lines_.push_back(std::move(partial_));
      partial_.clear();
    } else {
      partial_ += c;
    }
  }
}

std::vector<std::string> LineBuffer::take() {
  std::vector<std::string> out;
  out.swap(lines_);
  return out;
}

}  // namespace hec::shard
