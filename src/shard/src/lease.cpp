#include "hec/shard/lease.h"

namespace hec::shard {

LeaseTable::LeaseTable(double heartbeat_timeout_s, double progress_timeout_s)
    : heartbeat_timeout_s_(heartbeat_timeout_s),
      progress_timeout_s_(progress_timeout_s) {}

void LeaseTable::grant(std::size_t shard, std::uint64_t attempt,
                       std::size_t cursor, double now_s) {
  std::lock_guard lock(mutex_);
  leases_[shard] = Lease{attempt, cursor, now_s, now_s};
}

bool LeaseTable::heartbeat(std::size_t shard, std::uint64_t attempt,
                           std::size_t cursor, double now_s) {
  std::lock_guard lock(mutex_);
  const auto it = leases_.find(shard);
  if (it == leases_.end() || it->second.attempt != attempt) return false;
  it->second.last_heartbeat_s = now_s;
  if (cursor > it->second.cursor) {
    it->second.cursor = cursor;
    it->second.last_progress_s = now_s;
  }
  return true;
}

std::optional<double> LeaseTable::heartbeat_gap_s(std::size_t shard,
                                                  double now_s) const {
  std::lock_guard lock(mutex_);
  const auto it = leases_.find(shard);
  if (it == leases_.end()) return std::nullopt;
  return now_s - it->second.last_heartbeat_s;
}

bool LeaseTable::release(std::size_t shard, std::uint64_t attempt) {
  std::lock_guard lock(mutex_);
  const auto it = leases_.find(shard);
  if (it == leases_.end() || it->second.attempt != attempt) return false;
  leases_.erase(it);
  return true;
}

std::vector<LeaseRevocation> LeaseTable::expired(double now_s) const {
  std::lock_guard lock(mutex_);
  std::vector<LeaseRevocation> out;
  for (const auto& [shard, lease] : leases_) {
    const double heartbeat_gap = now_s - lease.last_heartbeat_s;
    const double progress_gap = now_s - lease.last_progress_s;
    // Heartbeat silence wins when both trip: a dead worker trivially
    // also stops progressing, and "reassign" is the right label for it.
    if (heartbeat_gap >= heartbeat_timeout_s_) {
      out.push_back(
          {shard, lease.attempt, LeaseAction::kReassign, heartbeat_gap});
    } else if (progress_gap >= progress_timeout_s_) {
      out.push_back({shard, lease.attempt, LeaseAction::kSteal, progress_gap});
    }
  }
  return out;
}

std::size_t LeaseTable::active() const {
  std::lock_guard lock(mutex_);
  return leases_.size();
}

}  // namespace hec::shard
