// Transport implementations for sharded sweeps: the fork+pipe path
// extracted from the coordinator, and the supervised-socket path. See
// hec/shard/transport.h for the contract and the fault-injection sites.
#include "hec/shard/transport.h"

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <string_view>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "hec/obs/obs.h"
#include "hec/resilience/journal.h"
#include "hec/util/atomic_file.h"
#include "hec/util/failpoint.h"
#include "internal.h"

namespace hec::shard {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// The protocol is small request/response lines (an A answered by Rs
/// and a D), so Nagle batching buys nothing and its interaction with
/// delayed ACK costs ~40ms per exchange — dwarfing the sweep itself on
/// short shards. Disable it on every protocol socket, both ends.
void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

int timeout_ms(double seconds) {
  if (seconds <= 0.0) return 0;
  const double ms = seconds * 1000.0;
  return ms > 3600.0 * 1000.0 ? 3600 * 1000 : static_cast<int>(ms) + 1;
}

}  // namespace

// ---------------------------------------------------------------------------
// Frame codec.

std::uint32_t frame_crc(std::string_view payload) {
  std::uint32_t h = 2166136261u;
  for (const char c : payload) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

std::string frame_line(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  char head[32];
  std::snprintf(head, sizeof head, "#%zx:%08x ", line.size(),
                frame_crc(line));
  std::string frame(head);
  frame.append(line);
  frame += '\n';
  return frame;
}

std::optional<std::string> unframe_line(std::string_view frame,
                                        std::string* why) {
  const auto fail = [&](const char* what) -> std::optional<std::string> {
    if (why != nullptr) *why = what;
    return std::nullopt;
  };
  while (!frame.empty() && (frame.back() == '\n' || frame.back() == '\r')) {
    frame.remove_suffix(1);
  }
  if (frame.empty()) return fail("empty frame");
  if (frame.front() != '#') return fail("missing frame marker");
  frame.remove_prefix(1);
  const std::size_t colon = frame.find(':');
  if (colon == std::string_view::npos) return fail("missing length field");
  std::size_t length = 0;
  {
    const char* begin = frame.data();
    const auto [ptr, ec] = std::from_chars(begin, begin + colon, length, 16);
    if (ec != std::errc{} || ptr != begin + colon || colon == 0) {
      return fail("unparseable frame length");
    }
  }
  if (length > kMaxFramePayload) return fail("oversized frame");
  frame.remove_prefix(colon + 1);
  const std::size_t space = frame.find(' ');
  if (space == std::string_view::npos) return fail("missing CRC field");
  std::uint32_t crc = 0;
  {
    const char* begin = frame.data();
    const auto [ptr, ec] = std::from_chars(begin, begin + space, crc, 16);
    if (ec != std::errc{} || ptr != begin + space || space == 0) {
      return fail("unparseable frame CRC");
    }
  }
  frame.remove_prefix(space + 1);
  if (frame.size() != length) return fail("frame length mismatch");
  if (frame_crc(frame) != crc) return fail("frame CRC mismatch");
  return std::string(frame);
}

std::uint64_t space_fingerprint(const ShardedSweepSpec& spec) {
  // Deliberately NOT internal::sweep_signature: the seed frontier is
  // per-assignment state (it rides the A line), so two peers agree on
  // the space even before either has seen an assignment.
  return resilience::fnv1a64(spec.signature + " total=" +
                             std::to_string(spec.total) + " work_units=" +
                             std::to_string(spec.work_units));
}

// ---------------------------------------------------------------------------
// Socket link (both sides of the wire use the same one).

namespace {

class SocketLink final : public WorkerLink {
 public:
  SocketLink(int fd, std::string peer, double io_timeout_s)
      : fd_(fd), peer_(std::move(peer)), io_timeout_s_(io_timeout_s) {
    set_nonblocking(fd_);
  }
  ~SocketLink() override { close_fd(); }

  const char* kind() const override { return "socket"; }
  int poll_fd() const override { return fd_; }

  bool send(const Message& m) override {
    if (fd_ < 0) return false;
    if (blackholed_) return true;  // partitioned: the bytes go nowhere
    try {
      HEC_FAILPOINT_HIT("net.write");
    } catch (const util::InjectedFault&) {
      close_fd();
      return false;
    }
    std::string frame = frame_line(encode(m));
    try {
      HEC_FAILPOINT_HIT("net.frame.corrupt");
    } catch (const util::InjectedFault&) {
      // Flip one payload bit. ^1 keeps the byte printable (never a
      // newline), so the peer sees exactly one intact-but-lying frame.
      frame[frame.size() / 2] ^= 0x01;
    }
    return send_raw(frame);
  }

  DrainResult drain() override {
    DrainResult r;
    if (fd_ < 0) {
      r.closed = true;
      r.why = "connection closed";
      return r;
    }
    try {
      HEC_FAILPOINT_HIT("net.read");
    } catch (const util::InjectedFault&) {
      close_fd();
      r.closed = true;
      r.why = "injected read fault";
      return r;
    }
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
      if (got > 0) {
        if (!blackholed_) buf_.feed({chunk, static_cast<std::size_t>(got)});
        // A peer streaming frames faster than we parse them is bounded
        // by its own send window; still, cap one drain pass.
        if (buf_.pending() > kMaxFramePayload + 64) {
          close_fd();
          r.corrupt = true;
          r.why = "unterminated oversized frame";
          return r;
        }
        continue;
      }
      if (got == 0) {
        close_fd();
        r.closed = true;
        r.why = "connection closed";
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      r.why = std::strerror(errno);
      close_fd();
      r.closed = true;
      break;
    }
    for (std::string& line : buf_.take()) {
      std::string why;
      std::optional<std::string> payload = unframe_line(line, &why);
      if (!payload) {
        // One bad frame poisons the connection; drop everything after
        // it — the caller quarantines and the shard is requeued.
        r.corrupt = true;
        r.why = why;
        break;
      }
      r.lines.push_back(std::move(*payload));
    }
    return r;
  }

  std::optional<std::string> check_dead() override {
    if (fd_ < 0) return std::string("connection closed");
    return std::nullopt;
  }

  void kill() override { close_fd(); }

  std::string describe() const override { return "socket " + peer_; }

  /// Simulated partition: writes pretend to succeed, reads are
  /// discarded. Neither side sees a FIN — recovery is the lease expiry
  /// here and the idle-read timeout on the worker side.
  void blackhole() { blackholed_ = true; }

 private:
  bool send_raw(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t put = ::send(fd_, bytes.data() + off, bytes.size() - off,
                                 MSG_NOSIGNAL);
      if (put > 0) {
        off += static_cast<std::size_t>(put);
        continue;
      }
      if (put < 0 && errno == EINTR) continue;
      if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd p{fd_, POLLOUT, 0};
        if (::poll(&p, 1, timeout_ms(io_timeout_s_)) > 0) continue;
        // Send buffer full past the budget: the peer is wedged or the
        // network is gone. Closing keeps the supervision loop moving.
        close_fd();
        return false;
      }
      close_fd();  // EPIPE/ECONNRESET and friends: peer is gone
      return false;
    }
    return true;
  }

  void close_fd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd_;
  std::string peer_;
  double io_timeout_s_;
  bool blackholed_ = false;
  LineBuffer buf_;
};

// ---------------------------------------------------------------------------
// Fork+pipe transport (extracted from the original coordinator spawn).

class PipeLink final : public WorkerLink {
 public:
  PipeLink(pid_t pid, int fd, std::function<void(int)> forget_fd)
      : pid_(pid), fd_(fd), forget_fd_(std::move(forget_fd)) {}
  ~PipeLink() override { kill(); }

  const char* kind() const override { return "pipe"; }
  int poll_fd() const override { return fd_; }
  pid_t pid() const override { return pid_; }

  bool send(const Message&) override {
    // The assignment rode the fork; the pipe is worker→coordinator only.
    return true;
  }

  DrainResult drain() override {
    DrainResult r;
    if (fd_ < 0) {
      r.closed = true;
      return r;
    }
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::read(fd_, chunk, sizeof chunk);
      if (got > 0) {
        buf_.feed({chunk, static_cast<std::size_t>(got)});
        continue;
      }
      if (got < 0 && errno == EINTR) continue;
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF (or a read error, treated the same): the child exited — its
      // only copy of the write end closed with it.
      close_fd();
      r.closed = true;
      break;
    }
    r.lines = buf_.take();
    return r;
  }

  std::optional<std::string> check_dead() override {
    if (pid_ < 0) return how_;
    int status = 0;
    const pid_t got = ::waitpid(pid_, &status, WNOHANG);
    if (got == 0) return std::nullopt;
    pid_ = -1;
    how_ = WIFSIGNALED(status)
               ? "signal " + std::to_string(WTERMSIG(status))
               : "status " + std::to_string(
                                 WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    return how_;
  }

  void kill() override {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      pid_ = -1;
    }
    close_fd();
  }

  std::string describe() const override {
    return "pid " + std::to_string(pid_);
  }

 private:
  void close_fd() {
    if (fd_ >= 0) {
      if (forget_fd_) forget_fd_(fd_);
      ::close(fd_);
      fd_ = -1;
    }
  }

  pid_t pid_;
  int fd_;
  std::function<void(int)> forget_fd_;
  std::string how_ = "exited";
  LineBuffer buf_;
};

class ForkPipeTransport final : public Transport {
 public:
  ForkPipeTransport(const ShardedSweepSpec& spec,
                    const ShardedSweepOptions& opts, std::mutex& fork_mutex)
      : spec_(spec), opts_(opts), fork_mutex_(fork_mutex) {}

  const char* kind() const override { return "pipe"; }

  std::unique_ptr<WorkerLink> assign(const Message& assignment) override {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw IoError(std::string("pipe() failed: ") + std::strerror(errno));
    }
    // The assignment travels as its encoded protocol record — the A
    // line carries the slice, run id, and seed frontier the worker will
    // prune with, so wire format and behavior can never drift apart.
    const std::string line = encode(assignment);

    // Every coordinator-side descriptor the child would inherit; it
    // closes them all except its own write end.
    std::vector<int> inherited{fds[0], fds[1]};
    inherited.insert(inherited.end(), open_fds_.begin(), open_fds_.end());

    pid_t pid = -1;
    {
      std::lock_guard lock(fork_mutex_);
      pid = ::fork();
    }
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw IoError(std::string("fork() failed: ") + std::strerror(errno));
    }
    if (pid == 0) {
      internal::run_worker_attempt(spec_, opts_, line, fds[1], inherited);
    }
    ::close(fds[1]);
    set_nonblocking(fds[0]);
    open_fds_.push_back(fds[0]);
    return std::make_unique<PipeLink>(pid, fds[0], [this](int fd) {
      open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                      open_fds_.end());
    });
  }

  void recycle(std::unique_ptr<WorkerLink> link) override {
    // The child already exited (it _exits right after its D/F report);
    // kill() reaps it and closes the pipe. Nothing is reused.
    if (link) link->kill();
  }

 private:
  const ShardedSweepSpec& spec_;
  const ShardedSweepOptions& opts_;
  std::mutex& fork_mutex_;
  std::vector<int> open_fds_;  ///< live read ends, for child close lists
};

// ---------------------------------------------------------------------------
// Socket transport (coordinator side).

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportConfig config)
      : owned_(std::move(config.owned)),
        listener_(config.listener != nullptr ? config.listener
                                             : owned_.get()),
        run_id_(config.run_id),
        space_fp_(config.space_fp),
        net_timeout_s_(config.net_timeout_s) {
    set_nonblocking(listener_->fd());
  }
  ~SocketTransport() override { shutdown(); }

  const char* kind() const override { return "socket"; }

  std::unique_ptr<WorkerLink> assign(const Message& assignment) override {
    while (!idle_.empty()) {
      std::unique_ptr<SocketLink> link = std::move(idle_.front());
      idle_.pop_front();
      try {
        HEC_FAILPOINT_HIT("net.partition");
      } catch (const util::InjectedFault&) {
        link->blackhole();
        HEC_COUNTER_INC("shard.net.partitions");
      }
      if (link->send(assignment)) return link;
      HEC_COUNTER_INC("shard.net.disconnects");
    }
    return nullptr;  // nobody idle right now; the caller retries later
  }

  bool pump(double now_s) override {
    accept_new(now_s);
    const bool welcomed = run_handshakes(now_s);
    tend_idle(now_s);
    return welcomed;
  }

  void recycle(std::unique_ptr<WorkerLink> link) override {
    if (!link) return;
    if (link->poll_fd() < 0) {
      HEC_COUNTER_INC("shard.net.disconnects");
      return;  // died between its report and the recycle
    }
    idle_.push_back(
        std::unique_ptr<SocketLink>(static_cast<SocketLink*>(link.release())));
  }

  void shutdown() override {
    Message bye;
    bye.kind = MessageKind::kBye;
    for (std::unique_ptr<SocketLink>& link : idle_) {
      link->send(bye);
      link->kill();
    }
    idle_.clear();
    for (Pending& p : pending_) p.link->kill();
    pending_.clear();
    if (listener_ != nullptr) {
      listener_->close();
      listener_ = nullptr;
    }
  }

 private:
  struct Pending {
    std::unique_ptr<SocketLink> link;
    double accepted_at_s = 0.0;
  };

  void accept_new(double now_s) {
    for (;;) {
      sockaddr_in addr{};
      socklen_t len = sizeof addr;
      const int fd = ::accept(listener_->fd(),
                              reinterpret_cast<sockaddr*>(&addr), &len);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or a transient error: try again next turn
      }
      try {
        HEC_FAILPOINT_HIT("net.accept");
      } catch (const util::InjectedFault&) {
        ::close(fd);
        continue;  // dropped at the door; the worker redials
      }
      HEC_COUNTER_INC("shard.net.accepts");
      set_tcp_nodelay(fd);
      char host[INET_ADDRSTRLEN] = "?";
      ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof host);
      std::string peer =
          std::string(host) + ':' + std::to_string(ntohs(addr.sin_port));
      pending_.push_back(
          {std::make_unique<SocketLink>(fd, std::move(peer), net_timeout_s_),
           now_s});
    }
  }

  /// Returns true when at least one connection was welcomed.
  bool run_handshakes(double now_s) {
    bool any_welcomed = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      DrainResult d = it->link->drain();
      bool welcomed = false;
      bool drop = false;
      const char* why = "connection closed";
      if (d.corrupt) {
        HEC_COUNTER_INC("shard.net.frames_rejected");
        drop = true;
        why = "corrupt frame";
      } else if (!d.lines.empty()) {
        const std::optional<Message> m = parse(d.lines.front());
        if (!m || m->kind != MessageKind::kHello) {
          HEC_COUNTER_INC("shard.net.frames_rejected");
          drop = true;
          why = !m ? "malformed hello" : "protocol violation";
        } else if (m->space != space_fp_) {
          // The authentication of the handshake: a worker built for a
          // different space (or a stray client) is turned away before
          // it can ever receive an assignment.
          drop = true;
          why = "space fingerprint mismatch";
        } else {
          Message welcome;
          welcome.kind = MessageKind::kWelcome;
          welcome.run = run_id_;
          if (it->link->send(welcome)) {
            if (m->run == run_id_) HEC_COUNTER_INC("shard.net.reconnects");
            welcomed = true;
          } else {
            drop = true;
            why = "welcome write failed";
          }
        }
      } else if (d.closed) {
        drop = true;
      } else if (now_s - it->accepted_at_s > net_timeout_s_) {
        drop = true;
        why = "handshake timeout";
      }
      if (welcomed) {
        any_welcomed = true;
        idle_.push_back(std::move(it->link));
        it = pending_.erase(it);
      } else if (drop) {
        std::fprintf(stderr,
                     "warning: dropping worker connection %s during "
                     "handshake (%s)\n",
                     it->link->describe().c_str(), why);
        HEC_COUNTER_INC("shard.net.disconnects");
        it->link->kill();
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    return any_welcomed;
  }

  void tend_idle(double now_s) {
    const bool ping_due = now_s - last_ping_s_ >= net_timeout_s_ / 3.0;
    if (ping_due) last_ping_s_ = now_s;
    for (auto it = idle_.begin(); it != idle_.end();) {
      DrainResult d = (*it)->drain();
      bool drop = d.closed;
      if (d.corrupt) {
        HEC_COUNTER_INC("shard.net.frames_rejected");
        drop = true;
      }
      // d.lines from an idle worker (a straggler R from a superseded
      // connection) have no live attempt to land on; drop them.
      if (!drop && ping_due) {
        Message ping;
        ping.kind = MessageKind::kPing;
        if (!(*it)->send(ping)) drop = true;
      }
      if (drop) {
        HEC_COUNTER_INC("shard.net.disconnects");
        (*it)->kill();
        it = idle_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::unique_ptr<Listener> owned_;
  Listener* listener_;
  const std::uint64_t run_id_;
  const std::uint64_t space_fp_;
  const double net_timeout_s_;
  std::deque<Pending> pending_;
  std::deque<std::unique_ptr<SocketLink>> idle_;
  double last_ping_s_ = 0.0;
};

}  // namespace

// ---------------------------------------------------------------------------
// Listener.

Listener::Listener(const util::Endpoint& endpoint) : host_(endpoint.host) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  const std::string port_text = std::to_string(endpoint.port);
  addrinfo* candidates = nullptr;
  const int rc = ::getaddrinfo(
      endpoint.host.empty() ? nullptr : endpoint.host.c_str(),
      port_text.c_str(), &hints, &candidates);
  if (rc != 0) {
    throw IoError("cannot resolve listen endpoint '" + endpoint.host + ':' +
                  port_text + "': " + ::gai_strerror(rc));
  }
  int last_errno = 0;
  for (const addrinfo* c = candidates; c != nullptr; c = c->ai_next) {
    const int fd = ::socket(c->ai_family, c->ai_socktype, c->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, c->ai_addr, c->ai_addrlen) == 0 && ::listen(fd, 64) == 0) {
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(candidates);
  if (fd_ < 0) {
    throw IoError("cannot listen on '" + endpoint.host + ':' + port_text +
                  "': " + std::strerror(last_errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = endpoint.port;
  }
  set_nonblocking(fd_);
}

Listener::~Listener() { close(); }

void Listener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Listener::describe() const {
  return (host_.empty() ? "0.0.0.0" : host_) + ':' + std::to_string(port_);
}

// ---------------------------------------------------------------------------
// Factories and the client-side dial.

std::unique_ptr<Transport> make_fork_pipe_transport(
    const ShardedSweepSpec& spec, const ShardedSweepOptions& opts,
    std::mutex& fork_mutex) {
  return std::make_unique<ForkPipeTransport>(spec, opts, fork_mutex);
}

std::unique_ptr<Transport> make_socket_transport(
    SocketTransportConfig config) {
  return std::make_unique<SocketTransport>(std::move(config));
}

std::unique_ptr<WorkerLink> connect_link(const util::Endpoint& endpoint,
                                         double net_timeout_s,
                                         std::string* why) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  const std::string host = endpoint.host.empty() ? "127.0.0.1" : endpoint.host;
  const std::string port_text = std::to_string(endpoint.port);
  addrinfo* candidates = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), port_text.c_str(), &hints, &candidates);
  if (rc != 0) {
    if (why != nullptr) {
      *why = "cannot resolve '" + host + "': " + ::gai_strerror(rc);
    }
    return nullptr;
  }
  std::string last_error = "no addresses";
  for (const addrinfo* c = candidates; c != nullptr; c = c->ai_next) {
    const int fd = ::socket(c->ai_family, c->ai_socktype, c->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    set_nonblocking(fd);
    set_tcp_nodelay(fd);
    if (::connect(fd, c->ai_addr, c->ai_addrlen) != 0 &&
        errno != EINPROGRESS) {
      last_error = std::strerror(errno);
      ::close(fd);
      continue;
    }
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, timeout_ms(net_timeout_s)) <= 0) {
      last_error = "connect timeout";
      ::close(fd);
      continue;
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      last_error = std::strerror(soerr != 0 ? soerr : errno);
      ::close(fd);
      continue;
    }
    ::freeaddrinfo(candidates);
    return std::make_unique<SocketLink>(fd, host + ':' + port_text,
                                        net_timeout_s);
  }
  ::freeaddrinfo(candidates);
  if (why != nullptr) {
    *why = "cannot connect to " + host + ':' + port_text + ": " + last_error;
  }
  return nullptr;
}

}  // namespace hec::shard
