// Worker half of the sharded sweep: runs in the forked child.
//
// The child inherits the parent's memoized evaluator (captured in
// spec.body) copy-on-write, so it pays no characterization cost. It
// runs the slice through the resumable engine with a per-shard journal
// — which is exactly what makes kills, steals and retries safe: any
// successor attempt resumes from the journal's last epoch boundary and
// still produces the bit-identical slice frontier.
//
// Report ordering is the durability contract: the result file commits
// (atomic replace) BEFORE the D line is sent, so a crash between the
// two leaves a reusable result that the coordinator discovers on retry.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include <unistd.h>

#include "hec/obs/obs.h"
#include "hec/parallel/periodic.h"
#include "hec/parallel/thread_pool.h"
#include "hec/resilience/journal.h"
#include "hec/resilience/resumable.h"
#include "hec/shard/protocol.h"
#include "hec/shard/result_file.h"
#include "hec/shard/telemetry.h"
#include "hec/util/failpoint.h"
#include "internal.h"

namespace hec::shard::internal {

namespace {

/// Writes one protocol line, retrying on EINTR. Lines are far below
/// PIPE_BUF, so each send is atomic with respect to the heartbeat
/// thread's sends. Failures are ignored: the pipe dying means the
/// coordinator died, and the result file is the durable truth anyway.
void send_line(int fd, const Message& m) {
  const std::string line = encode(m);
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t wrote = ::write(fd, data, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return;
    }
    data += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
}

}  // namespace

std::string sweep_signature(const ShardedSweepSpec& spec) {
  std::string sig = spec.signature + " total=" + std::to_string(spec.total) +
                    " work_units=" + std::to_string(spec.work_units);
  if (!spec.seed_frontier.empty()) {
    // Digest with exact double bits (%a): a journal or result file
    // written under one seed can never validate under another.
    std::string text;
    char buf[80];
    for (const TimeEnergyPoint& p : spec.seed_frontier) {
      std::snprintf(buf, sizeof buf, "%a:%a:%zu;", p.t_s, p.energy_j, p.tag);
      text += buf;
    }
    std::snprintf(buf, sizeof buf, " seed=%zu/%016llx",
                  spec.seed_frontier.size(),
                  static_cast<unsigned long long>(resilience::fnv1a64(text)));
    sig += buf;
  }
  return sig;
}

void run_worker_attempt(const ShardedSweepSpec& spec,
                        const ShardedSweepOptions& opts,
                        const std::string& assignment, int report_fd,
                        const std::vector<int>& inherited_fds) {
  // The A line is the authoritative assignment: everything this attempt
  // knows about its identity and seed comes from the protocol record.
  const std::optional<Message> assign = parse(assignment);
  if (!assign || assign->kind != MessageKind::kAssign) {
    std::fprintf(stderr, "error: worker got a malformed assignment: %s\n",
                 assignment.c_str());
    ::_exit(1);
  }
  const std::size_t shard_id = assign->shard;
  const std::uint64_t attempt = assign->attempt;
  const std::uint64_t run = assign->run;
  const IndexRange range{assign->first, assign->last};
  for (const int fd : inherited_fds) {
    if (fd != report_fd) ::close(fd);
  }
  // A dead coordinator must not SIGPIPE-kill a worker mid-commit; the
  // failed write is simply dropped (see send_line).
  std::signal(SIGPIPE, SIG_IGN);

  // Pin the telemetry baseline (and clear the fork-inherited span ring)
  // before any thread of ours starts: the registry snapshot must see
  // exactly the coordinator's pre-fork state.
  WorkerTelemetry telemetry(
      shard_telemetry_path(opts.state_dir, attempt),
      telemetry_fingerprint(sweep_signature(spec), run), shard_id, attempt,
      opts.telemetry_interval_s);
  telemetry.begin_attempt();

  // The absolute cursor the heartbeat thread reports; updated at every
  // epoch boundary via on_progress.
  std::atomic<std::size_t> cursor{range.first};
  PeriodicTask heartbeat(opts.heartbeat_interval_s, [&] {
    // Armed as e.g. "shard.heartbeat:3:crash" this kills whichever
    // worker reaches the process-wide 3rd heartbeat — a racy, "any
    // victim" kill for stress tests.
    HEC_FAILPOINT_HIT("shard.heartbeat");
    send_line(report_fd, {MessageKind::kProgress, shard_id, attempt,
                          /*first=*/0, /*last=*/0, cursor.load(), {}});
  });

  // Deterministic kill site: the ordinal-th spawned attempt hits
  // "shard.attempt.<ordinal>" once per progress boundary, so
  // "shard.attempt.2:1:crash" SIGKILLs exactly the second worker at its
  // first epoch — reproducible k-of-n crash matrices.
  const std::string attempt_site = "shard.attempt." + std::to_string(attempt);

  try {
    // Parent threads do not survive fork: the worker builds its own
    // pool. threads_per_worker == 0 runs the slice serially.
    ThreadPool pool(std::max<std::size_t>(1, opts.threads_per_worker));
    SweepOptions sweep;
    sweep.block = spec.claim;
    sweep.parallel = opts.threads_per_worker > 1;
    sweep.pool = &pool;

    resilience::ResilienceOptions res;
    res.journal_path = shard_journal_path(opts.state_dir, shard_id);
    res.checkpoint_interval_s = opts.checkpoint_interval_s;
    res.range = range;
    // The wire-carried seed pre-loads the slice sweep's carry, so the
    // body's bound-and-prune layer has global incumbents to prune
    // against from the shard's first chunk.
    res.seed_frontier = assign->seed;
    res.on_progress = [&](std::size_t at) {
      cursor.store(at);
      HEC_FAILPOINT_HIT(attempt_site.c_str());
    };
    // Telemetry flushes ride the journal commits: whenever the cursor is
    // durable, so is everything observed up to it. A SIGKILL between
    // commits loses at most one epoch of telemetry — same blast radius
    // as the sweep itself.
    res.on_flush = [&] { telemetry.flush_if_due(); };

    // The sweep gets a scoped span (closed before the final flush) so
    // even a completed attempt's track shows one enclosing bar over its
    // resilience.epoch children.
    const resilience::ResumableSweepResult swept = [&] {
      HEC_SPAN("shard.worker_sweep");
      return resilience::resumable_sweep_indexed(sweep_signature(spec),
                                                 spec.total, spec.claim,
                                                 spec.work_units, spec.body,
                                                 sweep, res);
    }();

    // Final flush BEFORE the result commit: if we die in between, the
    // requeue finds no result and supersedes this attempt (successor
    // recounts the slice); if we die after, the coordinator reuses the
    // result and this flush — already durable — is the slice's full
    // count. Either way the merged totals stay exact.
    telemetry.final_flush();
    write_shard_result(shard_result_path(opts.state_dir, shard_id),
                       sweep_signature(spec), {range, swept.frontier});
    heartbeat.stop();
    Message done;
    done.kind = MessageKind::kDone;
    done.shard = shard_id;
    done.attempt = attempt;
    if (spec.body_stats) {
      const std::pair<std::size_t, std::size_t> stats = spec.body_stats();
      done.has_stats = true;
      done.evaluated = stats.first;
      done.pruned = stats.second;
    }
    send_line(report_fd, done);
    ::_exit(0);
  } catch (const std::exception& e) {
    telemetry.final_flush();
    heartbeat.stop();
    send_line(report_fd,
              {MessageKind::kFailed, shard_id, attempt, 0, 0, 0, e.what()});
    ::_exit(1);
  } catch (...) {
    telemetry.final_flush();
    heartbeat.stop();
    send_line(report_fd, {MessageKind::kFailed, shard_id, attempt, 0, 0, 0,
                          "unknown exception"});
    ::_exit(1);
  }
}

}  // namespace hec::shard::internal
