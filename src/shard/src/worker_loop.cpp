// Socket worker loop: dial, handshake, serve attempts, reconnect. See
// hec/shard/worker_loop.h for the model. The attempt execution mirrors
// the forked worker (worker.cpp) — same journals, same durability
// ordering (local result commit BEFORE the P/D reports), same heartbeat
// and failpoint sites — so every resilience property of the pipe
// transport holds verbatim over TCP.
#include "hec/shard/worker_loop.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include <poll.h>
#include <sys/stat.h>
#include <unistd.h>

#include "hec/config/evaluate.h"
#include "hec/obs/obs.h"
#include "hec/parallel/periodic.h"
#include "hec/parallel/thread_pool.h"
#include "hec/resilience/journal.h"
#include "hec/resilience/resumable.h"
#include "hec/shard/protocol.h"
#include "hec/shard/result_file.h"
#include "hec/shard/telemetry.h"
#include "hec/shard/transport.h"
#include "hec/sweep/kernel.h"
#include "hec/util/atomic_file.h"
#include "hec/util/failpoint.h"
#include "internal.h"

namespace hec::shard {

namespace {

/// Thrown from on_progress when the heartbeat thread saw the link die:
/// aborts the attempt (the journal keeps its progress) so the loop can
/// redial instead of sweeping for a coordinator that cannot hear it.
struct LinkLostError : std::runtime_error {
  LinkLostError() : std::runtime_error("link lost") {}
};

int timeout_ms(double seconds) {
  if (seconds <= 0.0) return 0;
  const double ms = seconds * 1000.0;
  return ms > 3600.0 * 1000.0 ? 3600 * 1000 : static_cast<int>(ms) + 1;
}

void make_state_dir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0775) == 0 || errno == EEXIST) return;
  throw IoError("cannot create worker state dir '" + dir +
                "': " + std::strerror(errno));
}

/// Drains the link into parsed messages with an idle deadline. The
/// queue survives across calls so a W and an A arriving in one TCP
/// segment are both delivered.
class MessagePump {
 public:
  explicit MessagePump(WorkerLink& link) : link_(link) {}

  /// Next message, or nullopt when the link died, sent garbage, or
  /// stayed silent past `idle_timeout_s` — all three mean "this
  /// connection is over, redial". Pings count as traffic (they reset
  /// the idle window) but are delivered like any other message.
  std::optional<Message> next(double idle_timeout_s) {
    for (;;) {
      if (!queue_.empty()) {
        const Message m = queue_.front();
        queue_.pop_front();
        return m;
      }
      if (dead_ || link_.poll_fd() < 0) return std::nullopt;
      pollfd p{link_.poll_fd(), POLLIN, 0};
      const int ready = ::poll(&p, 1, timeout_ms(idle_timeout_s));
      if (ready <= 0) return std::nullopt;  // silent too long: partition
      const DrainResult d = link_.drain();
      for (const std::string& line : d.lines) {
        if (std::optional<Message> m = parse(line)) {
          queue_.push_back(std::move(*m));
        }
        // A framed-but-malformed line from the coordinator is dropped;
        // if the whole stream is garbage, `corrupt` ends the session.
      }
      if (d.corrupt || d.closed) dead_ = true;
    }
  }

 private:
  WorkerLink& link_;
  std::deque<Message> queue_;
  bool dead_ = false;
};

/// Runs one assignment. Returns false when the link died underneath it
/// (redial); true when the attempt concluded with a delivered — or at
/// least attempted — P+D or F report.
bool run_assignment(const ShardedSweepSpec& spec,
                    const WorkerLoopOptions& opts, const Message& assign,
                    WorkerLink& link, WorkerLoopResult& out) {
  // The spec the attempt actually sweeps carries the wire-delivered
  // seed, so its journal/result fingerprints match what a coordinator
  // sharing this state_dir (or a forked worker before us) produced.
  ShardedSweepSpec local = spec;
  local.seed_frontier = assign.seed;
  const std::string signature = internal::sweep_signature(local);
  const std::size_t shard_id = assign.shard;
  const std::uint64_t attempt = assign.attempt;
  const IndexRange range{assign.first, assign.last};

  WorkerTelemetry telemetry(
      shard_telemetry_path(opts.state_dir, attempt),
      telemetry_fingerprint(signature, assign.run), shard_id, attempt,
      opts.telemetry_interval_s);
  telemetry.begin_attempt();

  std::atomic<std::size_t> cursor{range.first};
  std::atomic<bool> link_down{false};
  // During the attempt the heartbeat thread is the link's only user;
  // the main thread neither reads nor writes it until heartbeat.stop()
  // has joined.
  PeriodicTask heartbeat(opts.heartbeat_interval_s, [&] {
    HEC_FAILPOINT_HIT("shard.heartbeat");
    Message progress;
    progress.kind = MessageKind::kProgress;
    progress.shard = shard_id;
    progress.attempt = attempt;
    progress.cursor = cursor.load();
    if (!link.send(progress)) link_down.store(true);
  });

  // Same deterministic kill site as the forked worker: tests and CI
  // target "shard.attempt.<ordinal>" to crash exactly this attempt.
  const std::string attempt_site = "shard.attempt." + std::to_string(attempt);

  // Kernel stats accumulate across the attempts this process serves;
  // the D line must report only this attempt's share.
  const std::pair<std::size_t, std::size_t> stats_base =
      local.body_stats ? local.body_stats()
                       : std::pair<std::size_t, std::size_t>{0, 0};

  try {
    ThreadPool pool(std::max<std::size_t>(1, opts.threads));
    SweepOptions sweep;
    sweep.block = local.claim;
    sweep.parallel = opts.threads > 1;
    sweep.pool = &pool;

    resilience::ResilienceOptions res;
    res.journal_path = shard_journal_path(opts.state_dir, shard_id);
    res.checkpoint_interval_s = opts.checkpoint_interval_s;
    res.range = range;
    res.seed_frontier = assign.seed;
    res.on_progress = [&](std::size_t at) {
      cursor.store(at);
      HEC_FAILPOINT_HIT(attempt_site.c_str());
      if (link_down.load()) throw LinkLostError();
    };
    res.on_flush = [&] { telemetry.flush_if_due(); };

    const resilience::ResumableSweepResult swept = [&] {
      HEC_SPAN("shard.worker_sweep");
      return resilience::resumable_sweep_indexed(signature, local.total,
                                                 local.claim,
                                                 local.work_units, local.body,
                                                 sweep, res);
    }();

    // Durability ordering, unchanged from the pipe worker: telemetry
    // final flush, then the LOCAL result commit, then the reports. The
    // P line additionally ships the frontier so a coordinator without
    // this filesystem commits its own copy before it sees the D.
    telemetry.final_flush();
    write_shard_result(shard_result_path(opts.state_dir, shard_id),
                       signature, {range, swept.frontier});
    heartbeat.stop();

    Message payload;
    payload.kind = MessageKind::kResult;
    payload.shard = shard_id;
    payload.attempt = attempt;
    payload.seed = swept.frontier;
    Message done;
    done.kind = MessageKind::kDone;
    done.shard = shard_id;
    done.attempt = attempt;
    if (local.body_stats) {
      const std::pair<std::size_t, std::size_t> now = local.body_stats();
      done.has_stats = true;
      done.evaluated = now.first - stats_base.first;
      done.pruned = now.second - stats_base.second;
    }
    ++out.attempts_run;
    // A failed report is not a failed attempt: the local result is
    // durable, the coordinator's lease machinery requeues, and the
    // successor (possibly us, re-attached) resumes or reuses it.
    return link.send(payload) && link.send(done);
  } catch (const LinkLostError&) {
    heartbeat.stop();
    telemetry.final_flush();
    return false;
  } catch (const std::exception& e) {
    heartbeat.stop();
    telemetry.final_flush();
    ++out.attempts_failed;
    Message failed;
    failed.kind = MessageKind::kFailed;
    failed.shard = shard_id;
    failed.attempt = attempt;
    failed.detail = e.what();
    return link.send(failed);
  }
}

/// One connected session: handshake already done; serve until bye,
/// silence, or link death. The pump is shared with the handshake so an
/// assignment that arrived in the same TCP segment as the welcome is
/// not lost. Returns true when the coordinator said bye.
bool serve_session(const ShardedSweepSpec& spec,
                   const WorkerLoopOptions& opts, WorkerLink& link,
                   MessagePump& pump, WorkerLoopResult& out) {
  for (;;) {
    const std::optional<Message> m = pump.next(opts.net_timeout_s);
    if (!m) return false;  // closed, corrupt, or idle past the timeout
    switch (m->kind) {
      case MessageKind::kAssign:
        if (!run_assignment(spec, opts, *m, link, out)) return false;
        break;
      case MessageKind::kBye:
        return true;
      case MessageKind::kPing:
      default:
        break;  // keepalives and stray records just reset the idle clock
    }
  }
}

}  // namespace

WorkerLoopResult run_worker_loop(const ShardedSweepSpec& spec,
                                 const WorkerLoopOptions& opts) {
  if (!spec.body) {
    throw std::invalid_argument("worker loop needs a sweep body");
  }
  if (spec.claim == 0) {
    throw std::invalid_argument("worker loop claim must be positive");
  }
  if (opts.state_dir.empty()) {
    throw std::invalid_argument(
        "worker loop needs a state_dir for journals and results");
  }
  make_state_dir(opts.state_dir);
  // A coordinator dying mid-read must surface as EPIPE/false from the
  // send loop, never SIGPIPE death (satellite of the same guarantee the
  // forked worker already had).
  std::signal(SIGPIPE, SIG_IGN);

  WorkerLoopResult out;
  const std::uint64_t space = space_fingerprint(spec);
  std::mt19937_64 rng(opts.jitter_seed != 0
                          ? opts.jitter_seed
                          : resilience::fnv1a64(
                                std::to_string(::getpid()) + ":" +
                                std::to_string(std::chrono::system_clock::now()
                                                   .time_since_epoch()
                                                   .count())));
  std::uniform_real_distribution<double> jitter(0.75, 1.25);

  std::uint64_t prev_run = 0;
  double backoff = opts.redial_backoff_s;
  std::size_t failures = 0;
  while (failures <= opts.max_redials) {
    std::string why;
    std::unique_ptr<WorkerLink> link =
        connect_link(opts.connect, opts.net_timeout_s, &why);
    bool welcomed = false;
    if (link) {
      Message hello;
      hello.kind = MessageKind::kHello;
      hello.space = space;
      hello.run = prev_run;  // 0 first time; the live id marks a reconnect
      if (link->send(hello)) {
        MessagePump pump(*link);
        const std::optional<Message> welcome = pump.next(opts.net_timeout_s);
        if (welcome && welcome->kind == MessageKind::kWelcome) {
          welcomed = true;
          if (out.served && welcome->run == prev_run) ++out.reconnects;
          prev_run = welcome->run;
          out.served = true;
          failures = 0;
          backoff = opts.redial_backoff_s;
          if (serve_session(spec, opts, *link, pump, out)) {
            out.bye = true;
            return out;
          }
          // Session dropped (coordinator gone, partitioned, or killed
          // our connection): fall through to redial. Dial failures from
          // here on count toward max_redials — an ended run closes the
          // listener, which is how orphans drain out.
        } else {
          why = welcome ? "handshake protocol violation"
                        : "no welcome within the net timeout";
        }
      } else {
        why = "hello write failed";
      }
    }
    if (!welcomed) {
      ++failures;
      out.detail = why;
      if (failures > opts.max_redials) break;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(backoff * jitter(rng)));
      backoff = std::min(opts.redial_backoff_max_s, backoff * 2.0);
    }
  }
  return out;
}

WorkerLoopResult run_two_type_worker(const NodeTypeModel& arm_model,
                                     const NodeTypeModel& amd_model,
                                     const EnumerationLimits& limits,
                                     double work_units,
                                     const WorkerLoopOptions& opts) {
  HEC_SPAN("shard.remote_worker");
  // Same construction as sharded_sweep_frontier's coordinator side:
  // deterministic characterization means this worker's space
  // fingerprint and sweep signatures match the coordinator's exactly,
  // provided both were built from the same models and limits.
  const MemoizedConfigEvaluator memo(arm_model, amd_model, limits);
  TwoTypeSweepKernel::Options kopts;
  kopts.prune = opts.prune;
  kopts.simd = opts.simd;
  kopts.chunk = opts.prune_chunk;
  const TwoTypeSweepKernel kernel(memo, work_units, kopts);
  ShardedSweepSpec spec;
  spec.signature = memo.layout().describe();
  spec.total = memo.size();
  spec.work_units = work_units;
  // seed_frontier stays empty: the coordinator's A lines carry the seed.
  spec.body = [&kernel](std::size_t first, std::size_t count,
                        ParetoAccumulator& acc) {
    kernel.consume(first, count, acc);
  };
  spec.body_stats = [&kernel] {
    const KernelStats s = kernel.stats();
    return std::pair<std::size_t, std::size_t>(s.evaluated, s.pruned);
  };
  return run_worker_loop(spec, opts);
}

}  // namespace hec::shard
