// Internals shared between the coordinator and the worker half of the
// fork. Not installed; include only from src/shard/src.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hec/shard/shard.h"
#include "hec/sweep/slices.h"

namespace hec::shard::internal {

/// Fingerprint used by per-shard journals and result files: the spec's
/// space signature plus the parameters the journal header would
/// otherwise carry separately (including a digest of the seed frontier —
/// artifacts of differently-seeded runs never cross). One string,
/// compared byte-for-byte.
std::string sweep_signature(const ShardedSweepSpec& spec);

/// Runs one attempt in the current (child) process. `assignment` is the
/// encoded hecshard/v1 A line naming the shard, attempt, slice, run id
/// and seed frontier — the protocol record is the real carrier, so what
/// a worker prunes with is exactly what went over the wire. Heartbeats
/// on `report_fd`, journaled resumable sweep of the slice, durable
/// result commit, then a D/F report and _exit. Never returns;
/// `inherited_fds` are the coordinator-side descriptors the child must
/// close first.
[[noreturn]] void run_worker_attempt(const ShardedSweepSpec& spec,
                                     const ShardedSweepOptions& opts,
                                     const std::string& assignment,
                                     int report_fd,
                                     const std::vector<int>& inherited_fds);

}  // namespace hec::shard::internal
