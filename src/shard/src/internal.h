// Internals shared between the coordinator and the worker half of the
// fork. Not installed; include only from src/shard/src.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hec/shard/shard.h"
#include "hec/sweep/slices.h"

namespace hec::shard::internal {

/// Fingerprint used by per-shard journals and result files: the spec's
/// space signature plus the parameters the journal header would
/// otherwise carry separately. One string, compared byte-for-byte.
std::string sweep_signature(const ShardedSweepSpec& spec);

/// Runs one attempt of `shard_id` over `range` in the current (child)
/// process: heartbeats on `report_fd`, journaled resumable sweep of the
/// slice, durable result commit, then a D/F report and _exit. Never
/// returns. `run` is the coordinator run id from the assignment (it
/// fingerprints the attempt's telemetry sidecar); `inherited_fds` are
/// the coordinator-side descriptors the child must close first.
[[noreturn]] void run_worker_attempt(const ShardedSweepSpec& spec,
                                     const ShardedSweepOptions& opts,
                                     std::size_t shard_id,
                                     std::uint64_t attempt, std::uint64_t run,
                                     IndexRange range, int report_fd,
                                     const std::vector<int>& inherited_fds);

}  // namespace hec::shard::internal
