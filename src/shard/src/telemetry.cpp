#include "hec/shard/telemetry.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "hec/bench/json.h"
#include "hec/obs/obs.h"
#include "hec/obs/span.h"
#include "hec/resilience/journal.h"
#include "hec/util/atomic_file.h"

namespace hec::shard {

namespace json = hec::bench::json;

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

#ifndef HEC_OBS_DISABLE
double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
#endif

json::Value telemetry_payload(const TelemetryRecord& record,
                              const std::string& fingerprint) {
  json::Value payload;
  payload["fingerprint"] = fingerprint;
  payload["shard"] = static_cast<double>(record.shard);
  payload["attempt"] = static_cast<double>(record.attempt);
  payload["pid"] = static_cast<double>(record.pid);
  payload["seq"] = static_cast<double>(record.seq);
  payload["final"] = record.final_flush;
  json::Value::Object counters;
  for (const auto& [name, value] : record.metrics.counters) {
    counters[name] = value;
  }
  payload["counters"] = json::Value(std::move(counters));
  json::Value::Object gauges;
  for (const auto& [name, value] : record.metrics.gauges) {
    gauges[name] = value;
  }
  payload["gauges"] = json::Value(std::move(gauges));
  json::Value::Array histograms;
  for (const auto& h : record.metrics.histograms) {
    json::Value hv;
    hv["name"] = h.name;
    hv["count"] = static_cast<double>(h.count);
    hv["sum"] = h.sum;
    json::Value::Array bins;
    for (std::size_t i = 0; i < obs::Histogram::kBins; ++i) {
      if (h.bins[i] == 0) continue;
      json::Value::Array bin;
      bin.emplace_back(static_cast<double>(i));
      bin.emplace_back(static_cast<double>(h.bins[i]));
      bins.emplace_back(std::move(bin));
    }
    hv["bins"] = json::Value(std::move(bins));
    histograms.emplace_back(std::move(hv));
  }
  payload["histograms"] = json::Value(std::move(histograms));
  json::Value::Array spans;
  for (const obs::ExternalSpan& ev : record.spans) {
    json::Value::Array span;
    span.emplace_back(ev.name);
    span.emplace_back(ev.start_us);
    span.emplace_back(ev.dur_us);
    span.emplace_back(static_cast<double>(ev.tid));
    span.emplace_back(static_cast<double>(ev.depth));
    if (ev.has_sim_window()) {
      span.emplace_back(ev.sim_begin_s);
      span.emplace_back(ev.sim_end_s);
    }
    spans.emplace_back(std::move(span));
  }
  payload["spans"] = json::Value(std::move(spans));
  return payload;
}

}  // namespace

std::string shard_telemetry_path(const std::string& state_dir,
                                 std::uint64_t attempt) {
  return state_dir + "/attempt-" + std::to_string(attempt) + ".telemetry";
}

std::string telemetry_fingerprint(const std::string& sweep_signature,
                                  std::uint64_t run) {
  return sweep_signature + " run=" + std::to_string(run);
}

std::string encode_telemetry(const TelemetryRecord& record,
                             const std::string& fingerprint) {
  const std::string payload_text =
      telemetry_payload(record, fingerprint).dump(/*pretty=*/false);
  std::ostringstream out;
  out << "{\"schema\":\"" << kTelemetrySchema
      << "\",\"telemetry\":" << payload_text << ",\"crc64\":\""
      << hex64(resilience::fnv1a64(payload_text)) << "\"}\n";
  return out.str();
}

std::optional<TelemetryRecord> decode_telemetry(std::string_view text,
                                                const std::string& fingerprint,
                                                std::string* why) {
  const auto reject = [&](std::string reason) -> std::optional<TelemetryRecord> {
    if (why != nullptr) *why = std::move(reason);
    return std::nullopt;
  };
  std::string error;
  const auto doc = json::Value::parse(text, &error);
  if (!doc) return reject("unparseable telemetry: " + error);
  if (doc->operator[]("schema").as_string() != kTelemetrySchema) {
    return reject("unknown schema '" + doc->operator[]("schema").as_string() +
                  "'");
  }
  const json::Value& payload = doc->operator[]("telemetry");
  if (!payload.is_object()) return reject("telemetry is not an object");
  const std::string want_crc = doc->operator[]("crc64").as_string();
  const std::string got_crc =
      hex64(resilience::fnv1a64(payload.dump(/*pretty=*/false)));
  if (want_crc != got_crc) {
    return reject("CRC mismatch (want " + want_crc + ", got " + got_crc + ")");
  }
  if (!fingerprint.empty() &&
      payload["fingerprint"].as_string() != fingerprint) {
    return reject("telemetry is for '" + payload["fingerprint"].as_string() +
                  "', this run is '" + fingerprint + "'");
  }
  TelemetryRecord record;
  record.shard = static_cast<std::size_t>(payload["shard"].as_number());
  record.attempt = static_cast<std::uint64_t>(payload["attempt"].as_number());
  record.pid = static_cast<std::int64_t>(payload["pid"].as_number());
  record.seq = static_cast<std::uint64_t>(payload["seq"].as_number());
  record.final_flush = payload["final"].as_bool();
  for (const auto& [name, value] : payload["counters"].as_object()) {
    if (!value.is_number()) return reject("counter '" + name + "' not numeric");
    record.metrics.counters.emplace_back(name, value.as_number());
  }
  for (const auto& [name, value] : payload["gauges"].as_object()) {
    if (!value.is_number()) return reject("gauge '" + name + "' not numeric");
    record.metrics.gauges.emplace_back(name, value.as_number());
  }
  for (const json::Value& hv : payload["histograms"].as_array()) {
    obs::MetricsRegistry::HistogramSnapshot h;
    h.name = hv["name"].as_string();
    if (h.name.empty()) return reject("histogram without a name");
    h.count = static_cast<std::uint64_t>(hv["count"].as_number());
    h.sum = hv["sum"].as_number();
    for (const json::Value& bv : hv["bins"].as_array()) {
      const json::Value::Array& bin = bv.as_array();
      if (bin.size() != 2) return reject("histogram bin is not [index,n]");
      const double index = bin[0].as_number();
      if (index < 0 ||
          index >= static_cast<double>(obs::Histogram::kBins)) {
        return reject("histogram bin index out of range");
      }
      h.bins[static_cast<std::size_t>(index)] =
          static_cast<std::uint64_t>(bin[1].as_number());
    }
    record.metrics.histograms.push_back(std::move(h));
  }
  for (const json::Value& sv : payload["spans"].as_array()) {
    const json::Value::Array& span = sv.as_array();
    if (span.size() != 5 && span.size() != 7) {
      return reject("span is not [name,start,dur,tid,depth(,simb,sime)]");
    }
    obs::ExternalSpan ev;
    ev.name = span[0].as_string();
    ev.start_us = span[1].as_number();
    ev.dur_us = span[2].as_number();
    ev.tid = static_cast<std::uint32_t>(span[3].as_number());
    ev.depth = static_cast<std::uint32_t>(span[4].as_number());
    if (span.size() == 7) {
      ev.sim_begin_s = span[5].as_number();
      ev.sim_end_s = span[6].as_number();
    }
    record.spans.push_back(std::move(ev));
  }
  return record;
}

WorkerTelemetry::WorkerTelemetry(std::string path, std::string fingerprint,
                                 std::size_t shard, std::uint64_t attempt,
                                 double min_interval_s)
    : path_(std::move(path)),
      fingerprint_(std::move(fingerprint)),
      shard_(shard),
      attempt_(attempt),
      min_interval_s_(min_interval_s) {}

void WorkerTelemetry::begin_attempt() {
#ifndef HEC_OBS_DISABLE
  if (min_interval_s_ < 0.0) return;
  // The fork copied the coordinator's registry and span rings wholesale;
  // pin the former as the delta baseline and drop the latter so every
  // span this attempt ships is its own.
  base_ = obs::registry().snapshot();
  obs::tracer().clear();
  last_flush_s_ = steady_now_s();
#endif
}

void WorkerTelemetry::flush_if_due() {
#ifndef HEC_OBS_DISABLE
  if (min_interval_s_ < 0.0) return;
  const double now_s = steady_now_s();
  if (now_s - last_flush_s_ < min_interval_s_) return;
  last_flush_s_ = now_s;
  flush(/*final_flush=*/false);
#endif
}

void WorkerTelemetry::final_flush() {
#ifndef HEC_OBS_DISABLE
  if (min_interval_s_ < 0.0) return;
  flush(/*final_flush=*/true);
#endif
}

void WorkerTelemetry::flush(bool final_flush) {
  TelemetryRecord record;
  record.shard = shard_;
  record.attempt = attempt_;
  record.pid = static_cast<std::int64_t>(::getpid());
  record.seq = ++seq_;
  record.final_flush = final_flush;
  record.metrics = obs::snapshot_delta(obs::registry().snapshot(), base_);
  for (const obs::SpanEvent& ev : obs::tracer().snapshot()) {
    obs::ExternalSpan span;
    span.name = ev.name;
    span.start_us = ev.start_us;
    span.dur_us = ev.dur_us;
    span.tid = ev.tid;
    span.depth = ev.depth;
    if (ev.has_sim_window()) {
      span.sim_begin_s = ev.sim_begin_s;
      span.sim_end_s = ev.sim_end_s;
    }
    record.spans.push_back(std::move(span));
  }
  try {
    util::atomic_write_file(path_, encode_telemetry(record, fingerprint_));
  } catch (const IoError& e) {
    // Best-effort by design: a full disk must cost the operator this
    // attempt's telemetry, not the attempt.
    obs::log(2, std::string("telemetry flush failed: ") + e.what());
  }
}

TelemetryMerger::TelemetryMerger(std::string fingerprint)
    : fingerprint_(std::move(fingerprint)) {}

bool TelemetryMerger::ingest_file(const std::string& path, std::string* why) {
  std::ifstream in(path);
  if (!in) return false;  // not flushed yet: the common mid-run case
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string reason;
  const auto record = decode_telemetry(buffer.str(), fingerprint_, &reason);
  if (!record) {
    ++rejected_;
    if (why != nullptr) *why = std::move(reason);
    return false;
  }
  auto it = latest_.find(record->attempt);
  if (it != latest_.end() && it->second.seq >= record->seq) return false;
  latest_[record->attempt] = std::move(*record);
  return true;
}

void TelemetryMerger::mark_superseded(std::uint64_t attempt) {
  superseded_.insert(attempt);
}

void TelemetryMerger::apply(obs::MetricsRegistry& registry) const {
  for (const auto& [attempt, record] : latest_) {
    if (superseded_.count(attempt) != 0) continue;
    registry.accumulate(record.metrics);
  }
}

obs::ExternalTrace TelemetryMerger::build_trace(
    std::vector<obs::InstantEvent> instants) const {
  obs::ExternalTrace trace;
  trace.instants = std::move(instants);
  trace.tracks.reserve(latest_.size());
  for (const auto& [attempt, record] : latest_) {
    obs::ExternalTrack track;
    track.label = "worker shard=" + std::to_string(record.shard) +
                  " attempt=" + std::to_string(attempt) +
                  " pid=" + std::to_string(record.pid);
    // Trace-local pids: the coordinator owns pid 1, attempt N renders
    // as pid N+1. OS pids would collide after reuse and sort randomly.
    track.pid = attempt + 1;
    track.sort_index = static_cast<std::int64_t>(attempt);
    track.superseded = superseded_.count(attempt) != 0;
    track.spans = record.spans;
    trace.tracks.push_back(std::move(track));
  }
  return trace;
}

double TelemetryMerger::counter_total(std::string_view name) const {
  double total = 0.0;
  for (const auto& [attempt, record] : latest_) {
    if (superseded_.count(attempt) != 0) continue;
    for (const auto& [counter, value] : record.metrics.counters) {
      if (counter == name) total += value;
    }
  }
  return total;
}

}  // namespace hec::shard
