// Fault-tolerant sharded sweeps: a coordinator/worker substrate that
// partitions a configuration space into contiguous index slices
// ("shards"), runs each shard in a worker process, and merges the
// per-shard Pareto frontiers into a result bit-identical to an
// uninterrupted single-process sweep.
//
// Two transports (hec/shard/transport.h) plug into one supervision
// loop: fork + pipe on one machine (the default), or supervised TCP
// sockets (`listen` below) where standalone workers — tools/
// hecsim_worker, or anything calling run_worker_loop — dial in,
// authenticate with the space fingerprint, and serve attempts over
// CRC-framed protocol lines. The durability scheme (per-shard journals
// + result files under `state_dir`, hec/shard/result_file.h) is
// transport-agnostic; over sockets the result frontier additionally
// rides the wire (P line) so the coordinator commits its own copy
// without a shared filesystem.
//
// Robustness model
// ----------------
//   * Workers heartbeat (R lines) on a fixed cadence; the coordinator's
//     monitor thread tracks leases (hec/shard/lease.h).
//   * Heartbeat silence ≥ heartbeat_timeout_s → the worker is presumed
//     dead (also detected sooner via waitpid): SIGKILL + requeue. Obs:
//     `shard.reassignments`.
//   * Heartbeats without cursor movement ≥ progress_timeout_s → the
//     worker is a straggler: the shard is *stolen* — the attempt is
//     killed and relaunched; the replacement resumes from the shard's
//     journal, so the straggler's progress is kept, not discarded. Obs:
//     `shard.steals`.
//   * Failed attempts retry with exponential backoff under a bounded
//     per-shard budget; an exhausted shard is reported, not retried
//     forever. Obs: `shard.retries`.
//   * A finished shard's frontier is committed durably *before* the
//     done report, so duplicate delivery and coordinator restarts are
//     idempotent: results found on disk are fingerprint-verified and
//     reused. Obs: `shard.results_reused`.
//   * On the global deadline the coordinator kills outstanding workers
//     and returns the exact merge of completed shards with coverage
//     accounting (`deadline_hit`, configs_visited/configs_total);
//     callers map that to exit 75.
//
// Failpoint sites (HEC_FAILPOINT): `shard.assign` (coordinator, before
// each spawn), `shard.heartbeat` (worker, each heartbeat send),
// `shard.merge` (coordinator, per merged shard), and the dynamic
// `shard.attempt.<ordinal>` (worker, each progress boundary of the
// ordinal-th spawned attempt) — the last is how tests SIGKILL exactly
// k of n workers mid-shard, deterministically. The socket transport
// adds net.{accept,read,write,frame.corrupt,partition}; see
// hec/shard/transport.h.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "hec/config/enumerate.h"
#include "hec/model/node_model.h"
#include "hec/obs/export.h"
#include "hec/resilience/resumable.h"
#include "hec/sweep/slices.h"
#include "hec/sweep/sweep.h"

namespace hec::shard {

class Listener;  // hec/shard/transport.h

/// A deadline-stopped sharded sweep exits with the same code as a
/// deadline-stopped resumable sweep: partial results, resume finishes.
inline constexpr int kExitPartial = resilience::kExitPartial;

/// The sweep to distribute, described as an opaque index space — the
/// same contract as resilience::resumable_sweep_indexed, which is what
/// each worker runs over its slice.
struct ShardedSweepSpec {
  /// Fingerprint of the space and every parameter shaping per-index
  /// outcomes. Shard journals and result files extend it with slice
  /// bounds, so artifacts can never migrate between shards or sweeps.
  std::string signature;
  std::size_t total = 0;       ///< index space size
  std::size_t claim = 4096;    ///< block size workers claim at a time
  double work_units = 1.0;
  /// Evaluates indices [first, first+count) into the accumulator. Runs
  /// in worker processes — it must not depend on parent-side threads,
  /// and any expensive setup it captures should be built before
  /// run_sharded so fork shares it copy-on-write.
  std::function<void(std::size_t first, std::size_t count,
                     ParetoAccumulator& acc)>
      body;
  /// Already-evaluated points of the global space (genuine (t, e, tag)
  /// triples — sharded_sweep_frontier uses two_type_incumbents). The
  /// coordinator carries them on every assignment's A line; workers fold
  /// them into their slice sweep's initial carry so bound-and-prune
  /// fires from each shard's first chunk. The merged frontier is
  /// unchanged (the points belong to the space); the seed is also folded
  /// into the sweep signature, so journals and result files from
  /// differently-seeded runs never cross.
  std::vector<TimeEnergyPoint> seed_frontier;
  /// Optional: the body's (evaluated, pruned) accounting so far, read in
  /// the worker process right after its slice completes and reported on
  /// the D line (sharded_sweep_frontier wires this to the kernel's
  /// stats). Null reports the v1 short form.
  std::function<std::pair<std::size_t, std::size_t>()> body_stats;
};

struct ShardedSweepOptions {
  /// Concurrent worker processes (fork+pipe transport), or the cap on
  /// concurrent assignments (socket transport — connections beyond it
  /// idle until a slot frees).
  std::size_t workers = 2;
  /// Shard count (work units handed to workers). 0 derives 4× workers,
  /// so work stealing and requeues have slack to rebalance.
  std::size_t shards = 0;
  /// Directory for per-shard journals and result files. Required; the
  /// CLI uses `<journal>.shards` or a temp dir.
  std::string state_dir;
  /// Worker heartbeat cadence.
  double heartbeat_interval_s = 0.05;
  /// Heartbeat silence after which a worker is presumed dead.
  double heartbeat_timeout_s = 10.0;
  /// Heartbeats-without-progress span after which a shard is stolen.
  /// Infinity disables stealing.
  double progress_timeout_s = std::numeric_limits<double>::infinity();
  /// Retry budget per shard beyond the first attempt.
  std::size_t max_retries = 3;
  /// Exponential backoff for retries: first delay, doubling per attempt
  /// up to the cap. Steals relaunch immediately (the shard did nothing
  /// wrong; its worker did).
  double retry_backoff_s = 0.05;
  double retry_backoff_max_s = 2.0;
  /// Global wall-clock budget; infinity runs to completion.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Wall seconds between a worker's journal commits (0 = every epoch;
  /// the default keeps steals cheap to resume).
  double checkpoint_interval_s = 0.0;
  /// Threads per worker process (each worker builds its own pool after
  /// fork — parent threads do not survive into children). 0 = serial.
  std::size_t threads_per_worker = 0;
  /// Minimum wall seconds between a worker's telemetry sidecar flushes
  /// (hec/shard/telemetry.h). Flushes piggyback on journal commits, so
  /// the effective cadence is max(this, checkpoint cadence); 0 flushes
  /// at every commit (deterministic, for tests and traced CLI runs),
  /// negative disables telemetry shipping entirely. Ignored under
  /// HEC_OBS_DISABLE builds (no sidecars are written).
  double telemetry_interval_s = 0.25;
  /// Bound-and-prune layer inside the model-backed workers
  /// (sharded_sweep_frontier); false evaluates everything. Opaque
  /// run_sharded specs manage pruning inside their own body.
  bool prune = true;
  /// SoA/SIMD inner kernel in the model-backed workers; false keeps the
  /// scalar path. Bit-identical either way.
  bool simd = true;
  /// Index granularity of the workers' pruning decisions.
  std::size_t prune_chunk = 32;
  /// TCP listen endpoint ("host:port", ":port" or bare "port"; port 0
  /// binds an ephemeral port). Non-empty switches the transport from
  /// fork+pipe to supervised sockets: the coordinator spawns nothing —
  /// workers dial in (tools/hecsim_worker / run_worker_loop) and
  /// `workers` caps how many serve attempts at once.
  std::string listen;
  /// Alternative to `listen` for tests: a pre-bound Listener
  /// (hec/shard/transport.h) whose real port was read back before
  /// workers were started. Borrowed for the run, but CLOSED at the end
  /// of it so dialing workers see ECONNREFUSED and exit.
  Listener* listener = nullptr;
  /// Socket transport: per-connection I/O timeout (blocked writes,
  /// handshake deadline) and the idle keepalive cadence (pings at a
  /// third of it). Workers use the same budget for their idle-read
  /// partition escape.
  double net_timeout_s = 10.0;
  /// Live status document (hec-sweep-status/v1 JSON), atomically
  /// replaced every status_interval_s and once more at the end. Empty
  /// disables. Derived from protocol state, so it works — coverage, ETA,
  /// per-worker rates — even under HEC_OBS_DISABLE.
  std::string status_path;
  double status_interval_s = 0.5;
};

struct ShardedSweepResult {
  /// Exact merge of the completed shards' frontiers. When every shard
  /// completed this is bit-identical to the single-process sweep of the
  /// whole space.
  std::vector<TimeEnergyPoint> frontier;
  bool complete = false;      ///< every shard finished
  bool deadline_hit = false;  ///< the global deadline stopped the run
  std::size_t shards_total = 0;
  std::size_t shards_complete = 0;
  std::size_t configs_total = 0;
  std::size_t configs_visited = 0;  ///< indices covered by merged shards
  /// Evaluated/pruned split summed from the D-line reports of the
  /// attempts that completed their shard this run. Best-effort
  /// accounting: shards recovered from reusable result files (or workers
  /// speaking the v1 short form) contribute nothing — the frontier and
  /// configs_visited stay exact regardless.
  std::size_t configs_evaluated = 0;
  std::size_t configs_pruned = 0;
  /// Shards whose retry budget ran out (empty unless something is
  /// persistently wrong with the body or the machine).
  std::vector<std::size_t> failed_shards;
  /// Process-level accounting, mirrored in the obs counters.
  std::size_t spawns = 0;
  std::size_t reassignments = 0;
  std::size_t steals = 0;
  std::size_t retries = 0;
  std::size_t results_reused = 0;
  /// Run id minted for this invocation; fingerprints telemetry sidecars
  /// and correlates worker spans with the coordinator (protocol.h).
  std::uint64_t run_id = 0;
  /// Merged worker spans (one track per attempt, superseded attempts
  /// tagged) plus coordinator decision markers, ready for
  /// obs::write_chrome_trace's `external` parameter. Empty when
  /// telemetry shipping was disabled or compiled out.
  obs::ExternalTrace trace;
  /// Observed throughput per attempt (cursor movement between its first
  /// and last heartbeat), for the status surface and bench reporting.
  struct WorkerRate {
    std::uint64_t attempt = 0;
    std::size_t shard = 0;
    double configs_per_s = 0.0;
    bool completed = false;   ///< attempt reported D
    bool superseded = false;  ///< attempt was requeued/stolen
  };
  std::vector<WorkerRate> worker_rates;
};

/// Runs `spec` sharded across worker processes. Throws hec::IoError
/// when `state_dir` is unusable and std::invalid_argument on nonsense
/// options (0 workers, empty body, empty state_dir).
ShardedSweepResult run_sharded(const ShardedSweepSpec& spec,
                               const ShardedSweepOptions& opts);

/// Sharded twin of sweep_frontier / resumable_sweep_frontier: the
/// two-type paper space. Characterizes both models once (the memoized
/// evaluator), then forks workers that share the tables copy-on-write.
ShardedSweepResult sharded_sweep_frontier(const NodeTypeModel& arm_model,
                                          const NodeTypeModel& amd_model,
                                          const EnumerationLimits& limits,
                                          double work_units,
                                          const ShardedSweepOptions& opts);

/// Path of shard `id`'s journal / result file under `state_dir` (the
/// layout is part of the durability contract; tests and operators may
/// inspect these).
std::string shard_journal_path(const std::string& state_dir, std::size_t id);
std::string shard_result_path(const std::string& state_dir, std::size_t id);

}  // namespace hec::shard
