// Cross-process telemetry sidecars (`attempt-<ordinal>.telemetry`).
//
// A forked worker's `hec::obs` counters, histograms and spans die with
// the process — and workers are *expected* to die (SIGKILL drills,
// straggler replacement). Each attempt therefore periodically flushes a
// durable `hec-telemetry/v1` snapshot of everything it observed since
// fork, via the same atomic-replace + CRC + fingerprint discipline as
// the shard result files:
//   * the payload is a *delta* against the registry state inherited at
//     fork (obs::snapshot_delta), so merging adds exactly the work this
//     attempt did and nothing the coordinator already counted;
//   * the flush happens in the resumable engine's on_flush hook, right
//     after each journal commit, so telemetry durability tracks sweep
//     durability — a SIGKILLed attempt's telemetry survives up to its
//     last checkpoint;
//   * the fingerprint is the sweep signature plus the coordinator's
//     per-run id (minted fresh every `run_sharded`), so a stale sidecar
//     from a previous run in the same state directory — or from a
//     different sweep — is rejected, never merged;
//   * flushes are seq-numbered whole-file replacements: the merger
//     keeps the highest seq per attempt, so re-reading a file mid-run
//     is idempotent and a torn read (impossible with atomic_write_file,
//     simulated in tests) fails the CRC instead of half-merging.
//
// The coordinator ingests sidecars during its supervision loop and once
// more at the end, folds non-superseded deltas into its own registry
// (one Prometheus dump for the whole fleet) and renders every attempt
// as its own track in the merged Chrome trace. Attempts that were
// requeued after a crash/steal are marked superseded: their spans stay
// visible (tagged), but their counter deltas are dropped so redone work
// is never double-counted — see ShardedSweepResult::trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "hec/obs/export.h"
#include "hec/obs/metrics.h"

namespace hec::shard {

inline constexpr const char* kTelemetrySchema = "hec-telemetry/v1";

/// One flush from one worker attempt: header naming the attempt, metric
/// deltas since fork, and every span closed since the attempt began.
/// Gauges ride along as instantaneous values (changed-since-fork only);
/// the merger never folds them into the registry — a last-writer race
/// between processes has no meaning — but tools can read them per
/// attempt.
struct TelemetryRecord {
  std::size_t shard = 0;
  std::uint64_t attempt = 0;   ///< coordinator-global spawn ordinal
  std::int64_t pid = 0;        ///< OS pid of the worker (diagnostics)
  std::uint64_t seq = 0;       ///< flush ordinal within the attempt
  bool final_flush = false;    ///< true for the flush before D/F
  obs::MetricsRegistry::Snapshot metrics;
  std::vector<obs::ExternalSpan> spans;
};

/// Sidecar path for one attempt. Attempt ordinals (not shard ids) key
/// the files: a shard retried three times leaves three sidecars, and
/// each must survive its successor.
std::string shard_telemetry_path(const std::string& state_dir,
                                 std::uint64_t attempt);

/// The sidecar fingerprint: sweep signature (space + work units) plus
/// the coordinator run id. Both sides — worker encode, coordinator
/// decode — must derive it identically.
std::string telemetry_fingerprint(const std::string& sweep_signature,
                                  std::uint64_t run);

/// Renders one record as a `hec-telemetry/v1` document (single line of
/// JSON with an embedded payload CRC, like `hecshard-result/v1`).
std::string encode_telemetry(const TelemetryRecord& record,
                             const std::string& fingerprint);

/// Parses a document. Returns nullopt when the text is truncated,
/// unparseable, CRC-damaged, schema-unknown, or fingerprinted for a
/// different sweep/run (pass an empty `fingerprint` to skip that check,
/// for tools). `why` (optional) receives the rejection reason.
std::optional<TelemetryRecord> decode_telemetry(std::string_view text,
                                                const std::string& fingerprint,
                                                std::string* why = nullptr);

/// Worker-side flusher, used from the attempt's main thread only.
///
/// `begin_attempt()` pins the fork-inherited registry snapshot as the
/// delta baseline and clears the inherited span ring; `flush_if_due()`
/// is the resumable engine's on_flush hook (rate-limited by
/// `min_interval_s`; 0 flushes at every checkpoint); `final_flush()`
/// runs unconditionally before the attempt reports D/F. A negative
/// `min_interval_s` makes the whole object inert. Flush I/O errors are
/// swallowed: telemetry must never kill a worker that is doing useful
/// work. Under HEC_OBS_DISABLE every method is a compile-time no-op —
/// a disabled sharded sweep writes no sidecars at all.
class WorkerTelemetry {
 public:
  WorkerTelemetry(std::string path, std::string fingerprint,
                  std::size_t shard, std::uint64_t attempt,
                  double min_interval_s);

  void begin_attempt();
  void flush_if_due();
  void final_flush();

 private:
  void flush(bool final_flush);

  std::string path_;
  std::string fingerprint_;
  std::size_t shard_;
  std::uint64_t attempt_;
  double min_interval_s_;
  std::uint64_t seq_ = 0;
  double last_flush_s_ = 0.0;
  obs::MetricsRegistry::Snapshot base_;
};

/// Coordinator-side accumulator: ingests sidecars (latest seq per
/// attempt wins), tracks which attempts were superseded by a retry, and
/// produces the merged registry deltas and the per-worker trace tracks.
class TelemetryMerger {
 public:
  explicit TelemetryMerger(std::string fingerprint);

  /// Reads one sidecar file. Returns true when it replaced (or first
  /// provided) the held record for its attempt. An absent file is a
  /// silent false (workers flush lazily); a present-but-invalid file
  /// counts as rejected and reports `why`.
  bool ingest_file(const std::string& path, std::string* why = nullptr);

  /// Marks an attempt's deltas as superseded: a replacement attempt
  /// will redo (part of) its work, so folding both into the registry
  /// would double-count. Spans stay in the trace, tagged.
  void mark_superseded(std::uint64_t attempt);

  /// Folds every non-superseded attempt's counter and histogram deltas
  /// into `registry`. Gauges are never merged (see TelemetryRecord).
  void apply(obs::MetricsRegistry& registry) const;

  /// One track per ingested attempt (superseded ones tagged), sorted by
  /// attempt ordinal, plus the coordinator's decision markers.
  obs::ExternalTrace build_trace(std::vector<obs::InstantEvent> instants) const;

  /// Sum of one counter's deltas over non-superseded attempts.
  double counter_total(std::string_view name) const;

  std::size_t records() const { return latest_.size(); }
  std::size_t rejected() const { return rejected_; }
  std::size_t superseded() const { return superseded_.size(); }

 private:
  std::string fingerprint_;
  std::map<std::uint64_t, TelemetryRecord> latest_;
  std::set<std::uint64_t> superseded_;
  std::size_t rejected_ = 0;
};

}  // namespace hec::shard
