// Transport seam for sharded sweeps: how assignment/report lines reach
// a worker, abstracted away from the coordinator's supervision logic.
//
// Two implementations:
//
//  * fork+pipe (make_fork_pipe_transport) — the original single-machine
//    path. assign() forks a child that runs the attempt and reports on
//    a pipe; the assignment itself rides the fork (the child is handed
//    the encoded A line), so send() on a pipe link is a no-op.
//  * supervised sockets (make_socket_transport) — workers are separate
//    processes (tools/hecsim_worker, or anything calling
//    run_worker_loop) that DIAL the coordinator's listener, handshake
//    (H → W, authenticated by the space fingerprint), and then serve
//    one attempt at a time per connection. assign() hands the A line to
//    an idle authenticated connection; a finished link is recycled for
//    the next assignment.
//
// The robustness layer lives here, not in the protocol:
//
//  * Every socket line travels inside a length-limited CRC frame
//    (frame_line / unframe_line): "#<len-hex>:<crc-hex> <payload>\n".
//    A frame that fails to verify marks the connection corrupt; the
//    coordinator quarantines it (drops the connection, requeues the
//    shard) — garbage is never retried on the same connection and
//    never crashes either endpoint.
//  * All socket I/O is non-blocking with poll-based readiness,
//    EINTR/partial-write correct, bounded by a per-connection timeout,
//    and SIGPIPE-immune (MSG_NOSIGNAL; the coordinator additionally
//    ignores SIGPIPE for the run).
//  * Connection death — EOF, a read/write error, a handshake that
//    never completes — surfaces through the SAME supervision paths as
//    process death: the lease expires or the drain reports closed, and
//    the shard is requeued exactly like a SIGKILLed local worker.
//
// Deterministic network fault injection (HEC_FAILPOINT, see
// hec/util/failpoint.h) adds five sites:
//
//   net.accept        coordinator, per accepted connection (error mode
//                     drops the connection at the door)
//   net.read          per drain() of a socket link (error mode closes
//                     the connection mid-read)
//   net.write         per send() on a socket link (error mode closes
//                     the connection mid-write)
//   net.frame.corrupt per send() on a socket link (error mode flips a
//                     byte in the outgoing frame — the peer must
//                     quarantine, never crash)
//   net.partition     coordinator, per assignment handed to a socket
//                     link (error mode blackholes the link: writes
//                     pretend to succeed, reads discard — neither side
//                     sees a FIN, exactly like a network partition;
//                     the lease expiry and the worker's idle timeout
//                     are what recover it)
//
// Obs counters: shard.net.{accepts,disconnects,reconnects,
// frames_rejected,partitions}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include <sys/types.h>

#include "hec/shard/protocol.h"
#include "hec/shard/shard.h"
#include "hec/util/env.h"

namespace hec::shard {

// ---------------------------------------------------------------------------
// Frame codec (socket transport only; pipe lines travel bare).

/// Upper bound on one frame's payload. Generous enough for an A line
/// carrying a kMaxWireFrontier-point seed, small enough that a peer
/// claiming a bogus length cannot make the receiver buffer unboundedly.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 22;

/// FNV-1a over the payload bytes — cheap, endian-free, and plenty to
/// catch the bit flips and truncations a TCP stream can smuggle past
/// its own checksum (or a failpoint injects on purpose).
std::uint32_t frame_crc(std::string_view payload);

/// Wraps one protocol line (trailing newline optional) as a frame:
/// "#<len-hex>:<crc-hex> <payload>\n".
std::string frame_line(std::string_view line);

/// Validates and unwraps one frame (newline optional). Returns the
/// payload line, or nullopt with `why` set — bad marker, unparseable or
/// oversized length, length/CRC mismatch. Never throws.
std::optional<std::string> unframe_line(std::string_view frame,
                                        std::string* why);

/// Fingerprint of the sweep space a peer can serve: the spec's
/// signature, total and work units (the seed frontier is excluded — it
/// is per-assignment state carried on the A line). Both handshake
/// sides compute this locally from their own spec; a worker built for
/// a different space is rejected at hello time.
std::uint64_t space_fingerprint(const ShardedSweepSpec& spec);

// ---------------------------------------------------------------------------
// Links and transports.

/// What one drain() pass produced. `lines` are complete protocol lines
/// (already unframed on sockets). `closed` means the peer is gone (EOF
/// or an I/O error); `corrupt` means a frame failed verification — the
/// caller must quarantine the connection.
struct DrainResult {
  std::vector<std::string> lines;
  bool closed = false;
  bool corrupt = false;
  std::string why;
};

/// One supervised worker attachment: a forked child's report pipe, or
/// an authenticated socket connection. Owned by the coordinator's
/// running-worker table (or, client-side, by run_worker_loop).
class WorkerLink {
 public:
  virtual ~WorkerLink() = default;
  WorkerLink() = default;
  WorkerLink(const WorkerLink&) = delete;
  WorkerLink& operator=(const WorkerLink&) = delete;

  virtual const char* kind() const = 0;
  /// Readable fd to poll, or -1 when the link has nothing pollable.
  virtual int poll_fd() const = 0;
  /// Worker process id when the transport owns the process (pipe), -1
  /// otherwise (a socket peer manages its own lifetime).
  virtual pid_t pid() const { return -1; }
  /// Ships one protocol record. Returns false when the link is closed
  /// (a dying peer mid-write is an ordinary false, never a signal).
  virtual bool send(const Message& m) = 0;
  /// Non-blocking read pass: everything available right now.
  virtual DrainResult drain() = 0;
  /// Non-blocking death probe; a description once the peer is known
  /// gone ("signal 9", "connection closed"), nullopt while alive.
  virtual std::optional<std::string> check_dead() = 0;
  /// Severs the attachment: SIGKILL + reap for a pipe child, close for
  /// a socket (the remote worker survives and may reconnect).
  /// Idempotent.
  virtual void kill() = 0;
  virtual std::string describe() const = 0;
};

/// A bound, listening TCP socket, created before the coordinator runs
/// so tests can bind 127.0.0.1:0, learn the real port, and start
/// workers first. The socket transport closes it at the end of the run
/// (even when borrowed via ShardedSweepOptions::listener) so dialing
/// workers get ECONNREFUSED instead of a half-open handshake.
class Listener {
 public:
  /// Binds and listens. Empty host binds all interfaces; port 0 binds
  /// an ephemeral port (read the real one back from port()). Throws
  /// hec::IoError when the endpoint cannot be bound.
  explicit Listener(const util::Endpoint& endpoint);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }
  std::string describe() const;
  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string host_;
};

/// How assignments find workers. One transport per sharded run; the
/// coordinator is the only caller (single-threaded — the lease monitor
/// never touches the transport).
class Transport {
 public:
  virtual ~Transport() = default;
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  virtual const char* kind() const = 0;
  /// Places `assignment` (a kAssign record) on a worker: fork one
  /// (pipe) or hand it to an idle authenticated connection (socket).
  /// Returns nullptr when no worker is available right now — the
  /// caller simply tries again next supervision turn.
  virtual std::unique_ptr<WorkerLink> assign(const Message& assignment) = 0;
  /// Per-turn housekeeping: accepts, handshakes, handshake timeouts,
  /// idle keepalives. Returns true when new assignment capacity
  /// appeared (a connection was welcomed into the idle pool), so the
  /// supervision loop can skip its idle sleep and assign immediately.
  /// No-op for the pipe transport.
  virtual bool pump(double now_s) {
    (void)now_s;
    return false;
  }
  /// Returns a link whose attempt concluded (D or F) for reuse. The
  /// pipe transport reaps the child; the socket transport parks the
  /// connection in the idle pool.
  virtual void recycle(std::unique_ptr<WorkerLink> link) { (void)link; }
  /// End of run: tells idle socket workers to exit (B line), closes
  /// every connection and the listener.
  virtual void shutdown() {}
};

std::unique_ptr<Transport> make_fork_pipe_transport(
    const ShardedSweepSpec& spec, const ShardedSweepOptions& opts,
    std::mutex& fork_mutex);

struct SocketTransportConfig {
  /// Pre-bound listener to use (borrowed — but see Listener: the
  /// transport still closes it at shutdown). When null, `owned` must
  /// be set.
  Listener* listener = nullptr;
  std::unique_ptr<Listener> owned;
  std::uint64_t run_id = 0;
  std::uint64_t space_fp = 0;
  /// Per-connection I/O budget: blocked-write timeout, handshake
  /// deadline, and the idle keepalive cadence (pings go out at a third
  /// of it).
  double net_timeout_s = 10.0;
};

std::unique_ptr<Transport> make_socket_transport(SocketTransportConfig config);

/// Client side: dials `endpoint` and returns a connected socket link
/// (same framing, timeouts and failpoints as the coordinator side), or
/// nullptr with `why` set. The caller still has to handshake (send
/// kHello, await kWelcome) before the coordinator will assign to it.
std::unique_ptr<WorkerLink> connect_link(const util::Endpoint& endpoint,
                                         double net_timeout_s,
                                         std::string* why);

}  // namespace hec::shard
