// Coordinator/worker wire protocol for sharded sweeps (hecshard/v1).
//
// Single-machine today the transport is a pipe per forked worker, but
// the grammar is deliberately socket-ready: newline-delimited ASCII
// records, self-describing, order-independent per connection, at-least-
// once tolerant (the coordinator ignores duplicate DONE records — shard
// results are idempotent by construction, see result_file.h).
//
//   hecshard/v1 messages, one per line:
//     A <shard> <attempt> <first> <last> <run> [<n> <t:e:tag>...]
//                                               assignment (coordinator → worker)
//     R <shard> <attempt> <cursor>              progress report / heartbeat
//     D <shard> <attempt> [<evaluated> <pruned>]
//                                               shard complete, result durable
//     F <shard> <attempt> <detail...>           attempt failed (exception text)
//
//   socket-transport extensions (hec/shard/transport.h; a pipe peer
//   never sends or receives these):
//     H <space_fp> <prev_run>                   worker hello: fingerprint of
//                                               the space it can sweep, plus
//                                               the run id of its previous
//                                               session (0 on first connect —
//                                               a matching id marks a
//                                               reconnect)
//     W <run>                                   coordinator welcome: the
//                                               handshake succeeded, this is
//                                               the run id
//     P <shard> <attempt> <n> <t:e:tag>...      result payload: the slice
//                                               frontier itself (%a hex
//                                               floats), sent before D so a
//                                               coordinator without a shared
//                                               filesystem can commit the
//                                               durable result on its side
//     N                                         ping (coordinator keepalive
//                                               to an idle worker)
//     B                                         bye: the run is over, the
//                                               worker should exit cleanly
//
// The optional A-line tail is the coordinator's seed frontier — `n`
// already-evaluated (time, energy, tag) points of the global space,
// rendered as C99 hex floats (%a) so the worker reconstructs the exact
// double bits. The worker folds them into its slice sweep's initial
// carry, which is what lets bound-and-prune fire from the very first
// chunk of every shard. The optional D-line tail reports the attempt's
// evaluated/pruned split for the coordinator's merged accounting. Both
// tails are omitted when empty/absent, and parsers accept the v1 short
// forms — old and new peers interoperate.
//
// <attempt> is the coordinator-global spawn ordinal (1-based): it names
// one worker process, so a late message from a superseded attempt can
// never be confused with its replacement after a steal.
//
// <run> is the coordinator's run id (decimal uint64), minted once per
// sharded sweep. Workers fold it into their telemetry fingerprint (see
// telemetry.h), so sidecar files from an earlier run of the same state
// directory — or from a different sweep entirely — can never merge into
// this run's registry, and every span in the merged trace correlates
// back to the coordinator invocation that assigned it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hec/pareto/frontier.h"

namespace hec::shard {

enum class MessageKind {
  kAssign,    ///< A: coordinator hands a worker its slice
  kProgress,  ///< R: heartbeat carrying the absolute sweep cursor
  kDone,      ///< D: shard finished; result file committed
  kFailed,    ///< F: attempt hit an exception; detail is the reason
  kHello,     ///< H: worker dials in (socket transport handshake)
  kWelcome,   ///< W: coordinator accepts the hello
  kResult,    ///< P: slice frontier payload (socket transport)
  kPing,      ///< N: coordinator keepalive to an idle worker
  kBye,       ///< B: run over; the worker should exit cleanly
};

/// Largest frontier (seed or result payload) a parser will accept. Far
/// above any real frontier of the paper's space, far below anything
/// that would let a malicious peer make the coordinator allocate
/// unboundedly off one claimed count.
inline constexpr std::size_t kMaxWireFrontier = 1 << 16;

struct Message {
  MessageKind kind = MessageKind::kProgress;
  std::size_t shard = 0;
  std::uint64_t attempt = 0;
  std::size_t first = 0;   ///< kAssign only
  std::size_t last = 0;    ///< kAssign only
  std::size_t cursor = 0;  ///< kProgress only
  std::string detail;      ///< kFailed only
  /// kAssign/kWelcome: coordinator run id. kHello: the run id of the
  /// worker's previous session with this coordinator (0 = first
  /// connect; matching the live run id marks a reconnect).
  std::uint64_t run = 0;
  /// kHello only: fingerprint of the sweep space the worker built
  /// locally (hec/shard/transport.h, space_fingerprint) — the
  /// authentication token of the handshake.
  std::uint64_t space = 0;
  /// kAssign: seed frontier for the worker's bound-and-prune layer.
  /// kResult: the finished slice's frontier. Exact double bits survive
  /// the wire via %a hex floats either way.
  std::vector<TimeEnergyPoint> seed;
  /// kDone only: the attempt's evaluated/pruned accounting. has_stats
  /// false encodes/decodes the v1 short form (no tail).
  bool has_stats = false;
  std::size_t evaluated = 0;
  std::size_t pruned = 0;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Renders `m` as one protocol line, newline-terminated.
std::string encode(const Message& m);

/// Parses one line (with or without the trailing newline). Returns
/// nullopt on any malformed record — a protocol error from a worker is
/// treated like worker death, never a crash of the coordinator.
std::optional<Message> parse(std::string_view line);

/// Incremental splitter for a byte-stream transport: feed() arbitrary
/// chunks, take() complete lines. A partial trailing line is buffered
/// until its newline arrives, so a heartbeat torn across two read()s is
/// still parsed whole.
class LineBuffer {
 public:
  void feed(std::string_view bytes);
  /// Complete lines received so far, without their newlines; the
  /// internal queue is cleared.
  std::vector<std::string> take();
  /// Bytes of the unterminated trailing line (for tests/diagnostics).
  std::size_t pending() const { return partial_.size(); }

 private:
  std::string partial_;
  std::vector<std::string> lines_;
};

}  // namespace hec::shard
