// Critical path of a sharded sweep: which chain of work set the wall?
//
// The coordinator's decision markers (`shard.spawn` / `shard.done` /
// `shard.steal` / `shard.reassign` / `shard.retry` / ...) plus the
// `shard.coordinator` span window are enough to reconstruct the longest
// dependency chain of a run: plan/queue lead-in, then the attempt
// history of the *gating* shard (the one whose result arrived last —
// every other shard overlapped it), then the merge/finish tail. The
// segments tile the coordinator window exactly, so their sum equals the
// coordinator wall time by construction; that identity is the report's
// sanity check (and CI asserts it within 5% against the measured wall).
//
// Two entry points: one over in-memory instants (what a just-finished
// `ShardedSweepResult.trace` carries), one over a parsed `--trace-out`
// Chrome trace file (what `hecsim_obsreport` reads after the fact).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "hec/bench/json.h"
#include "hec/obs/export.h"

namespace hec::shard {

enum class SegmentKind {
  kLeadIn,      ///< coordinator plan + queue wait before the first spawn
  kAttemptRun,  ///< a gating-shard attempt that produced the result
  kWastedRun,   ///< a gating-shard attempt later stolen/retried/killed
  kBackoff,     ///< gap between a failed attempt and its respawn
  kTail,        ///< ingest + merge + finish after the gating done
};

const char* to_string(SegmentKind kind);

struct PathSegment {
  SegmentKind kind = SegmentKind::kLeadIn;
  std::string label;  ///< human rendering, e.g. "shard 3 attempt 7 run"
  double begin_us = 0.0;
  double end_us = 0.0;
  std::size_t shard = std::numeric_limits<std::size_t>::max();
  std::uint64_t attempt = 0;
  double dur_us() const { return end_us - begin_us; }
};

struct CriticalPath {
  std::vector<PathSegment> segments;
  double begin_us = 0.0;  ///< coordinator window start
  double end_us = 0.0;    ///< coordinator window end
  std::size_t gating_shard = std::numeric_limits<std::size_t>::max();
  bool gating_done = false;  ///< the gating shard reached shard.done

  double wall_us() const { return end_us - begin_us; }
  double total_us() const;  ///< sum of segment durations (== wall_us)
  bool empty() const { return segments.empty(); }
};

/// Builds the critical path from coordinator decision markers over the
/// window [begin_us, end_us] (the `shard.coordinator` span). Returns an
/// empty path when no shard events are present (non-sharded run, or
/// obs disabled).
CriticalPath critical_path(const std::vector<obs::InstantEvent>& instants,
                           double begin_us, double end_us);

/// Extracts the decision markers and coordinator window from a parsed
/// `--trace-out` Chrome trace and delegates to critical_path(). Returns
/// nullopt (with a reason in *why) when the trace carries no sharded
/// run; falls back to the instants' own extent when the coordinator
/// span itself was dropped.
std::optional<CriticalPath> critical_path_from_chrome_trace(
    const bench::json::Value& trace, std::string* why = nullptr);

}  // namespace hec::shard
