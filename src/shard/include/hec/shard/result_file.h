// Durable per-shard result files (`shard-<id>.result`).
//
// A worker that finishes its slice commits the slice frontier to disk
// (atomic replace) *before* reporting D to the coordinator. That
// ordering is what makes the protocol at-least-once safe and the final
// frontier crash-identical:
//   * if the worker dies after the commit but before the D line lands,
//     the retry (or a restarted coordinator) finds the file, verifies
//     its fingerprint, and reuses it instead of recomputing;
//   * duplicate D deliveries are harmless — the file is the result, the
//     message only says "look now";
//   * a result file for a different space/slice/work-unit combination
//     fingerprint-mismatches and is ignored, never merged.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "hec/pareto/frontier.h"
#include "hec/sweep/slices.h"

namespace hec::shard {

inline constexpr const char* kResultSchema = "hecshard-result/v1";

struct ShardResult {
  IndexRange range;
  std::vector<TimeEnergyPoint> frontier;
};

/// Atomically writes `result` for the slice to `path`, fingerprinted
/// with the sweep `signature` and guarded by a content CRC.
/// Throws hec::IoError on filesystem failure.
void write_shard_result(const std::string& path, const std::string& signature,
                        const ShardResult& result);

/// Loads a shard result, returning nullopt when the file is absent,
/// unparseable, CRC-damaged, or fingerprinted for a different sweep or
/// slice. `why` (optional) receives the reason for a nullopt with the
/// file present — callers warn, then recompute from scratch.
std::optional<ShardResult> load_shard_result(const std::string& path,
                                             const std::string& signature,
                                             const IndexRange& range,
                                             std::string* why = nullptr);

}  // namespace hec::shard
