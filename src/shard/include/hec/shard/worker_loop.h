// Standalone socket worker for sharded sweeps: dials a coordinator's
// listener (ShardedSweepOptions::listen on the other side), handshakes
// with the space fingerprint, and serves attempts until the
// coordinator says bye.
//
// Reconnection model: any connection loss — coordinator restart,
// network blip, injected fault, or an idle link that went silent past
// the net timeout (the partition escape) — sends the worker back to the
// dial loop with capped exponential backoff plus jitter. Its per-shard
// journals live in its own local state_dir, so a re-attached worker
// that is handed the same shard resumes from its last epoch boundary
// instead of recomputing; the merged frontier is bit-identical either
// way. The loop gives up only after max_redials consecutive dial
// failures (an ended run closes the listener, so orphaned workers
// drain out instead of spinning forever).
//
// tools/hecsim_worker is the CLI wrapper; tests and benches call
// run_worker_loop / run_two_type_worker directly from forked children.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "hec/config/enumerate.h"
#include "hec/model/node_model.h"
#include "hec/shard/shard.h"
#include "hec/util/env.h"

namespace hec::shard {

struct WorkerLoopOptions {
  /// Coordinator endpoint to dial (host empty = localhost).
  util::Endpoint connect;
  /// Directory for this worker's journals, result files and telemetry
  /// sidecars. Required. Local to the worker machine; when it happens
  /// to be the coordinator's state_dir (loopback runs), telemetry
  /// ingest and result reuse work exactly like the fork transport.
  std::string state_dir;
  /// I/O timeout: blocked writes, the handshake wait, and the idle-read
  /// window after which a silent link is presumed partitioned and
  /// redialed. Keep equal to the coordinator's net_timeout_s.
  double net_timeout_s = 10.0;
  /// Heartbeat cadence while running an attempt (R lines).
  double heartbeat_interval_s = 0.05;
  /// Same roles as the ShardedSweepOptions fields of the same names.
  double checkpoint_interval_s = 0.0;
  double telemetry_interval_s = 0.25;
  std::size_t threads = 0;
  bool prune = true;
  bool simd = true;
  std::size_t prune_chunk = 32;
  /// Redial backoff: first delay, doubling per consecutive failure up
  /// to the cap, with ±25% jitter so a restarted fleet does not dial in
  /// lockstep.
  double redial_backoff_s = 0.1;
  double redial_backoff_max_s = 2.0;
  /// Consecutive dial/handshake failures before the loop gives up.
  std::size_t max_redials = 20;
  /// Jitter seed; 0 derives one from the pid.
  std::uint64_t jitter_seed = 0;
};

struct WorkerLoopResult {
  bool served = false;  ///< handshake succeeded at least once
  bool bye = false;     ///< coordinator ended the run explicitly (B)
  std::size_t attempts_run = 0;
  std::size_t attempts_failed = 0;
  /// Successful re-handshakes with the same live run after a connection
  /// loss.
  std::size_t reconnects = 0;
  /// Last dial/handshake failure, for diagnostics when served is false.
  std::string detail;
};

/// Serves `spec` to the coordinator at opts.connect. The spec must
/// describe the same space as the coordinator's (space_fingerprint
/// authenticates that); seed frontiers arrive per-assignment and are
/// folded in here. Returns when told bye or after max_redials
/// consecutive failed dials. Throws hec::IoError when state_dir is
/// unusable and std::invalid_argument on nonsense options.
WorkerLoopResult run_worker_loop(const ShardedSweepSpec& spec,
                                 const WorkerLoopOptions& opts);

/// Two-type paper-space twin (the worker side of
/// sharded_sweep_frontier): characterizes both models into the memoized
/// evaluator + SoA kernel — deterministically, so a worker built from
/// the same binary and inputs fingerprints identically to its
/// coordinator — then serves the space via run_worker_loop.
WorkerLoopResult run_two_type_worker(const NodeTypeModel& arm_model,
                                     const NodeTypeModel& amd_model,
                                     const EnumerationLimits& limits,
                                     double work_units,
                                     const WorkerLoopOptions& opts);

}  // namespace hec::shard
