// Lease table: liveness and progress accounting for in-flight shards.
//
// The coordinator's monitor thread and its main loop both touch this
// state, so it is a self-contained, internally-locked class with
// injected time (callers pass "now" in seconds on any monotonic scale)
// — which also makes lease expiry unit-testable without sleeping.
//
// Two timeouts, two remedies:
//  - heartbeat_timeout_s: no R message at all for this long → the
//    worker is dead or wedged. Remedy: kill + requeue ("reassignment").
//  - progress_timeout_s: heartbeats arrive but the cursor has not moved
//    for this long → a straggler. Remedy: "steal" the shard — kill the
//    attempt and relaunch it; the stolen work survives in the shard's
//    journal, so the thief resumes where the straggler stalled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace hec::shard {

enum class LeaseAction {
  kReassign,  ///< heartbeat silence: presume the worker dead
  kSteal,     ///< heartbeats without progress: presume a straggler
};

struct LeaseRevocation {
  std::size_t shard = 0;
  std::uint64_t attempt = 0;
  LeaseAction action = LeaseAction::kReassign;
  double idle_s = 0.0;  ///< how long the triggering signal was absent
};

class LeaseTable {
 public:
  LeaseTable(double heartbeat_timeout_s, double progress_timeout_s);

  /// Registers a freshly spawned attempt; `now_s` starts both clocks.
  void grant(std::size_t shard, std::uint64_t attempt, std::size_t cursor,
             double now_s);

  /// Records a heartbeat. A cursor advance also resets the progress
  /// clock. Reports from attempts that no longer hold the lease (killed
  /// stragglers racing their replacement) are ignored — returns false.
  bool heartbeat(std::size_t shard, std::uint64_t attempt, std::size_t cursor,
                 double now_s);

  /// Seconds since the lease's last heartbeat, if it is still held.
  std::optional<double> heartbeat_gap_s(std::size_t shard, double now_s) const;

  /// Drops the lease (shard finished, failed, or its worker was reaped).
  /// Returns false if `attempt` was not the current holder.
  bool release(std::size_t shard, std::uint64_t attempt);

  /// Scans every live lease against the timeouts and returns the ones
  /// that expired. Expired leases stay in the table — the caller kills
  /// the process, reaps it, then release()s — so repeated sweeps
  /// re-report rather than double-free.
  std::vector<LeaseRevocation> expired(double now_s) const;

  std::size_t active() const;

 private:
  struct Lease {
    std::uint64_t attempt = 0;
    std::size_t cursor = 0;
    double last_heartbeat_s = 0.0;
    double last_progress_s = 0.0;
  };

  double heartbeat_timeout_s_;
  double progress_timeout_s_;
  mutable std::mutex mutex_;
  std::unordered_map<std::size_t, Lease> leases_;
};

}  // namespace hec::shard
