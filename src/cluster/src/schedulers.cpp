#include "hec/cluster/schedulers.h"

#include <limits>

#include "hec/model/matching.h"
#include "hec/util/expect.h"

namespace hec {

namespace {
SplitAssignment all_to_one_side(double work_units,
                                const ClusterConfig& config) {
  SplitAssignment split;
  if (config.uses_arm()) {
    split.units_arm = work_units;
  } else {
    split.units_amd = work_units;
  }
  return split;
}
}  // namespace

MatchingScheduler::MatchingScheduler(const NodeTypeModel& arm_model,
                                     const NodeTypeModel& amd_model)
    : arm_(&arm_model), amd_(&amd_model) {}

SplitAssignment MatchingScheduler::assign(double work_units,
                                          const ClusterConfig& config) const {
  HEC_EXPECTS(work_units > 0.0);
  if (!config.heterogeneous()) return all_to_one_side(work_units, config);
  const MatchedSplit matched =
      match_split(*arm_, config.arm, *amd_, config.amd, work_units);
  return SplitAssignment{matched.units_a, matched.units_b};
}

SplitAssignment EqualSplitScheduler::assign(double work_units,
                                            const ClusterConfig& config) const {
  HEC_EXPECTS(work_units > 0.0);
  if (!config.heterogeneous()) return all_to_one_side(work_units, config);
  const double total_nodes =
      static_cast<double>(config.arm.nodes + config.amd.nodes);
  SplitAssignment split;
  split.units_arm = work_units * config.arm.nodes / total_nodes;
  split.units_amd = work_units - split.units_arm;
  return split;
}

SplitAssignment CoreProportionalScheduler::assign(
    double work_units, const ClusterConfig& config) const {
  HEC_EXPECTS(work_units > 0.0);
  if (!config.heterogeneous()) return all_to_one_side(work_units, config);
  const double arm_ghz =
      config.arm.nodes * config.arm.cores * config.arm.f_ghz;
  const double amd_ghz =
      config.amd.nodes * config.amd.cores * config.amd.f_ghz;
  SplitAssignment split;
  split.units_arm = work_units * arm_ghz / (arm_ghz + amd_ghz);
  split.units_amd = work_units - split.units_arm;
  return split;
}

std::optional<ConfigOutcome> threshold_switch_choice(
    std::span<const ConfigOutcome> outcomes, double deadline_s) {
  HEC_EXPECTS(deadline_s > 0.0);
  std::optional<ConfigOutcome> best_low, best_high;
  for (const auto& outcome : outcomes) {
    if (outcome.config.heterogeneous() || outcome.t_s > deadline_s) {
      continue;
    }
    auto& slot = outcome.config.uses_arm() ? best_low : best_high;
    if (!slot || outcome.energy_j < slot->energy_j) slot = outcome;
  }
  // Low-power nodes while they suffice; otherwise switch entirely.
  if (best_low) return best_low;
  return best_high;
}

}  // namespace hec
