#include "hec/cluster/coscheduler.h"

#include "hec/util/expect.h"

namespace hec {

namespace {
void validate_job(const CoscheduleJob& job) {
  HEC_EXPECTS(job.arm_model != nullptr && job.amd_model != nullptr);
  HEC_EXPECTS(job.work_units > 0.0);
  HEC_EXPECTS(job.deadline_s > 0.0);
}

/// Best configuration for one job within a sub-pool, or nullopt.
std::optional<SearchResult> place(const CoscheduleJob& job,
                                  const NodeSpec& arm, const NodeSpec& amd,
                                  int max_arm, int max_amd) {
  if (max_arm == 0 && max_amd == 0) return std::nullopt;
  const ConfigEvaluator evaluator(*job.arm_model, *job.amd_model);
  return branch_and_bound_search(evaluator, arm, amd,
                                 EnumerationLimits{max_arm, max_amd},
                                 job.work_units, job.deadline_s);
}
}  // namespace

std::optional<CoschedulePlan> coschedule_two(const CoscheduleJob& job_a,
                                             const CoscheduleJob& job_b,
                                             const NodeSpec& arm,
                                             const NodeSpec& amd,
                                             int total_arm, int total_amd) {
  validate_job(job_a);
  validate_job(job_b);
  HEC_EXPECTS(total_arm >= 0 && total_amd >= 0);
  HEC_EXPECTS(total_arm + total_amd >= 2);  // both jobs need nodes

  // Memoised placements for job B: its sub-pool is determined by A's.
  std::optional<CoschedulePlan> best;
  std::size_t evaluations = 0;
  for (int arm_a = 0; arm_a <= total_arm; ++arm_a) {
    for (int amd_a = 0; amd_a <= total_amd; ++amd_a) {
      const int arm_b = total_arm - arm_a;
      const int amd_b = total_amd - amd_a;
      const auto placed_a = place(job_a, arm, amd, arm_a, amd_a);
      if (placed_a) evaluations += placed_a->evaluations;
      if (!placed_a) continue;
      const auto placed_b = place(job_b, arm, amd, arm_b, amd_b);
      if (placed_b) evaluations += placed_b->evaluations;
      if (!placed_b) continue;
      const double total =
          placed_a->best.energy_j + placed_b->best.energy_j;
      if (!best || total < best->total_energy_j) {
        CoschedulePlan plan;
        plan.arm_a = arm_a;
        plan.amd_a = amd_a;
        plan.arm_b = arm_b;
        plan.amd_b = amd_b;
        plan.outcome_a = placed_a->best;
        plan.outcome_b = placed_b->best;
        plan.total_energy_j = total;
        best = plan;
      }
    }
  }
  if (best) best->evaluations = evaluations;
  return best;
}

}  // namespace hec
