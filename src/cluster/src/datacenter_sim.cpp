#include "hec/cluster/datacenter_sim.h"

#include <algorithm>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {

DatacenterSimResult simulate_datacenter(const ConfigOutcome& outcome,
                                        double powered_idle_w,
                                        const DatacenterSimConfig& sim) {
  HEC_EXPECTS(outcome.t_s > 0.0);
  HEC_EXPECTS(powered_idle_w >= 0.0);
  HEC_EXPECTS(sim.window_s > 0.0);
  HEC_EXPECTS(sim.arrival_rate_per_s > 0.0);
  HEC_EXPECTS(sim.arrival_rate_per_s * outcome.t_s < 1.0);

  Rng rng(sim.seed);
  // The job's service energy above idle: the evaluated outcome's energy
  // includes the idle floor for its duration, which the window-level
  // idle integration below would double count.
  const double service_extra_j =
      std::max(0.0, outcome.energy_j - powered_idle_w * outcome.t_s);
  const double extra_power_w = service_extra_j / outcome.t_s;

  DatacenterSimResult result;
  double clock = 0.0;        // arrival process
  double server_free = 0.0;  // cluster next available
  double busy_s = 0.0;       // busy time inside the window
  double wait_sum = 0.0, response_sum = 0.0;

  for (;;) {
    clock += rng.exponential(sim.arrival_rate_per_s);
    if (clock >= sim.window_s) break;
    ++result.jobs_arrived;
    const double start = std::max(clock, server_free);
    const double service =
        outcome.t_s * rng.lognormal_unit(sim.service_noise_sigma);
    const double end = start + service;
    server_free = end;
    // Busy time clipped to the window (in-flight jobs charge pro rata).
    if (start < sim.window_s) {
      busy_s += std::min(end, sim.window_s) - start;
    }
    if (end <= sim.window_s) {
      ++result.jobs_completed;
      wait_sum += start - clock;
      response_sum += end - clock;
    }
  }

  result.energy_j =
      powered_idle_w * sim.window_s + extra_power_w * busy_s;
  result.utilization = busy_s / sim.window_s;
  if (result.jobs_completed > 0) {
    const auto n = static_cast<double>(result.jobs_completed);
    result.mean_wait_s = wait_sum / n;
    result.mean_response_s = response_sum / n;
  }
  return result;
}

}  // namespace hec
