#include "hec/cluster/cluster_sim.h"

#include <algorithm>
#include <vector>

#include "hec/obs/obs.h"
#include "hec/util/expect.h"

namespace hec {

namespace {
struct TypeRun {
  double slowest_s = 0.0;
  double energy_j = 0.0;
  std::vector<double> node_walls;
};

TypeRun run_type(const NodeSpec& spec, const PhaseDemand& demand,
                 const NodeConfig& cfg, double units,
                 const ClusterRunOptions& opts, std::uint64_t salt) {
  TypeRun out;
  if (cfg.nodes == 0 || units <= 0.0) return out;
  const double per_node = units / cfg.nodes;
  out.node_walls.reserve(static_cast<std::size_t>(cfg.nodes));
  for (int i = 0; i < cfg.nodes; ++i) {
    RunConfig rc;
    rc.cores_used = cfg.cores;
    rc.f_ghz = cfg.f_ghz;
    rc.work_units = per_node;
    rc.seed = opts.seed ^ ((salt + static_cast<std::uint64_t>(i) + 1) *
                           0x9e3779b97f4a7c15ULL);
    rc.noise_sigma = opts.noise_sigma;
    rc.run_bias_sigma = opts.run_bias_sigma;
    rc.chunks_per_core = opts.chunks_per_core;
    const RunResult r = simulate_node(spec, demand, rc);
    out.node_walls.push_back(r.wall_s);
    out.energy_j += r.energy.total_j();
    out.slowest_s = std::max(out.slowest_s, r.wall_s);
  }
  return out;
}
}  // namespace

ClusterRunResult simulate_cluster(const NodeSpec& arm, const NodeSpec& amd,
                                  const Workload& workload,
                                  const ClusterConfig& config,
                                  double units_arm, double units_amd,
                                  const ClusterRunOptions& opts) {
  HEC_EXPECTS(units_arm >= 0.0 && units_amd >= 0.0);
  HEC_EXPECTS(units_arm + units_amd > 0.0);
  HEC_EXPECTS(config.uses_arm() || units_arm == 0.0);
  HEC_EXPECTS(config.uses_amd() || units_amd == 0.0);

  HEC_SPAN_NAMED(span, "cluster.simulate");
  const TypeRun arm_run = run_type(arm, workload.demand_for(arm.isa),
                                   config.arm, units_arm, opts, 0);
  const TypeRun amd_run = run_type(amd, workload.demand_for(amd.isa),
                                   config.amd, units_amd, opts, 1000);

  ClusterRunResult result;
  result.t_arm_s = arm_run.slowest_s;
  result.t_amd_s = amd_run.slowest_s;
  result.t_s = std::max(arm_run.slowest_s, amd_run.slowest_s);

  // Nodes stay powered until the job completes: early finishers idle.
  double arm_tail = 0.0;
  for (double wall : arm_run.node_walls) {
    arm_tail += (result.t_s - wall) * arm.idle_node_w();
  }
  double amd_tail = 0.0;
  for (double wall : amd_run.node_walls) {
    amd_tail += (result.t_s - wall) * amd.idle_node_w();
  }
  result.energy_arm_j = arm_run.energy_j + arm_tail;
  result.energy_amd_j = amd_run.energy_j + amd_tail;
  result.energy_j = result.energy_arm_j + result.energy_amd_j;
  result.idle_tail_j = arm_tail + amd_tail;
  span.sim_window(0.0, result.t_s);
  HEC_COUNTER_INC("cluster.runs");
  HEC_COUNTER_ADD("cluster.node_runs",
                  static_cast<double>(arm_run.node_walls.size() +
                                      amd_run.node_walls.size()));
  HEC_COUNTER_ADD("cluster.sim_time_s", result.t_s);
  HEC_COUNTER_ADD("cluster.energy_arm_j", result.energy_arm_j);
  HEC_COUNTER_ADD("cluster.energy_amd_j", result.energy_amd_j);
  HEC_COUNTER_ADD("cluster.idle_tail_j", result.idle_tail_j);
  return result;
}

}  // namespace hec
