// Workload-splitting policies.
//
// MatchingScheduler is the paper's mix-and-match: model-predicted
// rate-proportional shares so all nodes finish together. EqualSplit and
// CoreProportional are the naive static policies it improves upon, and
// threshold_switch_choice reproduces the related-work baseline the paper
// argues against (Section I, citing KnightShift [42]): run entirely on
// low-power nodes while they can meet the deadline, otherwise switch
// entirely to high-performance nodes.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "hec/config/cluster_config.h"
#include "hec/config/evaluate.h"

namespace hec {

/// How a job's work units are divided between the two node types.
struct SplitAssignment {
  double units_arm = 0.0;
  double units_amd = 0.0;
};

/// A static workload-splitting policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Divides `work_units` for the given configuration. The returned shares
  /// sum to work_units; a side with zero nodes receives zero.
  virtual SplitAssignment assign(double work_units,
                                 const ClusterConfig& config) const = 0;
  virtual std::string name() const = 0;
};

/// Mix-and-match: shares proportional to model-predicted execution rates,
/// so both types finish simultaneously (Eq. 1).
class MatchingScheduler : public Scheduler {
 public:
  /// Models must outlive the scheduler.
  MatchingScheduler(const NodeTypeModel& arm_model,
                    const NodeTypeModel& amd_model);
  SplitAssignment assign(double work_units,
                         const ClusterConfig& config) const override;
  std::string name() const override { return "mix-and-match"; }

 private:
  const NodeTypeModel* arm_;
  const NodeTypeModel* amd_;
};

/// Ablation: every node receives the same share regardless of type.
class EqualSplitScheduler : public Scheduler {
 public:
  SplitAssignment assign(double work_units,
                         const ClusterConfig& config) const override;
  std::string name() const override { return "equal-split"; }
};

/// Ablation: shares proportional to aggregate core-GHz per type — a
/// hardware-spec heuristic that ignores ISA and memory/I/O differences.
class CoreProportionalScheduler : public Scheduler {
 public:
  SplitAssignment assign(double work_units,
                         const ClusterConfig& config) const override;
  std::string name() const override { return "core-proportional"; }
};

/// Related-work baseline: picks the minimum-energy *homogeneous* outcome
/// that meets the deadline, preferring the low-power side; returns nullopt
/// when neither side can meet it. `outcomes` may contain any mix of
/// configurations; only homogeneous ones are considered.
std::optional<ConfigOutcome> threshold_switch_choice(
    std::span<const ConfigOutcome> outcomes, double deadline_s);

}  // namespace hec
