// Two-job co-scheduling on disjoint node subsets.
//
// Section IV-D observes that serving n jobs from one shared cluster beats
// splitting it into n fixed slices. This module answers the operational
// follow-up: given TWO concurrent jobs with their own workloads and
// deadlines, how should the physical pool be partitioned between them so
// the total energy is minimal while both deadlines hold? Each candidate
// partition hands every job a private sub-pool; the exact
// branch-and-bound searcher then finds the job's optimal configuration
// within its sub-pool (unused nodes stay off).
#pragma once

#include <optional>
#include <string>

#include "hec/config/evaluate.h"
#include "hec/search/optimizer.h"

namespace hec {

/// One job to be placed: per-type models, size and deadline.
struct CoscheduleJob {
  const NodeTypeModel* arm_model = nullptr;
  const NodeTypeModel* amd_model = nullptr;
  double work_units = 0.0;
  double deadline_s = 0.0;
  std::string name;
};

/// A feasible partition of the pool between the two jobs.
struct CoschedulePlan {
  int arm_a = 0, amd_a = 0;  ///< sub-pool bounds handed to job A
  int arm_b = 0, amd_b = 0;  ///< remainder handed to job B
  ConfigOutcome outcome_a;   ///< job A's optimal configuration
  ConfigOutcome outcome_b;
  double total_energy_j = 0.0;
  std::size_t evaluations = 0;  ///< model evaluations spent searching
};

/// Finds the minimum-total-energy partition of (total_arm, total_amd)
/// nodes between jobs A and B. Returns nullopt when no partition lets
/// both jobs meet their deadlines. Preconditions: valid jobs (models
/// non-null, positive units/deadlines), non-negative totals.
std::optional<CoschedulePlan> coschedule_two(const CoscheduleJob& job_a,
                                             const CoscheduleJob& job_b,
                                             const NodeSpec& arm,
                                             const NodeSpec& amd,
                                             int total_arm, int total_amd);

}  // namespace hec
