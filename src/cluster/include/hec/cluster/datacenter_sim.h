// Event-driven datacenter window simulation (Fig. 10's setup, measured
// rather than computed).
//
// Jobs arrive Poisson at a dispatcher and are serviced FIFO by one
// configured cluster whose per-job service time and energy come from an
// evaluated configuration (the matching policy makes service
// deterministic up to run noise). Powered nodes draw idle power between
// jobs; the observation window closes mid-job if needed, charging the
// in-flight job's energy pro rata. The analytic window model
// (hec/queueing/window_analysis.h) must agree with this simulation —
// checked by test_datacenter_sim and bench_ext_datacenter_sim.
#pragma once

#include <cstdint>

#include "hec/config/evaluate.h"

namespace hec {

/// Window-simulation knobs.
struct DatacenterSimConfig {
  double window_s = 20.0;            ///< observation period
  double arrival_rate_per_s = 1.0;   ///< Poisson job arrivals
  double service_noise_sigma = 0.0;  ///< per-job lognormal noise
  std::uint64_t seed = 1;
};

/// Measured behaviour over one window.
struct DatacenterSimResult {
  double energy_j = 0.0;        ///< total (service + idle gaps)
  double mean_wait_s = 0.0;     ///< dispatcher queueing delay
  double mean_response_s = 0.0; ///< wait + service, completed jobs only
  double utilization = 0.0;     ///< cluster busy fraction of the window
  std::uint64_t jobs_arrived = 0;
  std::uint64_t jobs_completed = 0;
};

/// Simulates `sim.window_s` seconds of the configured cluster servicing
/// a Poisson job stream. `outcome` supplies the per-job service time and
/// energy; `powered_idle_w` the idle draw of the nodes the configuration
/// keeps on (see ConfigEvaluator::powered_idle_w).
/// Preconditions: outcome.t_s > 0, rates positive, offered load < 1.
DatacenterSimResult simulate_datacenter(const ConfigOutcome& outcome,
                                        double powered_idle_w,
                                        const DatacenterSimConfig& sim);

}  // namespace hec
