// Whole-cluster measurement runs.
//
// Stands in for the paper's cluster testbed (Table 4 validates eight ARM
// nodes plus zero or one AMD node). A job's per-type work share is divided
// equally among that type's nodes; every node executes its slice on the
// node simulator. The cluster-level job completes when the last node
// finishes; nodes that finish earlier stay powered on and accumulate idle
// energy until then — exactly the wastage the mix-and-match split is
// designed to eliminate.
#pragma once

#include <cstdint>

#include "hec/config/cluster_config.h"
#include "hec/sim/node_sim.h"
#include "hec/workloads/workload.h"

namespace hec {

/// Observables of a cluster run.
struct ClusterRunResult {
  double t_s = 0.0;          ///< job service time (max over nodes)
  double energy_j = 0.0;     ///< total, including early finishers' idle tail
  double energy_arm_j = 0.0;
  double energy_amd_j = 0.0;
  double t_arm_s = 0.0;      ///< slowest ARM node's completion
  double t_amd_s = 0.0;      ///< slowest AMD node's completion
  double idle_tail_j = 0.0;  ///< energy wasted idling after own completion
};

/// Noise/seed knobs shared by all nodes of the run.
struct ClusterRunOptions {
  std::uint64_t seed = 7;
  double noise_sigma = 0.03;
  double run_bias_sigma = 0.02;
  int chunks_per_core = 64;
};

/// Executes a job on `config`, giving the ARM side `units_arm` work units
/// and the AMD side `units_amd` (either may be zero; a side with zero
/// nodes must have zero units).
ClusterRunResult simulate_cluster(const NodeSpec& arm, const NodeSpec& amd,
                                  const Workload& workload,
                                  const ClusterConfig& config,
                                  double units_arm, double units_amd,
                                  const ClusterRunOptions& opts = {});

}  // namespace hec
