// Ordinary least-squares line fitting.
//
// Used to (a) fit SPImem against core clock frequency — the paper reports
// very strong linearity (Pearson r^2 >= 0.94, Fig. 3) and exploits it to
// interpolate memory stall cycles across P-states — and (b) measure the
// linearity of the Pareto frontier's "sweet region".
#pragma once

#include <span>

namespace hec {

/// Result of fitting y = intercept + slope * x by least squares.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;  ///< squared Pearson correlation of (x, y)
  std::size_t n = 0;

  /// Evaluates the fitted line.
  double at(double x) const { return intercept + slope * x; }
};

/// Fits y = a + b*x. Preconditions: xs.size() == ys.size(), size >= 2, and
/// the x values are not all identical.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Pearson correlation coefficient of two equally sized samples (size >= 2).
/// Returns 0 when either sample has zero variance.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace hec
