// Streaming summary statistics and validation-error metrics.
//
// Summary uses Welford's online algorithm so the simulator can accumulate
// per-event samples without storing them. RelativeError reproduces the
// paper's validation metric: mean and standard deviation of
// |predicted - measured| / measured in percent (Tables 3 and 4).
#pragma once

#include <span>

namespace hec {

/// Online mean/variance/min/max accumulator (Welford).
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile via linear interpolation on a copy of the data.
/// Preconditions: data non-empty, 0 <= p <= 100.
double percentile(std::span<const double> data, double p);

/// Relative-error accumulator in percent, the paper's validation metric.
class RelativeError {
 public:
  /// Adds |predicted - measured| / |measured| * 100. measured must be nonzero.
  void add(double predicted, double measured);

  std::size_t count() const { return errors_.count(); }
  double mean_pct() const { return errors_.mean(); }
  double stddev_pct() const { return errors_.stddev(); }
  double max_pct() const { return errors_.max(); }

 private:
  Summary errors_;
};

}  // namespace hec
