#include "hec/stats/summary.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "hec/util/expect.h"

namespace hec {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const {
  HEC_EXPECTS(n_ > 0);
  return mean_;
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const {
  HEC_EXPECTS(n_ > 0);
  return min_;
}

double Summary::max() const {
  HEC_EXPECTS(n_ > 0);
  return max_;
}

double percentile(std::span<const double> data, double p) {
  HEC_EXPECTS(!data.empty());
  HEC_EXPECTS(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

void RelativeError::add(double predicted, double measured) {
  HEC_EXPECTS(measured != 0.0);
  errors_.add(std::abs(predicted - measured) / std::abs(measured) * 100.0);
}

}  // namespace hec
