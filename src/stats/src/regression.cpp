#include "hec/stats/regression.h"

#include <cmath>

#include "hec/util/expect.h"

namespace hec {

namespace {
struct Moments {
  double mean_x = 0.0, mean_y = 0.0;
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
};

Moments moments(std::span<const double> xs, std::span<const double> ys) {
  HEC_EXPECTS(xs.size() == ys.size());
  HEC_EXPECTS(xs.size() >= 2);
  Moments m;
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    m.mean_x += xs[i];
    m.mean_y += ys[i];
  }
  m.mean_x /= n;
  m.mean_y /= n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - m.mean_x;
    const double dy = ys[i] - m.mean_y;
    m.sxx += dx * dx;
    m.syy += dy * dy;
    m.sxy += dx * dy;
  }
  return m;
}
}  // namespace

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  const Moments m = moments(xs, ys);
  HEC_EXPECTS(m.sxx > 0.0);
  LinearFit fit;
  fit.n = xs.size();
  fit.slope = m.sxy / m.sxx;
  fit.intercept = m.mean_y - fit.slope * m.mean_x;
  // r^2 = explained variance fraction; a perfectly flat y is a perfect fit.
  fit.r_squared = m.syy == 0.0 ? 1.0 : (m.sxy * m.sxy) / (m.sxx * m.syy);
  return fit;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const Moments m = moments(xs, ys);
  const double denom = std::sqrt(m.sxx * m.syy);
  return denom == 0.0 ? 0.0 : m.sxy / denom;
}

}  // namespace hec
