// M/D/1 queueing model (Section IV-E).
//
// Jobs arrive Poisson (rate lambda) at a dispatcher and are serviced one
// at a time with a deterministic service time fixed by the cluster
// configuration (the matching policy makes service deterministic). The
// Pollaczek-Khinchine formula for deterministic service gives the mean
// queueing delay Wq = rho * S / (2 (1 - rho)), with utilisation
// rho = lambda * S.
#pragma once

namespace hec {

/// Mean-value M/D/1 results for one (arrival rate, service time) pair.
class MD1Queue {
 public:
  /// Preconditions: arrival_rate >= 0, service_s > 0, utilisation < 1.
  MD1Queue(double arrival_rate_per_s, double service_s);

  double arrival_rate_per_s() const { return lambda_; }
  double service_s() const { return service_; }

  /// rho = lambda * S in [0, 1).
  double utilization() const { return lambda_ * service_; }
  /// Mean time spent waiting in the dispatcher queue.
  double mean_wait_s() const;
  /// Mean response time: wait + service.
  double mean_response_s() const;
  /// Mean number of jobs in the system (Little's law).
  double mean_jobs_in_system() const;

  /// The arrival rate that produces `utilization` for a given service
  /// time (utilization in [0, 1)).
  static double rate_for_utilization(double utilization, double service_s);

 private:
  double lambda_;
  double service_;
};

}  // namespace hec
