// Queueing-aware energy over an observation window (Fig. 10).
//
// Extends the Pareto analysis from per-job service energy to a stream of
// jobs observed for a fixed window: each configuration serves jobs at its
// deterministic service time; the target utilisation fixes the arrival
// rate; energy over the window is the jobs' service energy plus the idle
// draw of the powered-on nodes between jobs (unused nodes are off). The
// response time axis includes the M/D/1 dispatcher wait.
#pragma once

#include <span>
#include <vector>

#include "hec/config/evaluate.h"
#include "hec/pareto/frontier.h"

namespace hec {

/// One configuration's position in the response-time/window-energy plane.
struct QueueingPoint {
  std::size_t config_index = 0;   ///< into the caller's outcome array
  double response_s = 0.0;        ///< mean per-job response (wait + service)
  double window_energy_j = 0.0;   ///< energy over the observation window
  double jobs_served = 0.0;
};

/// Parameters of the windowed analysis.
struct WindowOptions {
  double window_s = 20.0;      ///< observation period (paper: 20 s)
  double utilization = 0.25;   ///< target rho in (0, 1)
};

/// Evaluates every configuration outcome under the windowed M/D/1 model.
/// `powered_idle_w(i)` must return the idle power of the nodes outcome i
/// keeps on (see ConfigEvaluator::powered_idle_w).
std::vector<QueueingPoint> window_points(
    std::span<const ConfigOutcome> outcomes,
    const std::vector<double>& powered_idle_w, const WindowOptions& opts);

/// Response-time/energy Pareto frontier of the windowed points; tags are
/// config indices.
std::vector<TimeEnergyPoint> window_frontier(
    std::span<const QueueingPoint> points);

}  // namespace hec
