// Event-driven dispatcher simulation.
//
// Validates the closed-form queueing results (M/D/1 Pollaczek-Khinchine,
// Kingman's G/G/1 approximation) empirically: jobs arrive at a single
// dispatcher with configurable inter-arrival and service distributions
// and are served FIFO one at a time, exactly the paper's Section IV-E
// setup. The tests compare simulated mean waits against the formulas —
// a substrate-level check that Fig. 10's queueing layer is sound.
#pragma once

#include <cstdint>

namespace hec {

/// Inter-arrival / service distribution shapes for the dispatcher.
enum class QueueDistribution {
  kDeterministic,  ///< constant
  kExponential,    ///< memoryless (the M of M/D/1)
  kUniform,        ///< U(0.5 mean, 1.5 mean): mild variance
  kHyperExp,       ///< 2-phase hyperexponential: bursty (cv^2 > 1)
};

/// Squared coefficient of variation of a distribution shape (feeds the
/// Kingman comparison).
double squared_cv(QueueDistribution dist);

/// Simulation setup: arrival rate, mean service time, shapes, length.
struct QueueSimConfig {
  double arrival_rate_per_s = 1.0;
  double mean_service_s = 0.1;
  QueueDistribution arrivals = QueueDistribution::kExponential;
  QueueDistribution service = QueueDistribution::kDeterministic;
  std::uint64_t jobs = 100000;
  std::uint64_t warmup_jobs = 1000;  ///< excluded from the statistics
  std::uint64_t seed = 1;
};

/// Aggregated results over the measured jobs.
struct QueueSimResult {
  double mean_wait_s = 0.0;
  double mean_response_s = 0.0;
  double max_wait_s = 0.0;
  double utilization = 0.0;  ///< busy fraction of the server
  std::uint64_t jobs_measured = 0;
};

/// Runs the single-server FIFO simulation. Preconditions: rates/means
/// positive, offered load below 1, jobs > warmup_jobs.
QueueSimResult simulate_queue(const QueueSimConfig& config);

}  // namespace hec
