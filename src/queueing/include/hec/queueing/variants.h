// Queueing-model variants beyond the paper's M/D/1.
//
// The paper fixes M/D/1 — Poisson arrivals, deterministic service (the
// matching policy makes service times deterministic). Real dispatchers
// see burstier arrivals and residual service variance; these variants
// quantify how sensitive the Fig. 10 conclusions are to that choice:
//   * MM1Queue: exponential service (the classic worst-ish case).
//   * GG1Kingman: Kingman's heavy-traffic approximation parameterised by
//     the squared coefficients of variation of inter-arrival (ca2) and
//     service (cs2) times. M/D/1 is (ca2=1, cs2=0); M/M/1 is (1, 1).
#pragma once

namespace hec {

/// M/M/1 mean-value results.
class MM1Queue {
 public:
  /// Preconditions: arrival_rate >= 0, service_s > 0, utilisation < 1.
  MM1Queue(double arrival_rate_per_s, double service_s);

  double utilization() const { return lambda_ * service_; }
  double mean_wait_s() const;
  double mean_response_s() const;

 private:
  double lambda_;
  double service_;
};

/// Kingman's G/G/1 approximation:
///   Wq ~= rho/(1-rho) * (ca2 + cs2)/2 * S
class GG1Kingman {
 public:
  /// Preconditions: arrival_rate >= 0, service_s > 0, utilisation < 1,
  /// ca2 >= 0, cs2 >= 0.
  GG1Kingman(double arrival_rate_per_s, double service_s, double ca2,
             double cs2);

  double utilization() const { return lambda_ * service_; }
  double mean_wait_s() const;
  double mean_response_s() const;

 private:
  double lambda_;
  double service_;
  double ca2_;
  double cs2_;
};

}  // namespace hec
