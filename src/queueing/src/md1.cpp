#include "hec/queueing/md1.h"

#include "hec/util/expect.h"

namespace hec {

MD1Queue::MD1Queue(double arrival_rate_per_s, double service_s)
    : lambda_(arrival_rate_per_s), service_(service_s) {
  HEC_EXPECTS(arrival_rate_per_s >= 0.0);
  HEC_EXPECTS(service_s > 0.0);
  HEC_EXPECTS(arrival_rate_per_s * service_s < 1.0);
}

double MD1Queue::mean_wait_s() const {
  const double rho = utilization();
  // Pollaczek-Khinchine with zero service variance.
  return rho * service_ / (2.0 * (1.0 - rho));
}

double MD1Queue::mean_response_s() const {
  return mean_wait_s() + service_;
}

double MD1Queue::mean_jobs_in_system() const {
  return lambda_ * mean_response_s();
}

double MD1Queue::rate_for_utilization(double utilization,
                                      double service_s) {
  HEC_EXPECTS(utilization >= 0.0 && utilization < 1.0);
  HEC_EXPECTS(service_s > 0.0);
  return utilization / service_s;
}

}  // namespace hec
