#include "hec/queueing/queue_sim.h"

#include <algorithm>

#include "hec/util/expect.h"
#include "hec/util/rng.h"

namespace hec {

namespace {
/// Hyperexponential branch parameters chosen for cv^2 = 4: probability p
/// picks a fast phase, 1-p a slow one, balanced to the requested mean.
constexpr double kHyperP = 0.887;  // => cv^2 ~ 4 with mean preserved

double draw(QueueDistribution dist, double mean, Rng& rng) {
  switch (dist) {
    case QueueDistribution::kDeterministic:
      return mean;
    case QueueDistribution::kExponential:
      return rng.exponential(1.0 / mean);
    case QueueDistribution::kUniform:
      return rng.uniform(0.5 * mean, 1.5 * mean);
    case QueueDistribution::kHyperExp: {
      // Two exponential phases with rates tuned so the mixture keeps the
      // mean and cv^2 = squared_cv(kHyperExp).
      const double p = kHyperP;
      const double mean_fast = mean / (2.0 * p);
      const double mean_slow = mean / (2.0 * (1.0 - p));
      const double chosen = rng.uniform() < p ? mean_fast : mean_slow;
      return rng.exponential(1.0 / chosen);
    }
  }
  return mean;
}
}  // namespace

double squared_cv(QueueDistribution dist) {
  switch (dist) {
    case QueueDistribution::kDeterministic:
      return 0.0;
    case QueueDistribution::kExponential:
      return 1.0;
    case QueueDistribution::kUniform:
      // Var(U(a,b)) = (b-a)^2/12 with a = m/2, b = 3m/2 -> m^2/12.
      return 1.0 / 12.0;
    case QueueDistribution::kHyperExp: {
      // Mixture of exponentials: E[X^2] = p*2*mf^2 + (1-p)*2*ms^2.
      const double p = kHyperP;
      const double mf = 1.0 / (2.0 * p);
      const double ms = 1.0 / (2.0 * (1.0 - p));
      const double second = p * 2.0 * mf * mf + (1.0 - p) * 2.0 * ms * ms;
      return second - 1.0;  // mean normalised to 1
    }
  }
  return 0.0;
}

QueueSimResult simulate_queue(const QueueSimConfig& config) {
  HEC_EXPECTS(config.arrival_rate_per_s > 0.0);
  HEC_EXPECTS(config.mean_service_s > 0.0);
  HEC_EXPECTS(config.arrival_rate_per_s * config.mean_service_s < 1.0);
  HEC_EXPECTS(config.jobs > config.warmup_jobs);

  Rng arrivals_rng(config.seed);
  Rng service_rng = arrivals_rng.split(0x5e11ce);

  const double mean_interarrival = 1.0 / config.arrival_rate_per_s;
  double clock = 0.0;        // arrival clock
  double server_free = 0.0;  // when the server next frees up
  double busy_s = 0.0;

  QueueSimResult result;
  double wait_sum = 0.0, response_sum = 0.0;
  for (std::uint64_t i = 0; i < config.jobs; ++i) {
    clock += draw(config.arrivals, mean_interarrival, arrivals_rng);
    const double start = std::max(clock, server_free);
    const double service =
        draw(config.service, config.mean_service_s, service_rng);
    server_free = start + service;
    busy_s += service;
    if (i >= config.warmup_jobs) {
      const double wait = start - clock;
      wait_sum += wait;
      response_sum += wait + service;
      result.max_wait_s = std::max(result.max_wait_s, wait);
      ++result.jobs_measured;
    }
  }
  HEC_ENSURES(result.jobs_measured > 0);
  result.mean_wait_s = wait_sum / static_cast<double>(result.jobs_measured);
  result.mean_response_s =
      response_sum / static_cast<double>(result.jobs_measured);
  result.utilization = busy_s / server_free;
  return result;
}

}  // namespace hec
