#include "hec/queueing/variants.h"

#include "hec/util/expect.h"

namespace hec {

MM1Queue::MM1Queue(double arrival_rate_per_s, double service_s)
    : lambda_(arrival_rate_per_s), service_(service_s) {
  HEC_EXPECTS(arrival_rate_per_s >= 0.0);
  HEC_EXPECTS(service_s > 0.0);
  HEC_EXPECTS(arrival_rate_per_s * service_s < 1.0);
}

double MM1Queue::mean_wait_s() const {
  const double rho = utilization();
  return rho * service_ / (1.0 - rho);
}

double MM1Queue::mean_response_s() const {
  return mean_wait_s() + service_;
}

GG1Kingman::GG1Kingman(double arrival_rate_per_s, double service_s,
                       double ca2, double cs2)
    : lambda_(arrival_rate_per_s),
      service_(service_s),
      ca2_(ca2),
      cs2_(cs2) {
  HEC_EXPECTS(arrival_rate_per_s >= 0.0);
  HEC_EXPECTS(service_s > 0.0);
  HEC_EXPECTS(arrival_rate_per_s * service_s < 1.0);
  HEC_EXPECTS(ca2 >= 0.0 && cs2 >= 0.0);
}

double GG1Kingman::mean_wait_s() const {
  const double rho = utilization();
  return rho / (1.0 - rho) * (ca2_ + cs2_) / 2.0 * service_;
}

double GG1Kingman::mean_response_s() const {
  return mean_wait_s() + service_;
}

}  // namespace hec
