#include "hec/queueing/window_analysis.h"

#include "hec/queueing/md1.h"
#include "hec/util/expect.h"

namespace hec {

std::vector<QueueingPoint> window_points(
    std::span<const ConfigOutcome> outcomes,
    const std::vector<double>& powered_idle_w, const WindowOptions& opts) {
  HEC_EXPECTS(outcomes.size() == powered_idle_w.size());
  HEC_EXPECTS(opts.window_s > 0.0);
  HEC_EXPECTS(opts.utilization > 0.0 && opts.utilization < 1.0);

  std::vector<QueueingPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ConfigOutcome& outcome = outcomes[i];
    HEC_EXPECTS(outcome.t_s > 0.0);
    const double lambda =
        MD1Queue::rate_for_utilization(opts.utilization, outcome.t_s);
    const MD1Queue queue(lambda, outcome.t_s);

    QueueingPoint p;
    p.config_index = i;
    p.response_s = queue.mean_response_s();
    p.jobs_served = lambda * opts.window_s;
    // Service energy for the jobs plus idle draw while powered-on nodes
    // sit between jobs. The busy fraction is exactly the utilisation.
    const double busy_s = p.jobs_served * outcome.t_s;
    HEC_ENSURES(busy_s <= opts.window_s * (1.0 + 1e-9));
    p.window_energy_j = p.jobs_served * outcome.energy_j +
                        (opts.window_s - busy_s) * powered_idle_w[i];
    points.push_back(p);
  }
  return points;
}

std::vector<TimeEnergyPoint> window_frontier(
    std::span<const QueueingPoint> points) {
  std::vector<TimeEnergyPoint> te;
  te.reserve(points.size());
  for (const auto& p : points) {
    te.push_back(TimeEnergyPoint{p.response_s, p.window_energy_j,
                                 p.config_index});
  }
  return pareto_frontier(te);
}

}  // namespace hec
