# Empty dependencies file for deadline_provisioning.
# This may be replaced when dependencies are built.
