file(REMOVE_RECURSE
  "CMakeFiles/deadline_provisioning.dir/deadline_provisioning.cpp.o"
  "CMakeFiles/deadline_provisioning.dir/deadline_provisioning.cpp.o.d"
  "deadline_provisioning"
  "deadline_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
