# Empty compiler generated dependencies file for workload_kernels_demo.
# This may be replaced when dependencies are built.
