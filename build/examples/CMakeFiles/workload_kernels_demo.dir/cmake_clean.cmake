file(REMOVE_RECURSE
  "CMakeFiles/workload_kernels_demo.dir/workload_kernels_demo.cpp.o"
  "CMakeFiles/workload_kernels_demo.dir/workload_kernels_demo.cpp.o.d"
  "workload_kernels_demo"
  "workload_kernels_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_kernels_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
