# Empty compiler generated dependencies file for model_cache.
# This may be replaced when dependencies are built.
