file(REMOVE_RECURSE
  "CMakeFiles/model_cache.dir/model_cache.cpp.o"
  "CMakeFiles/model_cache.dir/model_cache.cpp.o.d"
  "model_cache"
  "model_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
