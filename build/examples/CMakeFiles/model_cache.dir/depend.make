# Empty dependencies file for model_cache.
# This may be replaced when dependencies are built.
