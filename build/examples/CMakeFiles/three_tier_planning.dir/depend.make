# Empty dependencies file for three_tier_planning.
# This may be replaced when dependencies are built.
