file(REMOVE_RECURSE
  "CMakeFiles/three_tier_planning.dir/three_tier_planning.cpp.o"
  "CMakeFiles/three_tier_planning.dir/three_tier_planning.cpp.o.d"
  "three_tier_planning"
  "three_tier_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_tier_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
