
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pareto/src/frontier.cpp" "src/pareto/CMakeFiles/hec_pareto.dir/src/frontier.cpp.o" "gcc" "src/pareto/CMakeFiles/hec_pareto.dir/src/frontier.cpp.o.d"
  "/root/repo/src/pareto/src/hypervolume.cpp" "src/pareto/CMakeFiles/hec_pareto.dir/src/hypervolume.cpp.o" "gcc" "src/pareto/CMakeFiles/hec_pareto.dir/src/hypervolume.cpp.o.d"
  "/root/repo/src/pareto/src/sweet_region.cpp" "src/pareto/CMakeFiles/hec_pareto.dir/src/sweet_region.cpp.o" "gcc" "src/pareto/CMakeFiles/hec_pareto.dir/src/sweet_region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hec_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
