# Empty compiler generated dependencies file for hec_pareto.
# This may be replaced when dependencies are built.
