file(REMOVE_RECURSE
  "libhec_pareto.a"
)
