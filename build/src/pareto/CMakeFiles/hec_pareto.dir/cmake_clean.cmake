file(REMOVE_RECURSE
  "CMakeFiles/hec_pareto.dir/src/frontier.cpp.o"
  "CMakeFiles/hec_pareto.dir/src/frontier.cpp.o.d"
  "CMakeFiles/hec_pareto.dir/src/hypervolume.cpp.o"
  "CMakeFiles/hec_pareto.dir/src/hypervolume.cpp.o.d"
  "CMakeFiles/hec_pareto.dir/src/sweet_region.cpp.o"
  "CMakeFiles/hec_pareto.dir/src/sweet_region.cpp.o.d"
  "libhec_pareto.a"
  "libhec_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
