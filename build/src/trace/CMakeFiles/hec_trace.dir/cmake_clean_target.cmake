file(REMOVE_RECURSE
  "libhec_trace.a"
)
