# Empty compiler generated dependencies file for hec_trace.
# This may be replaced when dependencies are built.
