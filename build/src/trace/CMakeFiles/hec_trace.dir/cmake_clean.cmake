file(REMOVE_RECURSE
  "CMakeFiles/hec_trace.dir/src/trace.cpp.o"
  "CMakeFiles/hec_trace.dir/src/trace.cpp.o.d"
  "libhec_trace.a"
  "libhec_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
