file(REMOVE_RECURSE
  "libhec_util.a"
)
