# Empty dependencies file for hec_util.
# This may be replaced when dependencies are built.
