file(REMOVE_RECURSE
  "CMakeFiles/hec_util.dir/src/rng.cpp.o"
  "CMakeFiles/hec_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/hec_util.dir/src/zipf.cpp.o"
  "CMakeFiles/hec_util.dir/src/zipf.cpp.o.d"
  "libhec_util.a"
  "libhec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
