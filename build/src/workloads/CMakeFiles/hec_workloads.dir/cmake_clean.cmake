file(REMOVE_RECURSE
  "CMakeFiles/hec_workloads.dir/src/blackscholes.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/blackscholes.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/encoder.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/encoder.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/ep_kernel.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/ep_kernel.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/julius_decoder.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/julius_decoder.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/kvstore.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/kvstore.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/registry.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/registry.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/rsa.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/rsa.cpp.o.d"
  "CMakeFiles/hec_workloads.dir/src/trace_builders.cpp.o"
  "CMakeFiles/hec_workloads.dir/src/trace_builders.cpp.o.d"
  "libhec_workloads.a"
  "libhec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
