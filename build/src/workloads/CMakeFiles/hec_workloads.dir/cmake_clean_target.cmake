file(REMOVE_RECURSE
  "libhec_workloads.a"
)
