
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/src/blackscholes.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/blackscholes.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/blackscholes.cpp.o.d"
  "/root/repo/src/workloads/src/encoder.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/encoder.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/encoder.cpp.o.d"
  "/root/repo/src/workloads/src/ep_kernel.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/ep_kernel.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/ep_kernel.cpp.o.d"
  "/root/repo/src/workloads/src/julius_decoder.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/julius_decoder.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/julius_decoder.cpp.o.d"
  "/root/repo/src/workloads/src/kvstore.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/kvstore.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/kvstore.cpp.o.d"
  "/root/repo/src/workloads/src/registry.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/registry.cpp.o.d"
  "/root/repo/src/workloads/src/rsa.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/rsa.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/rsa.cpp.o.d"
  "/root/repo/src/workloads/src/trace_builders.cpp" "src/workloads/CMakeFiles/hec_workloads.dir/src/trace_builders.cpp.o" "gcc" "src/workloads/CMakeFiles/hec_workloads.dir/src/trace_builders.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hec_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hec_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
