# Empty dependencies file for hec_workloads.
# This may be replaced when dependencies are built.
