file(REMOVE_RECURSE
  "libhec_report.a"
)
