# Empty compiler generated dependencies file for hec_report.
# This may be replaced when dependencies are built.
