file(REMOVE_RECURSE
  "CMakeFiles/hec_report.dir/src/markdown_report.cpp.o"
  "CMakeFiles/hec_report.dir/src/markdown_report.cpp.o.d"
  "libhec_report.a"
  "libhec_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
