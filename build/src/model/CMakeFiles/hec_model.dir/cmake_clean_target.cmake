file(REMOVE_RECURSE
  "libhec_model.a"
)
