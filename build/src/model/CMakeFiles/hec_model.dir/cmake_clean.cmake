file(REMOVE_RECURSE
  "CMakeFiles/hec_model.dir/src/bottleneck.cpp.o"
  "CMakeFiles/hec_model.dir/src/bottleneck.cpp.o.d"
  "CMakeFiles/hec_model.dir/src/characterize.cpp.o"
  "CMakeFiles/hec_model.dir/src/characterize.cpp.o.d"
  "CMakeFiles/hec_model.dir/src/inputs_io.cpp.o"
  "CMakeFiles/hec_model.dir/src/inputs_io.cpp.o.d"
  "CMakeFiles/hec_model.dir/src/matching.cpp.o"
  "CMakeFiles/hec_model.dir/src/matching.cpp.o.d"
  "CMakeFiles/hec_model.dir/src/multi_matching.cpp.o"
  "CMakeFiles/hec_model.dir/src/multi_matching.cpp.o.d"
  "CMakeFiles/hec_model.dir/src/node_model.cpp.o"
  "CMakeFiles/hec_model.dir/src/node_model.cpp.o.d"
  "libhec_model.a"
  "libhec_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
