# Empty compiler generated dependencies file for hec_model.
# This may be replaced when dependencies are built.
