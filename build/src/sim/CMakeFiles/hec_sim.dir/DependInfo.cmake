
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/event_queue.cpp" "src/sim/CMakeFiles/hec_sim.dir/src/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/hec_sim.dir/src/event_queue.cpp.o.d"
  "/root/repo/src/sim/src/memory_model.cpp" "src/sim/CMakeFiles/hec_sim.dir/src/memory_model.cpp.o" "gcc" "src/sim/CMakeFiles/hec_sim.dir/src/memory_model.cpp.o.d"
  "/root/repo/src/sim/src/nic_model.cpp" "src/sim/CMakeFiles/hec_sim.dir/src/nic_model.cpp.o" "gcc" "src/sim/CMakeFiles/hec_sim.dir/src/nic_model.cpp.o.d"
  "/root/repo/src/sim/src/node_sim.cpp" "src/sim/CMakeFiles/hec_sim.dir/src/node_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hec_sim.dir/src/node_sim.cpp.o.d"
  "/root/repo/src/sim/src/power_meter.cpp" "src/sim/CMakeFiles/hec_sim.dir/src/power_meter.cpp.o" "gcc" "src/sim/CMakeFiles/hec_sim.dir/src/power_meter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hec_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
