file(REMOVE_RECURSE
  "libhec_sim.a"
)
