# Empty compiler generated dependencies file for hec_sim.
# This may be replaced when dependencies are built.
