file(REMOVE_RECURSE
  "CMakeFiles/hec_sim.dir/src/event_queue.cpp.o"
  "CMakeFiles/hec_sim.dir/src/event_queue.cpp.o.d"
  "CMakeFiles/hec_sim.dir/src/memory_model.cpp.o"
  "CMakeFiles/hec_sim.dir/src/memory_model.cpp.o.d"
  "CMakeFiles/hec_sim.dir/src/nic_model.cpp.o"
  "CMakeFiles/hec_sim.dir/src/nic_model.cpp.o.d"
  "CMakeFiles/hec_sim.dir/src/node_sim.cpp.o"
  "CMakeFiles/hec_sim.dir/src/node_sim.cpp.o.d"
  "CMakeFiles/hec_sim.dir/src/power_meter.cpp.o"
  "CMakeFiles/hec_sim.dir/src/power_meter.cpp.o.d"
  "libhec_sim.a"
  "libhec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
