file(REMOVE_RECURSE
  "CMakeFiles/hec_io.dir/src/csv.cpp.o"
  "CMakeFiles/hec_io.dir/src/csv.cpp.o.d"
  "CMakeFiles/hec_io.dir/src/gnuplot.cpp.o"
  "CMakeFiles/hec_io.dir/src/gnuplot.cpp.o.d"
  "CMakeFiles/hec_io.dir/src/table.cpp.o"
  "CMakeFiles/hec_io.dir/src/table.cpp.o.d"
  "libhec_io.a"
  "libhec_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
