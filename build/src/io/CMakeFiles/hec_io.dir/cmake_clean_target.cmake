file(REMOVE_RECURSE
  "libhec_io.a"
)
