# Empty dependencies file for hec_io.
# This may be replaced when dependencies are built.
