# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("hw")
subdirs("parallel")
subdirs("stats")
subdirs("io")
subdirs("sim")
subdirs("trace")
subdirs("workloads")
subdirs("model")
subdirs("config")
subdirs("pareto")
subdirs("search")
subdirs("report")
subdirs("queueing")
subdirs("cluster")
