file(REMOVE_RECURSE
  "CMakeFiles/hec_search.dir/src/optimizer.cpp.o"
  "CMakeFiles/hec_search.dir/src/optimizer.cpp.o.d"
  "libhec_search.a"
  "libhec_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
