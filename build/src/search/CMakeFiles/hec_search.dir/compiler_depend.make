# Empty compiler generated dependencies file for hec_search.
# This may be replaced when dependencies are built.
