file(REMOVE_RECURSE
  "libhec_search.a"
)
