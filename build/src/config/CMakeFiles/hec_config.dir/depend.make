# Empty dependencies file for hec_config.
# This may be replaced when dependencies are built.
