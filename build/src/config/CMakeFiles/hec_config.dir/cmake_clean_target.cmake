file(REMOVE_RECURSE
  "libhec_config.a"
)
