file(REMOVE_RECURSE
  "CMakeFiles/hec_config.dir/src/budget.cpp.o"
  "CMakeFiles/hec_config.dir/src/budget.cpp.o.d"
  "CMakeFiles/hec_config.dir/src/enumerate.cpp.o"
  "CMakeFiles/hec_config.dir/src/enumerate.cpp.o.d"
  "CMakeFiles/hec_config.dir/src/evaluate.cpp.o"
  "CMakeFiles/hec_config.dir/src/evaluate.cpp.o.d"
  "CMakeFiles/hec_config.dir/src/multi_space.cpp.o"
  "CMakeFiles/hec_config.dir/src/multi_space.cpp.o.d"
  "libhec_config.a"
  "libhec_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
