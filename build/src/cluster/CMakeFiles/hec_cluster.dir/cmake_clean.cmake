file(REMOVE_RECURSE
  "CMakeFiles/hec_cluster.dir/src/cluster_sim.cpp.o"
  "CMakeFiles/hec_cluster.dir/src/cluster_sim.cpp.o.d"
  "CMakeFiles/hec_cluster.dir/src/coscheduler.cpp.o"
  "CMakeFiles/hec_cluster.dir/src/coscheduler.cpp.o.d"
  "CMakeFiles/hec_cluster.dir/src/datacenter_sim.cpp.o"
  "CMakeFiles/hec_cluster.dir/src/datacenter_sim.cpp.o.d"
  "CMakeFiles/hec_cluster.dir/src/schedulers.cpp.o"
  "CMakeFiles/hec_cluster.dir/src/schedulers.cpp.o.d"
  "libhec_cluster.a"
  "libhec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
