file(REMOVE_RECURSE
  "libhec_cluster.a"
)
