# Empty compiler generated dependencies file for hec_cluster.
# This may be replaced when dependencies are built.
