file(REMOVE_RECURSE
  "libhec_queueing.a"
)
