# Empty compiler generated dependencies file for hec_queueing.
# This may be replaced when dependencies are built.
