file(REMOVE_RECURSE
  "CMakeFiles/hec_queueing.dir/src/md1.cpp.o"
  "CMakeFiles/hec_queueing.dir/src/md1.cpp.o.d"
  "CMakeFiles/hec_queueing.dir/src/queue_sim.cpp.o"
  "CMakeFiles/hec_queueing.dir/src/queue_sim.cpp.o.d"
  "CMakeFiles/hec_queueing.dir/src/variants.cpp.o"
  "CMakeFiles/hec_queueing.dir/src/variants.cpp.o.d"
  "CMakeFiles/hec_queueing.dir/src/window_analysis.cpp.o"
  "CMakeFiles/hec_queueing.dir/src/window_analysis.cpp.o.d"
  "libhec_queueing.a"
  "libhec_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
