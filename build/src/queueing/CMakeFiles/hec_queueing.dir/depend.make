# Empty dependencies file for hec_queueing.
# This may be replaced when dependencies are built.
