file(REMOVE_RECURSE
  "CMakeFiles/hec_parallel.dir/src/thread_pool.cpp.o"
  "CMakeFiles/hec_parallel.dir/src/thread_pool.cpp.o.d"
  "libhec_parallel.a"
  "libhec_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
