file(REMOVE_RECURSE
  "libhec_parallel.a"
)
