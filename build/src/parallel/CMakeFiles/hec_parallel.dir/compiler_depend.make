# Empty compiler generated dependencies file for hec_parallel.
# This may be replaced when dependencies are built.
