file(REMOVE_RECURSE
  "libhec_hw.a"
)
