# Empty dependencies file for hec_hw.
# This may be replaced when dependencies are built.
