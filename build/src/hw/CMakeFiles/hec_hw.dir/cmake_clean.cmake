file(REMOVE_RECURSE
  "CMakeFiles/hec_hw.dir/src/catalog.cpp.o"
  "CMakeFiles/hec_hw.dir/src/catalog.cpp.o.d"
  "CMakeFiles/hec_hw.dir/src/node_spec.cpp.o"
  "CMakeFiles/hec_hw.dir/src/node_spec.cpp.o.d"
  "libhec_hw.a"
  "libhec_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
