file(REMOVE_RECURSE
  "CMakeFiles/hec_stats.dir/src/regression.cpp.o"
  "CMakeFiles/hec_stats.dir/src/regression.cpp.o.d"
  "CMakeFiles/hec_stats.dir/src/summary.cpp.o"
  "CMakeFiles/hec_stats.dir/src/summary.cpp.o.d"
  "libhec_stats.a"
  "libhec_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hec_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
