file(REMOVE_RECURSE
  "libhec_stats.a"
)
