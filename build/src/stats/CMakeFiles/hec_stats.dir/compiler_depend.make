# Empty compiler generated dependencies file for hec_stats.
# This may be replaced when dependencies are built.
