file(REMOVE_RECURSE
  "CMakeFiles/hecsim_report.dir/hecsim_report.cpp.o"
  "CMakeFiles/hecsim_report.dir/hecsim_report.cpp.o.d"
  "hecsim_report"
  "hecsim_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecsim_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
