# Empty dependencies file for hecsim_report.
# This may be replaced when dependencies are built.
