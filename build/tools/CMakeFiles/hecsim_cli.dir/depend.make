# Empty dependencies file for hecsim_cli.
# This may be replaced when dependencies are built.
