file(REMOVE_RECURSE
  "CMakeFiles/hecsim_cli.dir/hecsim_cli.cpp.o"
  "CMakeFiles/hecsim_cli.dir/hecsim_cli.cpp.o.d"
  "hecsim_cli"
  "hecsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hecsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
