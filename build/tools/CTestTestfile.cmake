# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke_ep "/root/repo/build/tools/hecsim_cli" "EP" "120")
set_tests_properties(cli_smoke_ep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_memcached_budget "/root/repo/build/tools/hecsim_cli" "memcached" "100" "--budget" "500" "--method" "bnb")
set_tests_properties(cli_smoke_memcached_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_smoke_greedy "/root/repo/build/tools/hecsim_cli" "blackscholes" "400" "--method" "greedy" "--max-arm" "6" "--max-amd" "4")
set_tests_properties(cli_smoke_greedy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_unknown_workload "/root/repo/build/tools/hecsim_cli" "nginx" "100")
set_tests_properties(cli_rejects_unknown_workload PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/hecsim_cli" "--help")
set_tests_properties(cli_usage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(report_smoke "/root/repo/build/tools/hecsim_report" "memcached" "--out" "/root/repo/build/tools/memcached_report.md" "--max-arm" "4" "--max-amd" "4")
set_tests_properties(report_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(report_rejects_unknown "/root/repo/build/tools/hecsim_report" "nginx")
set_tests_properties(report_rejects_unknown PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
