file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_extensions.dir/test_kernel_extensions.cpp.o"
  "CMakeFiles/test_kernel_extensions.dir/test_kernel_extensions.cpp.o.d"
  "test_kernel_extensions"
  "test_kernel_extensions.pdb"
  "test_kernel_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
