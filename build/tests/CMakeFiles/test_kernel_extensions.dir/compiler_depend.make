# Empty compiler generated dependencies file for test_kernel_extensions.
# This may be replaced when dependencies are built.
