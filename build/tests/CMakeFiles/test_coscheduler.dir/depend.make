# Empty dependencies file for test_coscheduler.
# This may be replaced when dependencies are built.
