file(REMOVE_RECURSE
  "CMakeFiles/test_coscheduler.dir/test_coscheduler.cpp.o"
  "CMakeFiles/test_coscheduler.dir/test_coscheduler.cpp.o.d"
  "test_coscheduler"
  "test_coscheduler.pdb"
  "test_coscheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coscheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
