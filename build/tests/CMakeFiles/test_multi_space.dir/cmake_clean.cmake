file(REMOVE_RECURSE
  "CMakeFiles/test_multi_space.dir/test_multi_space.cpp.o"
  "CMakeFiles/test_multi_space.dir/test_multi_space.cpp.o.d"
  "test_multi_space"
  "test_multi_space.pdb"
  "test_multi_space[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
