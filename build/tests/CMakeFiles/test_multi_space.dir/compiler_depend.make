# Empty compiler generated dependencies file for test_multi_space.
# This may be replaced when dependencies are built.
