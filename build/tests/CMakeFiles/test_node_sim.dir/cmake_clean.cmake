file(REMOVE_RECURSE
  "CMakeFiles/test_node_sim.dir/test_node_sim.cpp.o"
  "CMakeFiles/test_node_sim.dir/test_node_sim.cpp.o.d"
  "test_node_sim"
  "test_node_sim.pdb"
  "test_node_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
