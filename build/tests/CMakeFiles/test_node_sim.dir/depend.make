# Empty dependencies file for test_node_sim.
# This may be replaced when dependencies are built.
