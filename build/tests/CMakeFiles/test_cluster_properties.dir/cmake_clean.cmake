file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_properties.dir/test_cluster_properties.cpp.o"
  "CMakeFiles/test_cluster_properties.dir/test_cluster_properties.cpp.o.d"
  "test_cluster_properties"
  "test_cluster_properties.pdb"
  "test_cluster_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
