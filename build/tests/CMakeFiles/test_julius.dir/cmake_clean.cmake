file(REMOVE_RECURSE
  "CMakeFiles/test_julius.dir/test_julius.cpp.o"
  "CMakeFiles/test_julius.dir/test_julius.cpp.o.d"
  "test_julius"
  "test_julius.pdb"
  "test_julius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_julius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
