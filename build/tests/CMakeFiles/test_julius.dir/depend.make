# Empty dependencies file for test_julius.
# This may be replaced when dependencies are built.
