file(REMOVE_RECURSE
  "CMakeFiles/test_node_spec.dir/test_node_spec.cpp.o"
  "CMakeFiles/test_node_spec.dir/test_node_spec.cpp.o.d"
  "test_node_spec"
  "test_node_spec.pdb"
  "test_node_spec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
