file(REMOVE_RECURSE
  "CMakeFiles/test_frontier_properties.dir/test_frontier_properties.cpp.o"
  "CMakeFiles/test_frontier_properties.dir/test_frontier_properties.cpp.o.d"
  "test_frontier_properties"
  "test_frontier_properties.pdb"
  "test_frontier_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontier_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
