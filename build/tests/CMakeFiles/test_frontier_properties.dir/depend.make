# Empty dependencies file for test_frontier_properties.
# This may be replaced when dependencies are built.
