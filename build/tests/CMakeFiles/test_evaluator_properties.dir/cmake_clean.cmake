file(REMOVE_RECURSE
  "CMakeFiles/test_evaluator_properties.dir/test_evaluator_properties.cpp.o"
  "CMakeFiles/test_evaluator_properties.dir/test_evaluator_properties.cpp.o.d"
  "test_evaluator_properties"
  "test_evaluator_properties.pdb"
  "test_evaluator_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evaluator_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
