# Empty dependencies file for test_nic_model.
# This may be replaced when dependencies are built.
