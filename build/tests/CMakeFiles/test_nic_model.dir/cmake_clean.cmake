file(REMOVE_RECURSE
  "CMakeFiles/test_nic_model.dir/test_nic_model.cpp.o"
  "CMakeFiles/test_nic_model.dir/test_nic_model.cpp.o.d"
  "test_nic_model"
  "test_nic_model.pdb"
  "test_nic_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
