# Empty compiler generated dependencies file for test_websearch_ext.
# This may be replaced when dependencies are built.
