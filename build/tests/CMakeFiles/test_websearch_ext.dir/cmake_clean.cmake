file(REMOVE_RECURSE
  "CMakeFiles/test_websearch_ext.dir/test_websearch_ext.cpp.o"
  "CMakeFiles/test_websearch_ext.dir/test_websearch_ext.cpp.o.d"
  "test_websearch_ext"
  "test_websearch_ext.pdb"
  "test_websearch_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_websearch_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
