file(REMOVE_RECURSE
  "CMakeFiles/test_inputs_io.dir/test_inputs_io.cpp.o"
  "CMakeFiles/test_inputs_io.dir/test_inputs_io.cpp.o.d"
  "test_inputs_io"
  "test_inputs_io.pdb"
  "test_inputs_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inputs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
