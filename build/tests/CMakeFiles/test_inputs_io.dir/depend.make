# Empty dependencies file for test_inputs_io.
# This may be replaced when dependencies are built.
