# Empty compiler generated dependencies file for test_ep_kernel.
# This may be replaced when dependencies are built.
