file(REMOVE_RECURSE
  "CMakeFiles/test_ep_kernel.dir/test_ep_kernel.cpp.o"
  "CMakeFiles/test_ep_kernel.dir/test_ep_kernel.cpp.o.d"
  "test_ep_kernel"
  "test_ep_kernel.pdb"
  "test_ep_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ep_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
