file(REMOVE_RECURSE
  "CMakeFiles/test_datacenter_sim.dir/test_datacenter_sim.cpp.o"
  "CMakeFiles/test_datacenter_sim.dir/test_datacenter_sim.cpp.o.d"
  "test_datacenter_sim"
  "test_datacenter_sim.pdb"
  "test_datacenter_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_datacenter_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
