
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_matching.cpp" "tests/CMakeFiles/test_matching.dir/test_matching.cpp.o" "gcc" "tests/CMakeFiles/test_matching.dir/test_matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hec_model.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/hec_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/hec_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/hec_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
