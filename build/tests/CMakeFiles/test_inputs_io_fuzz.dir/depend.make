# Empty dependencies file for test_inputs_io_fuzz.
# This may be replaced when dependencies are built.
