file(REMOVE_RECURSE
  "CMakeFiles/test_trace_io_phases.dir/test_trace_io_phases.cpp.o"
  "CMakeFiles/test_trace_io_phases.dir/test_trace_io_phases.cpp.o.d"
  "test_trace_io_phases"
  "test_trace_io_phases.pdb"
  "test_trace_io_phases[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_io_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
