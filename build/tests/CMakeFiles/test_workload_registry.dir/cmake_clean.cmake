file(REMOVE_RECURSE
  "CMakeFiles/test_workload_registry.dir/test_workload_registry.cpp.o"
  "CMakeFiles/test_workload_registry.dir/test_workload_registry.cpp.o.d"
  "test_workload_registry"
  "test_workload_registry.pdb"
  "test_workload_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
