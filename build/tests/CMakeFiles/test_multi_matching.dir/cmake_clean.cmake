file(REMOVE_RECURSE
  "CMakeFiles/test_multi_matching.dir/test_multi_matching.cpp.o"
  "CMakeFiles/test_multi_matching.dir/test_multi_matching.cpp.o.d"
  "test_multi_matching"
  "test_multi_matching.pdb"
  "test_multi_matching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
