# Empty dependencies file for test_multi_matching.
# This may be replaced when dependencies are built.
