# Empty compiler generated dependencies file for test_md1.
# This may be replaced when dependencies are built.
