file(REMOVE_RECURSE
  "CMakeFiles/test_md1.dir/test_md1.cpp.o"
  "CMakeFiles/test_md1.dir/test_md1.cpp.o.d"
  "test_md1"
  "test_md1.pdb"
  "test_md1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_md1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
