# Empty dependencies file for test_expect.
# This may be replaced when dependencies are built.
