# Empty dependencies file for test_blackscholes.
# This may be replaced when dependencies are built.
