file(REMOVE_RECURSE
  "CMakeFiles/test_blackscholes.dir/test_blackscholes.cpp.o"
  "CMakeFiles/test_blackscholes.dir/test_blackscholes.cpp.o.d"
  "test_blackscholes"
  "test_blackscholes.pdb"
  "test_blackscholes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blackscholes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
