file(REMOVE_RECURSE
  "CMakeFiles/test_queueing_variants.dir/test_queueing_variants.cpp.o"
  "CMakeFiles/test_queueing_variants.dir/test_queueing_variants.cpp.o.d"
  "test_queueing_variants"
  "test_queueing_variants.pdb"
  "test_queueing_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_queueing_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
