# Empty dependencies file for test_queueing_variants.
# This may be replaced when dependencies are built.
