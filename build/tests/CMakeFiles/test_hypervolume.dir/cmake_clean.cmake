file(REMOVE_RECURSE
  "CMakeFiles/test_hypervolume.dir/test_hypervolume.cpp.o"
  "CMakeFiles/test_hypervolume.dir/test_hypervolume.cpp.o.d"
  "test_hypervolume"
  "test_hypervolume.pdb"
  "test_hypervolume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypervolume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
