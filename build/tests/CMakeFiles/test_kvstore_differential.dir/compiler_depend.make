# Empty compiler generated dependencies file for test_kvstore_differential.
# This may be replaced when dependencies are built.
