file(REMOVE_RECURSE
  "CMakeFiles/test_kvstore_differential.dir/test_kvstore_differential.cpp.o"
  "CMakeFiles/test_kvstore_differential.dir/test_kvstore_differential.cpp.o.d"
  "test_kvstore_differential"
  "test_kvstore_differential.pdb"
  "test_kvstore_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvstore_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
