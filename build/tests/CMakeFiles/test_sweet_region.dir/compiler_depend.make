# Empty compiler generated dependencies file for test_sweet_region.
# This may be replaced when dependencies are built.
