file(REMOVE_RECURSE
  "CMakeFiles/test_sweet_region.dir/test_sweet_region.cpp.o"
  "CMakeFiles/test_sweet_region.dir/test_sweet_region.cpp.o.d"
  "test_sweet_region"
  "test_sweet_region.pdb"
  "test_sweet_region[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweet_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
