file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_notation.dir/bench_table2_notation.cpp.o"
  "CMakeFiles/bench_table2_notation.dir/bench_table2_notation.cpp.o.d"
  "bench_table2_notation"
  "bench_table2_notation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_notation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
