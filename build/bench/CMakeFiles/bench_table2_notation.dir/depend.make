# Empty dependencies file for bench_table2_notation.
# This may be replaced when dependencies are built.
