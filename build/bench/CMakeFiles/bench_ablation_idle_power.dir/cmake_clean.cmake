file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_idle_power.dir/bench_ablation_idle_power.cpp.o"
  "CMakeFiles/bench_ablation_idle_power.dir/bench_ablation_idle_power.cpp.o.d"
  "bench_ablation_idle_power"
  "bench_ablation_idle_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_idle_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
