# Empty compiler generated dependencies file for bench_fig3_spimem_regression.
# This may be replaced when dependencies are built.
