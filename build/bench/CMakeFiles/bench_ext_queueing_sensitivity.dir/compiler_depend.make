# Empty compiler generated dependencies file for bench_ext_queueing_sensitivity.
# This may be replaced when dependencies are built.
