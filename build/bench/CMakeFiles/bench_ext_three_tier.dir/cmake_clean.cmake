file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_three_tier.dir/bench_ext_three_tier.cpp.o"
  "CMakeFiles/bench_ext_three_tier.dir/bench_ext_three_tier.cpp.o.d"
  "bench_ext_three_tier"
  "bench_ext_three_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_three_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
