# Empty compiler generated dependencies file for bench_ext_three_tier.
# This may be replaced when dependencies are built.
