file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_accounting.dir/bench_ablation_accounting.cpp.o"
  "CMakeFiles/bench_ablation_accounting.dir/bench_ablation_accounting.cpp.o.d"
  "bench_ablation_accounting"
  "bench_ablation_accounting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_accounting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
