# Empty compiler generated dependencies file for bench_fig4_pareto_ep.
# This may be replaced when dependencies are built.
