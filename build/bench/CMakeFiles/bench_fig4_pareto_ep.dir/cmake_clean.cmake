file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pareto_ep.dir/bench_fig4_pareto_ep.cpp.o"
  "CMakeFiles/bench_fig4_pareto_ep.dir/bench_fig4_pareto_ep.cpp.o.d"
  "bench_fig4_pareto_ep"
  "bench_fig4_pareto_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pareto_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
