file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_wpi_spi.dir/bench_fig2_wpi_spi.cpp.o"
  "CMakeFiles/bench_fig2_wpi_spi.dir/bench_fig2_wpi_spi.cpp.o.d"
  "bench_fig2_wpi_spi"
  "bench_fig2_wpi_spi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_wpi_spi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
