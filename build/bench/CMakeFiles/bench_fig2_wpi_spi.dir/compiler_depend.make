# Empty compiler generated dependencies file for bench_fig2_wpi_spi.
# This may be replaced when dependencies are built.
