# Empty compiler generated dependencies file for bench_ext_trace_validation.
# This may be replaced when dependencies are built.
