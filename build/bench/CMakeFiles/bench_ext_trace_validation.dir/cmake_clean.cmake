file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_trace_validation.dir/bench_ext_trace_validation.cpp.o"
  "CMakeFiles/bench_ext_trace_validation.dir/bench_ext_trace_validation.cpp.o.d"
  "bench_ext_trace_validation"
  "bench_ext_trace_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_trace_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
