# Empty dependencies file for bench_ext_energy_breakdown.
# This may be replaced when dependencies are built.
