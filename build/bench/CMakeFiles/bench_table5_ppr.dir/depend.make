# Empty dependencies file for bench_table5_ppr.
# This may be replaced when dependencies are built.
