file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ppr.dir/bench_table5_ppr.cpp.o"
  "CMakeFiles/bench_table5_ppr.dir/bench_table5_ppr.cpp.o.d"
  "bench_table5_ppr"
  "bench_table5_ppr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ppr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
