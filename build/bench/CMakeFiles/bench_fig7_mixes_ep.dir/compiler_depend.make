# Empty compiler generated dependencies file for bench_fig7_mixes_ep.
# This may be replaced when dependencies are built.
