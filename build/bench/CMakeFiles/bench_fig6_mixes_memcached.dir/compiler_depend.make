# Empty compiler generated dependencies file for bench_fig6_mixes_memcached.
# This may be replaced when dependencies are built.
