# Empty compiler generated dependencies file for bench_fig9_scaling_ep.
# This may be replaced when dependencies are built.
