file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_scaling_ep.dir/bench_fig9_scaling_ep.cpp.o"
  "CMakeFiles/bench_fig9_scaling_ep.dir/bench_fig9_scaling_ep.cpp.o.d"
  "bench_fig9_scaling_ep"
  "bench_fig9_scaling_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_scaling_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
