# Empty compiler generated dependencies file for bench_ext_datacenter_sim.
# This may be replaced when dependencies are built.
