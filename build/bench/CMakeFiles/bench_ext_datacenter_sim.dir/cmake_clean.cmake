file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_datacenter_sim.dir/bench_ext_datacenter_sim.cpp.o"
  "CMakeFiles/bench_ext_datacenter_sim.dir/bench_ext_datacenter_sim.cpp.o.d"
  "bench_ext_datacenter_sim"
  "bench_ext_datacenter_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_datacenter_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
