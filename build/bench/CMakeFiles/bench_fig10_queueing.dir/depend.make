# Empty dependencies file for bench_fig10_queueing.
# This may be replaced when dependencies are built.
