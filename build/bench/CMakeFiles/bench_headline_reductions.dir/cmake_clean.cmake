file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_reductions.dir/bench_headline_reductions.cpp.o"
  "CMakeFiles/bench_headline_reductions.dir/bench_headline_reductions.cpp.o.d"
  "bench_headline_reductions"
  "bench_headline_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
