# Empty dependencies file for bench_fig8_scaling_memcached.
# This may be replaced when dependencies are built.
