file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_coscheduling.dir/bench_ext_coscheduling.cpp.o"
  "CMakeFiles/bench_ext_coscheduling.dir/bench_ext_coscheduling.cpp.o.d"
  "bench_ext_coscheduling"
  "bench_ext_coscheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_coscheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
