# Empty dependencies file for bench_ext_coscheduling.
# This may be replaced when dependencies are built.
