// Three-tier fleet planning with the generic N-type API: should a
// datacenter add a middle tier (ARM Cortex-A15 class) between its
// low-power and high-performance fleets? Compares the 2-tier and 3-tier
// energy-deadline frontiers for a speech-recognition service and scores
// the improvement with the hypervolume indicator.
#include <iostream>

#include "hec/config/multi_space.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/pareto/hypervolume.h"
#include "hec/workloads/workload.h"

namespace {

std::vector<hec::TimeEnergyPoint> frontier_of(
    const std::vector<hec::MultiOutcome>& outcomes) {
  std::vector<hec::TimeEnergyPoint> points;
  points.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  return pareto_frontier(points);
}

}  // namespace

int main() {
  const hec::Workload julius = hec::workload_julius();
  const double job = julius.analysis_units;  // one million samples

  const hec::NodeSpec a9 = hec::arm_cortex_a9();
  const hec::NodeSpec a15 = hec::arm_cortex_a15();
  const hec::NodeSpec k10 = hec::amd_opteron_k10();
  std::cout << "Characterising " << julius.name << " on three node "
               "types...\n";
  const hec::NodeTypeModel m_a9 = build_node_model(a9, julius);
  const hec::NodeTypeModel m_a15 = build_node_model(a15, julius);
  const hec::NodeTypeModel m_k10 = build_node_model(k10, julius);

  // 2-tier fleet: 6 A9 + 6 K10. 3-tier: 4 of each (similar scale).
  const std::vector<hec::NodeSpec> two_specs{a9, k10};
  const std::vector<int> two_limits{6, 6};
  const hec::MultiEvaluator two_eval({&m_a9, &m_k10});
  const auto two_outcomes = two_eval.evaluate_all(
      enumerate_multi(two_specs, two_limits), job);
  const auto two_frontier = frontier_of(two_outcomes);

  const std::vector<hec::NodeSpec> three_specs{a9, a15, k10};
  const std::vector<int> three_limits{4, 4, 4};
  const hec::MultiEvaluator three_eval({&m_a9, &m_a15, &m_k10});
  const auto three_outcomes = three_eval.evaluate_all(
      enumerate_multi(three_specs, three_limits), job);
  const auto three_frontier = frontier_of(three_outcomes);

  hec::TablePrinter table(
      {"Fleet", "Frontier points", "Fastest [ms]", "Cheapest [J]"});
  table.add_row({"2-tier (6 A9 + 6 K10)",
                 std::to_string(two_frontier.size()),
                 hec::TablePrinter::num(two_frontier.front().t_s * 1e3, 1),
                 hec::TablePrinter::num(two_frontier.back().energy_j, 2)});
  table.add_row(
      {"3-tier (4 A9 + 4 A15 + 4 K10)",
       std::to_string(three_frontier.size()),
       hec::TablePrinter::num(three_frontier.front().t_s * 1e3, 1),
       hec::TablePrinter::num(three_frontier.back().energy_j, 2)});
  table.print(std::cout);

  const hec::ReferencePoint ref =
      covering_reference(two_frontier, three_frontier);
  const double hv2 = hypervolume(two_frontier, ref.time_s, ref.energy_j);
  const double hv3 = hypervolume(three_frontier, ref.time_s, ref.energy_j);
  std::cout << "\nHypervolume: 2-tier " << hv2 << ", 3-tier " << hv3
            << " (" << (hv3 / hv2 - 1.0) * 100.0 << "% more of the "
            << "energy-deadline plane dominated)\n";

  // Where does the middle tier actually serve? Show the 3-tier pick at a
  // mid-range deadline.
  const hec::EnergyDeadlineCurve curve(three_frontier);
  const double probe = curve.min_time_s() * 3.0;
  if (const auto best = curve.best_for_deadline(probe)) {
    const auto& cfg = three_outcomes[best->tag].config;
    std::cout << "\nAt a " << probe * 1e3 << " ms deadline the planner "
              << "deploys A9:A15:K10 = " << cfg.per_type[0].nodes << ":"
              << cfg.per_type[1].nodes << ":" << cfg.per_type[2].nodes
              << " using " << best->energy_j << " J per job.\n";
  }
  return 0;
}
