// Queueing-aware provisioning (the Section IV-E scenario): a service
// receives memcached-like jobs with Poisson arrivals and must keep the
// mean response time under an SLA. For each arrival rate, find the
// configuration of a 16 ARM + 14 AMD pool that meets the SLA with the
// least energy over an hour, accounting for dispatcher queueing delay
// and the idle draw of powered-on nodes.
#include <cmath>
#include <iostream>

#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/queueing/md1.h"
#include "hec/queueing/window_analysis.h"
#include "hec/workloads/workload.h"

int main() {
  const hec::Workload workload = hec::workload_memcached();
  const double job_units = 50000.0;
  const double sla_response_ms = 300.0;
  const double window_s = 3600.0;  // one hour

  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();
  const hec::NodeTypeModel arm_model = build_node_model(arm, workload);
  const hec::NodeTypeModel amd_model = build_node_model(amd, workload);
  const hec::ConfigEvaluator evaluator(arm_model, amd_model);

  const auto configs =
      enumerate_configs(arm, amd, hec::EnumerationLimits{16, 14});
  const auto outcomes = evaluator.evaluate_all(configs, job_units);

  std::cout << "Pool: up to 16 ARM + 14 AMD (unused nodes off); SLA: mean "
               "response <= "
            << sla_response_ms << " ms; window: 1 h\n\n";

  hec::TablePrinter table({"Arrival rate [jobs/s]", "Best config",
                           "Utilisation", "Response [ms]",
                           "Energy/hour [kJ]", "Jobs/hour"});
  table.set_alignment({hec::Align::kRight, hec::Align::kLeft,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight});

  for (double lambda : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    // Feasible configurations: stable queue and SLA met.
    double best_energy = 1e300;
    std::size_t best_idx = outcomes.size();
    double best_resp = 0.0, best_util = 0.0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const double service = outcomes[i].t_s;
      const double rho = lambda * service;
      if (rho >= 0.95) continue;  // keep a stability margin
      const hec::MD1Queue queue(lambda, service);
      if (queue.mean_response_s() > sla_response_ms * 1e-3) continue;
      const double jobs = lambda * window_s;
      const double energy =
          jobs * outcomes[i].energy_j +
          (window_s - jobs * service) *
              evaluator.powered_idle_w(outcomes[i].config);
      if (energy < best_energy) {
        best_energy = energy;
        best_idx = i;
        best_resp = queue.mean_response_s();
        best_util = rho;
      }
    }
    if (best_idx == outcomes.size()) {
      table.add_row({hec::TablePrinter::num(lambda, 1), "(infeasible)",
                     "-", "-", "-", "-"});
      continue;
    }
    const hec::ClusterConfig& c = outcomes[best_idx].config;
    const std::string desc =
        "ARM " + std::to_string(c.arm.nodes) + " + AMD " +
        std::to_string(c.amd.nodes);
    table.add_row({hec::TablePrinter::num(lambda, 1), desc,
                   hec::TablePrinter::num(best_util * 100.0, 0) + "%",
                   hec::TablePrinter::num(best_resp * 1e3, 1),
                   hec::TablePrinter::num(best_energy / 1e3, 1),
                   hec::TablePrinter::num(lambda * window_s, 0)});
  }
  table.print(std::cout);
  std::cout << "\nLow arrival rates provision ARM-only (cheap idle); "
               "higher rates pull in AMD nodes to keep the queue and SLA "
               "under control -- amplified savings, Observation 4.\n";
  return 0;
}
