// Capacity planning under a datacenter power cap (the Section IV-C
// scenario): given a 1 kW peak-power budget, how many high-performance
// nodes should be replaced by low-power ones for a target workload and
// deadline? Walks the 8:1 substitution series and reports, per mix, the
// cheapest configuration that still meets the deadline.
#include <cmath>
#include <iostream>

#include "hec/config/budget.h"
#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/pareto/frontier.h"
#include "hec/workloads/workload.h"

int main() {
  const hec::Workload workload = hec::workload_ep();
  const double job_units = workload.analysis_units;  // 50 M randoms
  const double budget_w = 1000.0;
  const double deadline_ms = 120.0;

  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();
  const int ratio = hec::substitution_ratio(arm, amd);
  std::cout << "Power budget " << budget_w << " W; substitution ratio "
            << ratio << " ARM per AMD; workload " << workload.name
            << "; deadline " << deadline_ms << " ms\n\n";

  const hec::NodeTypeModel arm_model = build_node_model(arm, workload);
  const hec::NodeTypeModel amd_model = build_node_model(amd, workload);
  const hec::ConfigEvaluator evaluator(arm_model, amd_model);

  hec::TablePrinter table({"Mix (ARM:AMD)", "Peak power [W]",
                           "Fastest [ms]", "Energy@deadline [J]",
                           "Best configuration"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kLeft});

  double best_energy = 1e300;
  std::string best_mix;
  for (const hec::MixPlan& mix : hec::substitution_series(16, ratio)) {
    if (!within_budget(arm, amd, mix, budget_w)) continue;
    const auto configs = enumerate_configs(
        arm, amd, hec::EnumerationLimits{mix.arm_nodes, mix.amd_nodes});
    const auto outcomes = evaluator.evaluate_all(configs, job_units);
    std::vector<hec::TimeEnergyPoint> points;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
    }
    const hec::EnergyDeadlineCurve curve(pareto_frontier(points));
    const auto best = curve.best_for_deadline(deadline_ms * 1e-3);
    const std::string mix_name = "ARM " + std::to_string(mix.arm_nodes) +
                                 ":AMD " + std::to_string(mix.amd_nodes);
    std::string energy = "-", config = "(deadline unmeetable)";
    if (best) {
      energy = hec::TablePrinter::num(best->energy_j, 2);
      const hec::ClusterConfig& c = outcomes[best->tag].config;
      config = "ARM " + std::to_string(c.arm.nodes) + "n/" +
               std::to_string(c.arm.cores) + "c@" +
               hec::TablePrinter::num(c.arm.f_ghz, 1) + " + AMD " +
               std::to_string(c.amd.nodes) + "n/" +
               std::to_string(c.amd.cores) + "c@" +
               hec::TablePrinter::num(c.amd.f_ghz, 1);
      if (best->energy_j < best_energy) {
        best_energy = best->energy_j;
        best_mix = mix_name;
      }
    }
    table.add_row({mix_name,
                   hec::TablePrinter::num(
                       mix_peak_power_w(arm, amd, mix), 0),
                   hec::TablePrinter::num(curve.min_time_s() * 1e3, 1),
                   energy, config});
  }
  table.print(std::cout);
  std::cout << "\nRecommended mix: " << best_mix << " at "
            << hec::TablePrinter::num(best_energy, 2) << " J per job\n";
  return 0;
}
