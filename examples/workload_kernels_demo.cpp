// Runs each of the six real workload kernels natively and prints their
// outputs: the computational substance behind the service-demand
// profiles (EP's Gaussian annuli, memcached GET/SET over the hash store,
// x264-style motion search + DCT, Black-Scholes pricing, HMM Viterbi
// decoding, RSA-2048 Montgomery verification).
#include <iostream>

#include "hec/io/table.h"
#include "hec/workloads/blackscholes.h"
#include "hec/workloads/encoder.h"
#include "hec/workloads/ep_kernel.h"
#include "hec/workloads/julius_decoder.h"
#include "hec/workloads/kvstore.h"
#include "hec/workloads/rsa.h"

int main() {
  std::cout << "== EP (NPB kernel): 100k Gaussian pairs ==\n";
  const hec::EpResult ep = hec::ep_generate(100000);
  std::cout << "accepted " << ep.pairs_accepted << " pairs; annuli:";
  for (std::size_t i = 0; i < 5; ++i) {
    std::cout << " " << ep.annulus_counts[i];
  }
  std::cout << "\n\n== memcached (KV store): 50k mixed requests ==\n";
  hec::KvStore store(1 << 14);
  hec::RequestGenerator gen(4000, 16, 1024, 0.9, 7);
  std::size_t bytes_served = 0;
  for (int i = 0; i < 50000; ++i) bytes_served += store.serve(gen.next());
  std::cout << "resident keys " << store.size() << ", payload served "
            << bytes_served / 1024 << " KiB\n";

  std::cout << "\n== x264 (encoder): one 704x576 frame ==\n";
  hec::Frame ref(704, 576), cur(704, 576);
  ref.fill_synthetic(0, 0);
  cur.fill_synthetic(5, 2);
  const hec::EncodeStats enc = encode_frame(cur, ref);
  std::cout << enc.blocks << " macroblocks, residual SAD " << enc.total_sad
            << ", nonzero coefficients " << enc.nonzero_coeffs << "\n";

  std::cout << "\n== blackscholes (PARSEC): 10k options ==\n";
  const auto portfolio = hec::make_portfolio(10000, 42);
  std::cout << "portfolio value " << price_portfolio(portfolio) << "\n";

  std::cout << "\n== Julius (HMM Viterbi): 1000-frame utterance ==\n";
  const hec::Hmm hmm = hec::make_test_hmm(12, 13, 3);
  const auto frames = make_test_frames(hmm, 1000, 4);
  const hec::DecodeResult dec = viterbi_decode(hmm, frames);
  std::cout << "log-likelihood " << dec.log_likelihood
            << ", final state " << dec.state_path.back() << "\n";

  std::cout << "\n== RSA-2048 (openssl speed): 5 verifications ==\n";
  const hec::MontgomeryCtx ctx(hec::rsa_test_modulus(9));
  hec::Rng rng(10);
  for (int i = 0; i < 5; ++i) {
    const hec::BigUInt sig = rsa_random_below(ctx.modulus(), rng);
    const hec::BigUInt msg = ctx.pow65537(sig);
    std::cout << "verify[" << i << "] -> m mod 2^64 = " << msg.limb[0]
              << "\n";
  }
  return 0;
}
