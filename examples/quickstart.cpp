// Quickstart: the full pipeline in ~60 lines.
//
// 1. Pick a workload and the two node types.
// 2. Characterise both nodes (trace-driven model inputs from baseline
//    runs on the simulator substrate).
// 3. Ask the model for the most energy-efficient cluster configuration
//    that services a job within a deadline, using the mix-and-match
//    split so every node finishes at the same time.
#include <iostream>

#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/pareto/frontier.h"
#include "hec/util/units.h"
#include "hec/workloads/workload.h"

int main() {
  // A job of 50,000 memcached requests and a 100 ms service deadline.
  const hec::Workload workload = hec::workload_memcached();
  const double job_units = 50000.0;
  const double deadline_s = hec::units::ms_to_s(100.0);

  // Node types from the catalogue (Table 1 of the paper).
  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();

  // Trace-driven characterisation: baseline runs measure instructions per
  // request, work/stall cycles, SPImem(f) and component powers.
  std::cout << "Characterising " << workload.name << " on " << arm.name
            << " and " << amd.name << "...\n";
  const hec::NodeTypeModel arm_model = build_node_model(arm, workload);
  const hec::NodeTypeModel amd_model = build_node_model(amd, workload);

  // Evaluate every configuration of up to 10 nodes of each type.
  const auto configs =
      enumerate_configs(arm, amd, hec::EnumerationLimits{10, 10});
  const hec::ConfigEvaluator evaluator(arm_model, amd_model);
  const auto outcomes = evaluator.evaluate_all(configs, job_units);
  std::cout << "Evaluated " << outcomes.size() << " configurations\n";

  // Pareto frontier -> minimum energy for the deadline.
  std::vector<hec::TimeEnergyPoint> points;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    points.push_back({outcomes[i].t_s, outcomes[i].energy_j, i});
  }
  const hec::EnergyDeadlineCurve curve(pareto_frontier(points));
  const auto best = curve.best_for_deadline(deadline_s);
  if (!best) {
    std::cout << "No configuration meets " << deadline_s * 1e3 << " ms\n";
    return 1;
  }
  const hec::ConfigOutcome& choice = outcomes[best->tag];
  std::cout << "\nBest configuration for a "
            << deadline_s * 1e3 << " ms deadline:\n"
            << "  ARM nodes: " << choice.config.arm.nodes << " ("
            << choice.config.arm.cores << " cores @ "
            << choice.config.arm.f_ghz << " GHz), share "
            << choice.units_arm << " requests\n"
            << "  AMD nodes: " << choice.config.amd.nodes << " ("
            << choice.config.amd.cores << " cores @ "
            << choice.config.amd.f_ghz << " GHz), share "
            << choice.units_amd << " requests\n"
            << "  service time: " << choice.t_s * 1e3 << " ms, energy: "
            << choice.energy_j << " J\n";
  return 0;
}
