// Characterise once, reuse forever: a deployment tool should not redo
// baseline measurements on every invocation. This example characterises
// both node types for a workload, saves the trace-driven inputs to the
// text format, reloads them, and shows the reloaded model reproduces the
// original predictions bit for bit.
#include <filesystem>
#include <iostream>

#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/model/inputs_io.h"
#include "hec/workloads/workload.h"

int main() {
  namespace fs = std::filesystem;
  const hec::Workload workload = hec::workload_julius();
  const hec::NodeSpec arm = hec::arm_cortex_a9();

  const fs::path cache_dir = fs::temp_directory_path() / "hecsim_cache";
  fs::create_directories(cache_dir);
  const std::string wl_path =
      (cache_dir / (workload.name + ".arm.workload")).string();
  const std::string pw_path = (cache_dir / "cortex_a9.power").string();

  // First run: measure and persist.
  std::cout << "Characterising " << workload.name << " on " << arm.name
            << " (expensive: baseline runs per cores x P-state)...\n";
  const hec::WorkloadInputs measured =
      characterize_workload(arm, workload.demand_arm);
  const hec::PowerParams power = characterize_power(arm);
  save_workload_inputs(measured, wl_path);
  save_power_params(power, pw_path);
  std::cout << "Saved " << wl_path << "\nSaved " << pw_path << "\n";

  // Later runs: load instead of re-measuring.
  const hec::WorkloadInputs loaded = hec::load_workload_inputs(wl_path);
  const hec::PowerParams loaded_power = hec::load_power_params(pw_path);

  const hec::NodeTypeModel fresh(arm, measured, power);
  const hec::NodeTypeModel cached(arm, loaded, loaded_power);
  const hec::NodeConfig cfg{4, 4, 1.4};
  const double units = 1e6;
  const hec::Prediction a = fresh.predict(units, cfg);
  const hec::Prediction b = cached.predict(units, cfg);

  std::cout << "\nPrediction for " << units << " samples on 4 nodes:\n"
            << "  fresh model : " << a.t_s * 1e3 << " ms, " << a.energy_j()
            << " J\n"
            << "  cached model: " << b.t_s * 1e3 << " ms, " << b.energy_j()
            << " J\n"
            << (a.t_s == b.t_s && a.energy_j() == b.energy_j()
                    ? "  -> identical: the text format is round-trip exact\n"
                    : "  -> MISMATCH (report a bug!)\n");
  fs::remove_all(cache_dir);
  return a.t_s == b.t_s ? 0 : 1;
}
