// hecsim_report — writes a Markdown analysis report for one workload
// (see hec/report/markdown_report.h for the content).
//
//   hecsim_report <workload> [--out report.md] [--max-arm N] [--max-amd N]
//                 [--units N]
#include <charconv>
#include <iostream>
#include <string>
#include <vector>

#include "hec/hw/catalog.h"
#include "hec/util/atomic_file.h"
#include "hec/model/characterize.h"
#include "hec/report/markdown_report.h"
#include "hec/workloads/workload.h"

namespace {

double parse_number(const std::string& text, const std::string& what) {
  double value = 0.0;
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), value);
  if (ec != std::errc{} || ptr != begin + text.size()) {
    throw std::runtime_error("bad " + what + ": '" + text + "'");
  }
  return value;
}

int run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    std::cout << "usage: hecsim_report <workload> [--out report.md] "
                 "[--max-arm N] [--max-amd N] [--units N]\n";
    return args.empty() ? 1 : 0;
  }
  const hec::Workload workload = hec::find_workload(args[0]);
  std::string out_path = workload.name + "_report.md";
  hec::ReportOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw std::runtime_error("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    if (args[i] == "--out") {
      out_path = next();
    } else if (args[i] == "--max-arm") {
      options.max_arm_nodes =
          static_cast<int>(parse_number(next(), "--max-arm"));
    } else if (args[i] == "--max-amd") {
      options.max_amd_nodes =
          static_cast<int>(parse_number(next(), "--max-amd"));
    } else if (args[i] == "--units") {
      options.work_units = parse_number(next(), "--units");
    } else {
      throw std::runtime_error("unknown option: " + args[i]);
    }
  }

  std::cerr << "characterising " << workload.name << "...\n";
  const hec::NodeTypeModel arm_model =
      build_node_model(hec::arm_cortex_a9(), workload);
  const hec::NodeTypeModel amd_model =
      build_node_model(hec::amd_opteron_k10(), workload);
  const std::string report =
      markdown_report(workload, arm_model, amd_model, options);

  hec::util::atomic_write_file(out_path, report);
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const hec::IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return hec::util::kExitIoError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
