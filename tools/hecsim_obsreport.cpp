// hecsim_obsreport — turns raw observability artifacts into answers.
//
//   hecsim_obsreport [--trace FILE] [--profile FILE] [--ledger FILE]
//                    [--out FILE] [--flamegraph FILE] [--top N] [--last N]
//
// Reads any combination of a `--trace-out` Chrome trace, a
// `--profile-out` hec-profile/v1 document and a `--ledger`
// hec-run-ledger/v1 file, and renders one Markdown report:
//
//   * top call paths by self wall time (from the profile, or folded on
//     the fly from the trace's spans when only a trace is given);
//   * the critical path of a sharded run (hec/shard/critical_path.h)
//     with per-segment attribution — the tiling identity "segment sum
//     == coordinator wall" is printed and checked in CI;
//   * collapsed flamegraph stacks (--flamegraph FILE) ready for
//     flamegraph.pl / speedscope;
//   * the run-ledger tail with a noise-tolerant trend verdict (newest
//     run vs the median of its predecessors, benchkit tolerances).
//
// The report is a pure function of its inputs: no timestamps, sorted
// keys, fixed number formats — running it twice on the same files
// yields byte-identical output (CI asserts this).
//
// Exit codes: 0 ok; 64 usage error; 65 malformed input file; 74 file
// write failure. Absent sections degrade gracefully: a ledger-only
// invocation (e.g. under HEC_OBS_DISABLE, where traces are empty)
// still renders the provenance tables.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "hec/bench/json.h"
#include "hec/bench/ledger.h"
#include "hec/obs/profile.h"
#include "hec/shard/critical_path.h"
#include "hec/util/atomic_file.h"
#include "hec/util/build_info.h"

namespace {

namespace json = hec::bench::json;
namespace ledger = hec::bench::ledger;

class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Unreadable/unparseable input file: exit 65, after sysexits EX_DATAERR.
class InputError : public std::runtime_error {
 public:
  explicit InputError(const std::string& what) : std::runtime_error(what) {}
};

void print_usage(std::ostream& out) {
  out << "usage: hecsim_obsreport [options]\n"
         "  --trace FILE       Chrome trace from hecsim_cli --trace-out\n"
         "  --profile FILE     hec-profile/v1 from hecsim_cli --profile-out\n"
         "  --ledger FILE      hec-run-ledger/v1 JSONL (missing => empty)\n"
         "  --out FILE         write the Markdown report here (default:\n"
         "                     stdout), atomically\n"
         "  --flamegraph FILE  write collapsed flamegraph stacks here\n"
         "  --top N            call paths in the self-time table (default 15)\n"
         "  --last N           ledger records in the history table\n"
         "                     (default 10)\n"
         "  --version          print version and build provenance, exit 0\n"
         "at least one of --trace/--profile/--ledger is required\n"
         "exit codes: 0 ok, 64 usage, 65 bad input file, 74 i/o error\n";
}

struct Options {
  std::optional<std::string> trace;
  std::optional<std::string> profile;
  std::optional<std::string> ledger_path;
  std::optional<std::string> out;
  std::optional<std::string> flamegraph;
  std::size_t top = 15;
  std::size_t last = 10;
};

Options parse_args(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        args.push_back(arg.substr(0, eq));
        args.push_back(arg.substr(eq + 1));
        continue;
      }
    }
    args.push_back(std::move(arg));
  }
  Options opts;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw UsageError("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    auto next_count = [&](const char* what) -> std::size_t {
      const std::string text = next();
      char* end = nullptr;
      const unsigned long long n = std::strtoull(text.c_str(), &end, 10);
      if (end != text.c_str() + text.size() || n == 0) {
        throw UsageError(std::string(what) + " must be a positive integer");
      }
      return static_cast<std::size_t>(n);
    };
    if (args[i] == "--trace") {
      opts.trace = next();
    } else if (args[i] == "--profile") {
      opts.profile = next();
    } else if (args[i] == "--ledger") {
      opts.ledger_path = next();
    } else if (args[i] == "--out") {
      opts.out = next();
    } else if (args[i] == "--flamegraph") {
      opts.flamegraph = next();
    } else if (args[i] == "--top") {
      opts.top = next_count("--top");
    } else if (args[i] == "--last") {
      opts.last = next_count("--last");
    } else {
      throw UsageError("unknown option: " + args[i]);
    }
  }
  if (!opts.trace && !opts.profile && !opts.ledger_path) {
    throw UsageError("nothing to report: give --trace, --profile or --ledger");
  }
  if (opts.flamegraph && !opts.profile && !opts.trace) {
    throw UsageError("--flamegraph needs --profile or --trace");
  }
  return opts;
}

std::string fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

json::Value load_json(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in) throw InputError(std::string(what) + ": cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string error;
  std::optional<json::Value> v = json::Value::parse(buf.str(), &error);
  if (!v) {
    throw InputError(std::string(what) + ": " + path + ": " + error);
  }
  return std::move(*v);
}

/// One flattened call path, reconstructed from a profile document or
/// folded from trace spans.
struct PathRow {
  std::string path;
  double count = 0.0;
  double total_us = 0.0;
  double self_us = 0.0;
};

void walk_profile_tree(const json::Value& nodes, const std::string& prefix,
                       std::vector<PathRow>& out) {
  for (const auto& [name, node] : nodes.as_object()) {
    // Keep the path in a local: recursing while holding a reference
    // into `out` would dangle when the vector reallocates.
    const std::string path = prefix.empty() ? name : prefix + ";" + name;
    out.push_back({path, node["count"].as_number(),
                   node["total_us"].as_number(), node["self_us"].as_number()});
    if (const json::Value* children = node.find("children")) {
      walk_profile_tree(*children, path, out);
    }
  }
}

std::vector<PathRow> rows_from_profile(const json::Value& doc) {
  if (doc["schema"].as_string() != "hec-profile/v1") {
    throw InputError("profile: unexpected schema '" +
                     doc["schema"].as_string() + "'");
  }
  std::vector<PathRow> rows;
  walk_profile_tree(doc["tree"], "", rows);
  return rows;
}

/// Folds a Chrome trace's complete spans into a ProfileTree: pid 1 is
/// the local process, other pids keep their process_name metadata label
/// so worker tracks profile under their own root frame.
hec::obs::ProfileTree profile_from_trace(const json::Value& trace) {
  hec::obs::ProfileTree tree;
  const json::Value* events = trace.find("traceEvents");
  if (events == nullptr || !events->is_array()) return tree;
  std::map<double, std::string> process_names;
  for (const json::Value& ev : events->as_array()) {
    if (ev["ph"].as_string() == "M" &&
        ev["name"].as_string() == "process_name") {
      process_names[ev["pid"].as_number()] = ev["args"]["name"].as_string();
    }
  }
  std::vector<hec::obs::ProfileSpan> spans;
  for (const json::Value& ev : events->as_array()) {
    if (ev["ph"].as_string() != "X") continue;
    hec::obs::ProfileSpan s;
    const double pid = ev["pid"].as_number(1.0);
    if (pid != 1.0) {
      const auto it = process_names.find(pid);
      s.process = it != process_names.end() ? it->second
                                            : "pid " + fmt(pid, 0);
    }
    s.tid = static_cast<std::uint32_t>(ev["tid"].as_number());
    s.depth = static_cast<std::uint32_t>(ev["args"]["depth"].as_number());
    s.name = ev["name"].as_string();
    s.start_us = ev["ts"].as_number();
    s.dur_us = ev["dur"].as_number();
    if (const json::Value* sim = ev["args"].find("sim_begin_s")) {
      s.has_sim = true;
      s.sim_begin_s = sim->as_number();
      s.sim_end_s = ev["args"]["sim_end_s"].as_number();
    }
    spans.push_back(std::move(s));
  }
  tree.add(std::move(spans));
  return tree;
}

std::vector<PathRow> rows_from_tree(const hec::obs::ProfileTree& tree) {
  std::vector<PathRow> rows;
  for (const hec::obs::ProfileTree::Row& r : tree.rows()) {
    rows.push_back({r.path, static_cast<double>(r.node->count),
                    r.node->total_us, r.node->self_us()});
  }
  return rows;
}

void write_top_spans(std::ostream& out, std::vector<PathRow> rows,
                     std::size_t top, const std::string& source) {
  out << "## Top call paths by self time\n\n";
  if (rows.empty()) {
    out << "_No spans in " << source
        << " (empty run, or built with HEC_OBS_DISABLE)._\n\n";
    return;
  }
  double total_self = 0.0;
  for (const PathRow& r : rows) total_self += r.self_us;
  // Self-time descending; path as the deterministic tiebreak.
  std::sort(rows.begin(), rows.end(), [](const PathRow& a, const PathRow& b) {
    if (a.self_us != b.self_us) return a.self_us > b.self_us;
    return a.path < b.path;
  });
  out << "Source: " << source << ". Total attributed self time: "
      << fmt(total_self / 1e3) << " ms across " << rows.size()
      << " call paths.\n\n";
  out << "| rank | call path | count | total ms | self ms | self % |\n"
         "|-----:|-----------|------:|---------:|--------:|-------:|\n";
  const std::size_t n = std::min(top, rows.size());
  for (std::size_t i = 0; i < n; ++i) {
    const PathRow& r = rows[i];
    const double pct = total_self > 0.0 ? 100.0 * r.self_us / total_self : 0.0;
    out << "| " << i + 1 << " | `" << r.path << "` | " << fmt(r.count, 0)
        << " | " << fmt(r.total_us / 1e3) << " | " << fmt(r.self_us / 1e3)
        << " | " << fmt(pct, 1) << " |\n";
  }
  out << "\n";
}

void write_critical_path(std::ostream& out, const json::Value& trace) {
  out << "## Critical path (sharded run)\n\n";
  std::string why;
  const std::optional<hec::shard::CriticalPath> path =
      hec::shard::critical_path_from_chrome_trace(trace, &why);
  if (!path || path->empty()) {
    out << "_Not available: " << (path ? "no shard events in the window" : why)
        << "._\n\n";
    return;
  }
  out << "Gating shard: **" << path->gating_shard << "** ("
      << (path->gating_done ? "completed" : "never completed")
      << "). The chain below tiles the coordinator window, so its segment\n"
         "sum equals the coordinator wall time by construction.\n\n";
  out << "| segment | kind | start ms | end ms | duration ms | share % |\n"
         "|---------|------|---------:|-------:|------------:|--------:|\n";
  const double wall = path->wall_us();
  for (const hec::shard::PathSegment& seg : path->segments) {
    const double pct = wall > 0.0 ? 100.0 * seg.dur_us() / wall : 0.0;
    out << "| " << seg.label << " | " << hec::shard::to_string(seg.kind)
        << " | " << fmt((seg.begin_us - path->begin_us) / 1e3) << " | "
        << fmt((seg.end_us - path->begin_us) / 1e3) << " | "
        << fmt(seg.dur_us() / 1e3) << " | " << fmt(pct, 1) << " |\n";
  }
  const double total = path->total_us();
  const double ratio = wall > 0.0 ? 100.0 * total / wall : 0.0;
  out << "\nSegment sum " << fmt(total / 1e3) << " ms vs coordinator wall "
      << fmt(wall / 1e3) << " ms (" << fmt(ratio, 1) << "%).\n\n";
}

void write_ledger_section(std::ostream& out, const ledger::ReadResult& read,
                          const std::string& path, std::size_t last) {
  out << "## Run ledger\n\n";
  if (read.records.empty()) {
    out << "_" << path << ": no intact records";
    if (read.rejected > 0) out << " (" << read.rejected << " rejected)";
    out << "._\n\n";
    return;
  }
  out << path << ": " << read.records.size() << " intact record"
      << (read.records.size() == 1 ? "" : "s");
  if (read.rejected > 0) {
    out << ", " << read.rejected << " corrupt/torn line"
        << (read.rejected == 1 ? "" : "s") << " skipped";
  }
  out << ".\n\n";
  out << "| # | ts (UTC) | tool | git sha | build | obs | exit | wall s | "
         "rss MB |\n"
         "|--:|----------|------|---------|-------|-----|-----:|-------:|"
         "-------:|\n";
  const std::size_t n = std::min(last, read.records.size());
  for (std::size_t i = read.records.size() - n; i < read.records.size();
       ++i) {
    const ledger::Record& r = read.records[i];
    out << "| " << i + 1 << " | " << r.ts_utc << " | " << r.tool << " | "
        << r.git_sha << " | " << r.build_type << " | "
        << (r.obs_enabled ? "on" : "off") << " | "
        << (r.exit_code == ledger::kExitUnknown
                ? std::string("?")
                : std::to_string(r.exit_code))
        << " | " << fmt(r.wall_s) << " | " << fmt(r.peak_rss_mb, 1)
        << " |\n";
  }
  out << "\n";

  const ledger::Record& newest = read.records.back();
  if (!newest.counters.empty()) {
    out << "Newest run counters:\n\n| counter | value |\n|---------|------:|\n";
    for (const auto& [name, value] : newest.counters) {
      out << "| " << name << " | " << fmt(value, 0) << " |\n";
    }
    out << "\n";
  }

  const ledger::Trend trend = ledger::trend(read.records);
  out << "### Trend vs previous runs\n\n";
  if (trend.baseline_runs == 0) {
    out << "_No earlier run of the same invocation to compare against._\n\n";
    return;
  }
  out << "Newest run vs the median of its last " << trend.baseline_runs
      << " identical invocation" << (trend.baseline_runs == 1 ? "" : "s")
      << " (benchkit noise model):\n\n";
  out << "| metric | baseline | current | verdict |\n"
         "|--------|---------:|--------:|---------|\n";
  for (const ledger::TrendDelta& d : trend.deltas) {
    out << "| " << d.metric << " | " << fmt(d.baseline) << " | "
        << fmt(d.current) << " | " << hec::bench::telemetry::to_string(d.outcome)
        << " |\n";
  }
  out << "\nVerdict: "
      << (trend.ok() ? "**ok** — within noise of recent history"
                     : "**regression** — " +
                           std::to_string(trend.regressions) +
                           " metric(s) beyond tolerance")
      << ".\n\n";
}

int run(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "--help" || first == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (first == "--version") {
      std::cout << "hecsim_obsreport "
                << hec::util::describe(hec::util::build_info()) << "\n";
      return 0;
    }
  }
  const Options opts = parse_args(argc, argv);

  std::optional<json::Value> trace;
  if (opts.trace) trace = load_json(*opts.trace, "trace");
  std::optional<json::Value> profile;
  if (opts.profile) profile = load_json(*opts.profile, "profile");

  std::ostringstream report;
  report << "# hecsim observability report\n\n";

  if (profile) {
    write_top_spans(report, rows_from_profile(*profile), opts.top,
                    "`" + *opts.profile + "`");
  } else if (trace) {
    write_top_spans(report, rows_from_tree(profile_from_trace(*trace)),
                    opts.top, "`" + *opts.trace + "` (folded from spans)");
  }

  if (trace) write_critical_path(report, *trace);

  if (opts.flamegraph) {
    hec::obs::ProfileTree tree;
    std::ostringstream folded;
    if (profile) {
      // Re-emit collapsed stacks from the document's flattened rows —
      // lexicographic order, self-weight in integer microseconds, the
      // same format ProfileTree::write_collapsed produces.
      std::vector<PathRow> rows = rows_from_profile(*profile);
      std::sort(rows.begin(), rows.end(),
                [](const PathRow& a, const PathRow& b) {
                  return a.path < b.path;
                });
      for (const PathRow& r : rows) {
        const long long weight = std::llround(r.self_us);
        if (weight <= 0) continue;
        folded << r.path << " " << weight << "\n";
      }
    } else {
      tree = profile_from_trace(*trace);
      tree.write_collapsed(folded);
    }
    hec::util::AtomicFileWriter out(*opts.flamegraph);
    out.stream() << folded.str();
    out.commit();
    report << "## Flamegraph\n\nWrote collapsed stacks to `"
           << *opts.flamegraph
           << "`. Render with:\n\n```\nflamegraph.pl --countname us "
           << *opts.flamegraph << " > flame.svg\n```\n\n";
  }

  if (opts.ledger_path) {
    write_ledger_section(report, ledger::read(*opts.ledger_path),
                         *opts.ledger_path, opts.last);
  }

  if (opts.out) {
    hec::util::AtomicFileWriter out(*opts.out);
    out.stream() << report.str();
    out.commit();
    std::cout << "wrote report to " << *opts.out << "\n";
  } else {
    std::cout << report.str();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    print_usage(std::cerr);
    return 64;
  } catch (const InputError& e) {
    std::cerr << "input error: " << e.what() << "\n";
    return 65;
  } catch (const hec::IoError& e) {
    std::cerr << "i/o error: " << e.what() << "\n";
    return hec::util::kExitIoError;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
