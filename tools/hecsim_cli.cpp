// hecsim_cli — command-line front end for the canonical query:
//
//   "Which cluster configuration services this workload within this
//    deadline using the least energy?"
//
//   hecsim_cli <workload> <deadline_ms>
//              [--units N]            job size (default: paper's analysis size)
//              [--budget WATTS]       peak-power cap on the configuration
//              [--max-arm N]          low-power pool size (default 10)
//              [--max-amd N]          high-performance pool size (default 10)
//              [--method exhaustive|bnb|greedy]   search strategy
//
// Workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048.
#include <charconv>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "hec/config/budget.h"
#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/pareto/frontier.h"
#include "hec/search/optimizer.h"
#include "hec/workloads/workload.h"

namespace {

void print_usage() {
  std::cout <<
      "usage: hecsim_cli <workload> <deadline_ms> [options]\n"
      "  workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048\n"
      "  --units N       job size in work units\n"
      "  --budget W      peak-power cap in watts\n"
      "  --max-arm N     low-power pool size (default 10)\n"
      "  --max-amd N     high-performance pool size (default 10)\n"
      "  --method M      exhaustive | bnb | greedy (default exhaustive)\n";
}

struct Options {
  std::string workload;
  double deadline_ms = 0.0;
  std::optional<double> units;
  std::optional<double> budget_w;
  int max_arm = 10;
  int max_amd = 10;
  std::string method = "exhaustive";
};

double parse_number(const std::string& text, const std::string& what) {
  double value = 0.0;
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), value);
  if (ec != std::errc{} || ptr != begin + text.size()) {
    throw std::runtime_error("bad " + what + ": '" + text + "'");
  }
  return value;
}

Options parse_args(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) throw std::runtime_error("missing arguments");
  Options opts;
  opts.workload = args[0];
  opts.deadline_ms = parse_number(args[1], "deadline");
  for (std::size_t i = 2; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw std::runtime_error("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    if (args[i] == "--units") {
      opts.units = parse_number(next(), "--units");
    } else if (args[i] == "--budget") {
      opts.budget_w = parse_number(next(), "--budget");
    } else if (args[i] == "--max-arm") {
      opts.max_arm = static_cast<int>(parse_number(next(), "--max-arm"));
    } else if (args[i] == "--max-amd") {
      opts.max_amd = static_cast<int>(parse_number(next(), "--max-amd"));
    } else if (args[i] == "--method") {
      opts.method = next();
    } else {
      throw std::runtime_error("unknown option: " + args[i]);
    }
  }
  if (opts.method != "exhaustive" && opts.method != "bnb" &&
      opts.method != "greedy") {
    throw std::runtime_error("unknown method: " + opts.method);
  }
  return opts;
}

void print_outcome(const hec::ConfigOutcome& best, double work_units,
                   const hec::NodeSpec& arm, const hec::NodeSpec& amd,
                   const std::optional<double>& budget_w) {
  using hec::TablePrinter;
  std::cout << "\nRecommended configuration:\n";
  hec::TablePrinter table({"Side", "Nodes", "Cores", "Clock [GHz]",
                           "Work share"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  if (best.config.uses_arm()) {
    table.add_row({arm.name, std::to_string(best.config.arm.nodes),
                   std::to_string(best.config.arm.cores),
                   TablePrinter::num(best.config.arm.f_ghz, 1),
                   TablePrinter::num(best.units_arm, 0)});
  }
  if (best.config.uses_amd()) {
    table.add_row({amd.name, std::to_string(best.config.amd.nodes),
                   std::to_string(best.config.amd.cores),
                   TablePrinter::num(best.config.amd.f_ghz, 1),
                   TablePrinter::num(best.units_amd, 0)});
  }
  table.print(std::cout);
  std::cout << "\nService time : " << TablePrinter::num(best.t_s * 1e3, 1)
            << " ms\nJob energy   : "
            << TablePrinter::num(best.energy_j, 2) << " J (for "
            << TablePrinter::num(work_units, 0) << " work units)\n"
            << "Peak power   : "
            << TablePrinter::num(
                   config_peak_power_w(arm, amd, best.config), 1)
            << " W";
  if (budget_w) {
    std::cout << " (budget " << TablePrinter::num(*budget_w, 0) << " W)";
  }
  std::cout << "\n";
}

int run(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "--help" ||
                    std::string(argv[1]) == "-h")) {
    print_usage();
    return 0;
  }
  const Options opts = parse_args(argc, argv);
  const hec::Workload workload = hec::find_workload(opts.workload);
  const double units = opts.units.value_or(workload.analysis_units);
  const double deadline_s = opts.deadline_ms * 1e-3;

  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();
  std::cout << "Characterising " << workload.name << " ("
            << hec::to_string(workload.bottleneck)
            << "-bound) on both node types...\n";
  const hec::NodeTypeModel arm_model = build_node_model(arm, workload);
  const hec::NodeTypeModel amd_model = build_node_model(amd, workload);
  const hec::ConfigEvaluator evaluator(arm_model, amd_model);
  const hec::EnumerationLimits limits{opts.max_arm, opts.max_amd};

  auto within_cap = [&](const hec::ClusterConfig& c) {
    return !opts.budget_w ||
           config_peak_power_w(arm, amd, c) <= *opts.budget_w;
  };

  std::optional<hec::ConfigOutcome> best;
  std::size_t evaluations = 0;
  if (opts.method == "exhaustive" || opts.budget_w) {
    // Budgeted queries always use the exhaustive path: the searchers'
    // bounds do not account for the power cap.
    const auto configs = enumerate_configs(arm, amd, limits);
    for (const auto& config : configs) {
      if (!within_cap(config)) continue;
      const hec::ConfigOutcome outcome = evaluator.evaluate(config, units);
      ++evaluations;
      if (outcome.t_s <= deadline_s &&
          (!best || outcome.energy_j < best->energy_j)) {
        best = outcome;
      }
    }
  } else {
    const auto result =
        opts.method == "bnb"
            ? branch_and_bound_search(evaluator, arm, amd, limits, units,
                                      deadline_s)
            : greedy_search(evaluator, arm, amd, limits, units, deadline_s);
    if (result) {
      best = result->best;
      evaluations = result->evaluations;
    }
  }

  if (!best) {
    std::cout << "No configuration of up to " << opts.max_arm << " ARM + "
              << opts.max_amd << " AMD nodes"
              << (opts.budget_w ? " within the power budget" : "")
              << " meets " << opts.deadline_ms << " ms.\n";
    return 2;
  }
  std::cout << "(" << evaluations << " model evaluations, method "
            << opts.method << ")\n";
  print_outcome(*best, units, arm, amd, opts.budget_w);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n\n";
    print_usage();
    return 1;
  }
}
