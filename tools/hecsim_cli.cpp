// hecsim_cli — command-line front end for the canonical query:
//
//   "Which cluster configuration services this workload within this
//    deadline using the least energy?"
//
//   hecsim_cli <workload> <deadline_ms>
//              [--units N]            job size (default: paper's analysis size)
//              [--budget WATTS]       peak-power cap on the configuration
//              [--max-arm N]          low-power pool size (default 10)
//              [--max-amd N]          high-performance pool size (default 10)
//              [--method exhaustive|bnb|greedy]   search strategy
//              [--arm-inputs FILE]    load ARM workload inputs from FILE
//              [--amd-inputs FILE]    load AMD workload inputs from FILE
//              [--mttf-h H]           per-node MTTF in hours (enables faults)
//              [--straggler-prob P]   per-node straggler probability
//              [--checkpoint-s S]     checkpoint interval in seconds
//              [--trials N]           Monte Carlo fault seeds (default 64)
//              [--seed S]             Monte Carlo base seed
//              [--trace-out FILE]     write a Chrome trace of the run
//              [--metrics-out FILE]   write a Prometheus-style metrics dump
//              [--status-out FILE]    live sweep status JSON (sharded runs)
//              [--log-level N]        stderr verbosity (0 quiet .. 2 debug)
//              [--journal FILE]       crash-safe sweep checkpoint journal
//              [--journal-interval-s S]  min seconds between checkpoints
//              [--deadline-s S]       wall-clock budget for the sweep
//              [--shards N]           fault-tolerant sweep across N worker
//                                     processes (hec/shard)
//              [--shard-timeout-s S]  per-worker heartbeat timeout
//              [--max-retries N]      per-shard retry budget
//              [--profile-out FILE]   hec-profile/v1 span-tree profile
//                                     (.folded => collapsed flamegraph stacks)
//              [--sweep-stats]        print the sweep's evaluated/pruned/
//                                     memo breakdown after the result
//              [--no-prune]           disable the bound-and-prune layer
//              [--no-simd]            disable the SoA/SIMD inner kernel
//              [--ledger FILE]        append a hec-run-ledger/v1 record
//              [--version]            print version + build provenance
//              [--build-info]         same, as a JSON document
//
// Flags accept both "--flag value" and "--flag=value".
//
// Workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048.
//
// Environment: HEC_DEADLINE_S is the wall-clock budget when --deadline-s
// is absent; HEC_FAILPOINT arms the deterministic failpoint harness
// (hec/resilience/failpoint.h) for crash testing. Malformed values of
// either are usage errors (exit 64), never silently ignored.
//
// Exit codes: 0 success; 2 no feasible configuration; 64 usage error;
// 65 malformed input file (ParseError); 70 internal contract violation;
// 74 file write failure (IoError); 75 partial result (wall-clock
// deadline stopped the sweep; resume via --journal); 1 any other error.
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "hec/bench/json.h"
#include "hec/bench/ledger.h"
#include "hec/config/budget.h"
#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/config/robust_evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/model/inputs_io.h"
#include "hec/obs/export.h"
#include "hec/obs/obs.h"
#include "hec/obs/profile.h"
#include "hec/pareto/frontier.h"
#include "hec/resilience/failpoint.h"
#include "hec/resilience/resumable.h"
#include "hec/search/optimizer.h"
#include "hec/shard/shard.h"
#include "hec/shard/telemetry.h"
#include "hec/util/atomic_file.h"
#include "hec/util/build_info.h"
#include "hec/util/env.h"
#include "hec/util/expect.h"
#include "hec/workloads/workload.h"

namespace {

/// Bad command line (unknown flag, malformed value, missing argument):
/// exit code 64, after sysexits.h EX_USAGE.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

void print_usage(std::ostream& out) {
  out <<
      "usage: hecsim_cli <workload> <deadline_ms> [options]\n"
      "  workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048\n"
      "  --units N            job size in work units\n"
      "  --budget W           peak-power cap in watts\n"
      "  --max-arm N          low-power pool size (default 10)\n"
      "  --max-amd N          high-performance pool size (default 10)\n"
      "  --method M           exhaustive | bnb | greedy (default exhaustive)\n"
      "  --arm-inputs FILE    load ARM workload inputs instead of measuring\n"
      "  --amd-inputs FILE    load AMD workload inputs instead of measuring\n"
      "  --mttf-h H           per-node mean time to failure in hours\n"
      "  --straggler-prob P   per-node straggler probability in [0, 1]\n"
      "  --checkpoint-s S     checkpoint interval in seconds\n"
      "  --trials N           Monte Carlo fault seeds (default 64)\n"
      "  --seed S             Monte Carlo base seed\n"
      "  --trace-out FILE     Chrome trace JSON (.jsonl for a JSONL log);\n"
      "                       sharded runs merge every worker's spans into\n"
      "                       per-process tracks\n"
      "  --metrics-out FILE   Prometheus-style metrics dump; sharded runs\n"
      "                       fold worker telemetry into one dump\n"
      "  --status-out FILE    hec-sweep-status/v1 JSON, atomically replaced\n"
      "                       while a sharded sweep runs (coverage, ETA,\n"
      "                       per-worker rates); requires --shards\n"
      "  --log-level N        stderr verbosity: 0 quiet .. 2 debug\n"
      "  --journal FILE       crash-safe sweep checkpoint journal; if FILE\n"
      "                       holds a checkpoint of this sweep, resume it\n"
      "  --journal-interval-s S  min seconds between checkpoints (default 1)\n"
      "  --deadline-s S       wall-clock budget for the sweep; on expiry\n"
      "                       report the partial result and exit 75\n"
      "                       (HEC_DEADLINE_S when the flag is absent)\n"
      "  --shards N           run the sweep sharded across N worker\n"
      "                       processes with heartbeats, retries and work\n"
      "                       stealing; shard state lives in\n"
      "                       <journal>.shards/ (or a temp dir)\n"
      "  --shard-timeout-s S  heartbeat silence before a worker is presumed\n"
      "                       dead and its shard requeued (default 10)\n"
      "  --max-retries N      attempts per shard beyond the first\n"
      "                       (default 3); an exhausted shard fails the run\n"
      "  --listen HOST:PORT   accept sharded-sweep workers over TCP instead\n"
      "                       of forking them (hecsim_worker dials in);\n"
      "                       ':PORT' binds localhost, port 0 picks an\n"
      "                       ephemeral port (HEC_SHARD_LISTEN when the\n"
      "                       flag is absent); requires --shards\n"
      "  --net-timeout-s S    socket I/O timeout: handshake wait, blocked\n"
      "                       writes and idle-link ping window (default 10)\n"
      "  --profile-out FILE   hec-profile/v1 aggregated span-tree profile\n"
      "                       (counts + total/self wall time per call path);\n"
      "                       a .folded suffix writes collapsed flamegraph\n"
      "                       stacks instead\n"
      "  --sweep-stats        print the sweep's evaluated/pruned/memo\n"
      "                       breakdown after the result (exit codes and\n"
      "                       default output are unchanged)\n"
      "  --no-prune           disable the analytic bound-and-prune layer\n"
      "                       (journal/shard sweeps; frontier unchanged)\n"
      "  --no-simd            disable the SoA/SIMD inner kernel and use the\n"
      "                       scalar path (bit-identical results)\n"
      "  --ledger FILE        append one hec-run-ledger/v1 record (run id,\n"
      "                       build info, argv, key counters, wall, RSS,\n"
      "                       exit code) to FILE; see hecsim_obsreport\n"
      "  --version            print version and build provenance, exit 0\n"
      "  --build-info         print build provenance as JSON, exit 0\n"
      "journal/deadline/shard runs require --method exhaustive, no --budget\n"
      "flags accept both '--flag value' and '--flag=value'\n"
      "exit codes: 0 ok, 2 infeasible, 64 usage, 65 bad input file,\n"
      "            70 contract violation, 74 i/o error, 75 partial result,\n"
      "            1 other error\n";
}

struct Options {
  std::string workload;
  double deadline_ms = 0.0;
  std::optional<double> units;
  std::optional<double> budget_w;
  int max_arm = 10;
  int max_amd = 10;
  std::string method = "exhaustive";
  std::optional<std::string> arm_inputs;
  std::optional<std::string> amd_inputs;
  std::optional<double> mttf_h;
  std::optional<double> straggler_prob;
  std::optional<double> checkpoint_s;
  int trials = 64;
  std::optional<std::uint64_t> seed;
  std::optional<std::string> trace_out;
  std::optional<std::string> metrics_out;
  std::optional<std::string> status_out;
  int log_level = 0;
  std::optional<std::string> journal;
  std::optional<double> journal_interval_s;
  std::optional<double> wall_deadline_s;
  std::optional<std::size_t> shards;
  double shard_timeout_s = 10.0;
  std::size_t max_retries = 3;
  std::optional<std::string> listen;
  double net_timeout_s = 10.0;
  std::optional<std::string> profile_out;
  std::optional<std::string> ledger_out;
  bool sweep_stats = false;
  bool prune = true;
  bool simd = true;

  /// True when the sweep runs as coordinator + worker processes.
  bool sharded_requested() const { return shards.has_value(); }

  bool faults_requested() const {
    return mttf_h || straggler_prob || checkpoint_s;
  }
  bool obs_requested() const {
    return trace_out.has_value() || metrics_out.has_value() ||
           profile_out.has_value();
  }
  /// True when the run goes through the crash-safe resumable sweep
  /// instead of the legacy evaluate-everything loop. Gated on the new
  /// flags (plus HEC_DEADLINE_S) so default runs stay byte-identical.
  bool resilience_requested() const {
    return journal.has_value() || wall_deadline_s.has_value() ||
           hec::resilience::deadline_from_env() <
               std::numeric_limits<double>::infinity();
  }
};

double parse_number(const std::string& text, const std::string& what) {
  double value = 0.0;
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), value);
  if (ec != std::errc{} || ptr != begin + text.size()) {
    throw UsageError("bad " + what + ": '" + text + "'");
  }
  return value;
}

double parse_positive(const std::string& text, const std::string& what) {
  const double value = parse_number(text, what);
  if (!(value > 0.0)) {
    throw UsageError(what + " must be positive, got '" + text + "'");
  }
  return value;
}

Options parse_args(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Normalise "--flag=value" to "--flag" "value" so both spellings go
    // through the same parsing and produce the same diagnostics.
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        args.push_back(arg.substr(0, eq));
        args.push_back(arg.substr(eq + 1));
        continue;
      }
    }
    args.push_back(std::move(arg));
  }
  if (args.size() < 2) throw UsageError("missing arguments");
  Options opts;
  opts.workload = args[0];
  opts.deadline_ms = parse_positive(args[1], "deadline");
  for (std::size_t i = 2; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw UsageError("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    if (args[i] == "--units") {
      opts.units = parse_positive(next(), "--units");
    } else if (args[i] == "--budget") {
      opts.budget_w = parse_positive(next(), "--budget");
    } else if (args[i] == "--max-arm") {
      opts.max_arm = static_cast<int>(parse_number(next(), "--max-arm"));
    } else if (args[i] == "--max-amd") {
      opts.max_amd = static_cast<int>(parse_number(next(), "--max-amd"));
    } else if (args[i] == "--method") {
      opts.method = next();
    } else if (args[i] == "--arm-inputs") {
      opts.arm_inputs = next();
    } else if (args[i] == "--amd-inputs") {
      opts.amd_inputs = next();
    } else if (args[i] == "--mttf-h") {
      opts.mttf_h = parse_positive(next(), "--mttf-h");
    } else if (args[i] == "--straggler-prob") {
      const double p = parse_number(next(), "--straggler-prob");
      if (p < 0.0 || p > 1.0) {
        throw UsageError("--straggler-prob must be in [0, 1]");
      }
      opts.straggler_prob = p;
    } else if (args[i] == "--checkpoint-s") {
      opts.checkpoint_s = parse_positive(next(), "--checkpoint-s");
    } else if (args[i] == "--trials") {
      const double n = parse_positive(next(), "--trials");
      opts.trials = static_cast<int>(n);
    } else if (args[i] == "--seed") {
      opts.seed =
          static_cast<std::uint64_t>(parse_number(next(), "--seed"));
    } else if (args[i] == "--trace-out") {
      opts.trace_out = next();
    } else if (args[i] == "--metrics-out") {
      opts.metrics_out = next();
    } else if (args[i] == "--status-out") {
      opts.status_out = next();
    } else if (args[i] == "--profile-out") {
      opts.profile_out = next();
    } else if (args[i] == "--sweep-stats") {
      opts.sweep_stats = true;
    } else if (args[i] == "--no-prune") {
      opts.prune = false;
    } else if (args[i] == "--no-simd") {
      opts.simd = false;
    } else if (args[i] == "--ledger") {
      opts.ledger_out = next();
    } else if (args[i] == "--journal") {
      opts.journal = next();
    } else if (args[i] == "--journal-interval-s") {
      const double s = parse_number(next(), "--journal-interval-s");
      if (s < 0.0) {
        throw UsageError("--journal-interval-s must be >= 0");
      }
      opts.journal_interval_s = s;
    } else if (args[i] == "--deadline-s") {
      opts.wall_deadline_s = parse_positive(next(), "--deadline-s");
    } else if (args[i] == "--shards") {
      const double n = parse_positive(next(), "--shards");
      if (n != static_cast<double>(static_cast<std::size_t>(n))) {
        throw UsageError("--shards must be a positive integer");
      }
      opts.shards = static_cast<std::size_t>(n);
    } else if (args[i] == "--shard-timeout-s") {
      opts.shard_timeout_s = parse_positive(next(), "--shard-timeout-s");
    } else if (args[i] == "--listen") {
      opts.listen = next();
    } else if (args[i] == "--net-timeout-s") {
      opts.net_timeout_s = parse_positive(next(), "--net-timeout-s");
    } else if (args[i] == "--max-retries") {
      const double n = parse_number(next(), "--max-retries");
      if (n < 0.0 || n != static_cast<double>(static_cast<std::size_t>(n))) {
        throw UsageError("--max-retries must be a non-negative integer");
      }
      opts.max_retries = static_cast<std::size_t>(n);
    } else if (args[i] == "--log-level") {
      const double v = parse_number(next(), "--log-level");
      if (v < 0.0 || v > 2.0 ||
          v != static_cast<double>(static_cast<int>(v))) {
        throw UsageError("--log-level must be an integer in [0, 2], got '" +
                         args[i] + "'");
      }
      opts.log_level = static_cast<int>(v);
    } else {
      throw UsageError("unknown option: " + args[i]);
    }
  }
  if (opts.method != "exhaustive" && opts.method != "bnb" &&
      opts.method != "greedy") {
    throw UsageError("unknown method: " + opts.method);
  }
  if (opts.resilience_requested() || opts.sharded_requested()) {
    // The journal fingerprints the plain exhaustive enumeration; the
    // searchers and the budget filter evaluate a different (pruned)
    // sequence, so checkpoints would not describe their progress.
    if (opts.method != "exhaustive") {
      throw UsageError(
          "--journal/--deadline-s/--shards require --method exhaustive");
    }
    if (opts.budget_w) {
      throw UsageError(
          "--journal/--deadline-s/--shards cannot combine with --budget");
    }
  }
  if (opts.status_out && !opts.sharded_requested()) {
    throw UsageError("--status-out requires --shards");
  }
  if (!opts.listen) {
    if (const char* env = std::getenv("HEC_SHARD_LISTEN");
        env != nullptr && *env != '\0') {
      opts.listen = env;
    }
  }
  if (opts.listen) {
    if (!opts.sharded_requested()) {
      throw UsageError("--listen requires --shards");
    }
    // Fail at the CLI boundary, not mid-run inside the coordinator.
    hec::util::parse_endpoint(*opts.listen, "--listen", true);
  }
  return opts;
}

void print_outcome(const hec::ConfigOutcome& best, double work_units,
                   const hec::NodeSpec& arm, const hec::NodeSpec& amd,
                   const std::optional<double>& budget_w) {
  using hec::TablePrinter;
  std::cout << "\nRecommended configuration:\n";
  hec::TablePrinter table({"Side", "Nodes", "Cores", "Clock [GHz]",
                           "Work share"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  if (best.config.uses_arm()) {
    table.add_row({arm.name, std::to_string(best.config.arm.nodes),
                   std::to_string(best.config.arm.cores),
                   TablePrinter::num(best.config.arm.f_ghz, 1),
                   TablePrinter::num(best.units_arm, 0)});
  }
  if (best.config.uses_amd()) {
    table.add_row({amd.name, std::to_string(best.config.amd.nodes),
                   std::to_string(best.config.amd.cores),
                   TablePrinter::num(best.config.amd.f_ghz, 1),
                   TablePrinter::num(best.units_amd, 0)});
  }
  table.print(std::cout);
  std::cout << "\nService time : " << TablePrinter::num(best.t_s * 1e3, 1)
            << " ms\nJob energy   : "
            << TablePrinter::num(best.energy_j, 2) << " J (for "
            << TablePrinter::num(work_units, 0) << " work units)\n"
            << "Peak power   : "
            << TablePrinter::num(
                   config_peak_power_w(arm, amd, best.config), 1)
            << " W";
  if (budget_w) {
    std::cout << " (budget " << TablePrinter::num(*budget_w, 0) << " W)";
  }
  std::cout << "\n";
}

hec::FaultConfig fault_config_from(const Options& opts, double deadline_s) {
  hec::FaultConfig faults;
  if (opts.mttf_h) faults.mttf_s = *opts.mttf_h * 3600.0;
  if (opts.straggler_prob) {
    faults.straggler_prob = *opts.straggler_prob;
    // A straggler window spanning the nominal deadline: once a node
    // degrades it stays degraded for the rest of a typical job.
    faults.straggler_window_s = deadline_s;
  }
  if (opts.checkpoint_s) faults.checkpoint_interval_s = *opts.checkpoint_s;
  return faults;
}

void print_robust(const hec::RobustOutcome& robust, int trials,
                  double deadline_ms) {
  using hec::TablePrinter;
  std::cout << "\nUnder faults (" << trials << " Monte Carlo trials):\n"
            << "Expected time   : "
            << TablePrinter::num(robust.mean_t_s * 1e3, 1) << " ms\n"
            << "Expected energy : "
            << TablePrinter::num(robust.mean_energy_j, 2) << " J ("
            << TablePrinter::num(robust.mean_wasted_j, 2)
            << " J on lost work)\n"
            << "Deadline misses : "
            << TablePrinter::num(robust.miss_prob * 100.0, 1) << " % of "
            << TablePrinter::num(deadline_ms, 0) << " ms runs\n"
            << "Mean crashes    : "
            << TablePrinter::num(robust.mean_crashes, 2) << " per job\n";
}

/// Registers the metric schema up front so a dump always lists every
/// subsystem's counters, including those a particular run never hits
/// (a no-fault run still shows fault.crashes = 0).
void declare_metrics() {
  auto& reg = hec::obs::registry();
  for (const char* name :
       {"sim.events_processed", "sim.node_runs", "sim.work_units",
        "sim.core_busy_s", "sim.nic_busy_s", "sim.mem_stall_cycles",
        "model.predictions", "model.match_splits", "model.characterizations",
        "cluster.runs", "config.evaluations", "config.mc_trials",
        "sweep.blocks_pruned",
        "fault.runs", "fault.crashes", "fault.checkpoints", "fault.rematches",
        "fault.wasted_units", "pareto.frontier_calls", "search.evaluations"}) {
    reg.counter(name);
  }
  for (const char* name :
       {"resilience.checkpoints", "resilience.resumes",
        "resilience.journal_corrupt", "resilience.journal_bytes"}) {
    reg.counter(name);
  }
  for (const char* name :
       {"shard.spawns", "shard.reassignments", "shard.steals",
        "shard.retries", "shard.heartbeats", "shard.results_reused",
        "shard.telemetry_ingests", "shard.telemetry_rejected",
        "shard.configs_pruned",
        "shard.net.accepts", "shard.net.disconnects", "shard.net.reconnects",
        "shard.net.frames_rejected", "shard.net.partitions"}) {
    reg.counter(name);
  }
  reg.gauge("pareto.frontier_size");
  reg.gauge("sim.queue_depth");
  reg.gauge("resilience.configs_visited");
  reg.gauge("shard.shards_complete");
  reg.gauge("shard.configs_visited");
  reg.histogram("config.eval_wall_s");
  reg.histogram("shard.heartbeat_gap_s");
}

/// Provenance to append after run() returns. Populated by run() once
/// --ledger is parsed, consumed by main() — the record must carry the
/// final exit code, which only main() sees (including the error paths).
struct LedgerState {
  std::string path;
  std::vector<std::string> argv;
  std::string run_id;
  std::map<std::string, double> counters;
};
std::optional<LedgerState> g_ledger;

void write_observability(const Options& opts,
                         const hec::obs::ExternalTrace* external = nullptr) {
  // Atomic commits (hec::IoError → exit 74): an export never leaves a
  // truncated trace/metrics file behind, even on ENOSPC mid-write.
  if (opts.trace_out) {
    hec::util::AtomicFileWriter out(*opts.trace_out);
    if (opts.trace_out->ends_with(".jsonl")) {
      hec::obs::write_jsonl(out.stream(), hec::obs::tracer(),
                            hec::obs::registry());
    } else {
      hec::obs::write_chrome_trace(out.stream(), hec::obs::tracer(),
                                   &hec::obs::registry(), external);
    }
    out.commit();
    hec::obs::log(1, "wrote trace to " + *opts.trace_out);
  }
  if (opts.metrics_out) {
    hec::util::AtomicFileWriter out(*opts.metrics_out);
    hec::obs::write_prometheus(out.stream(), hec::obs::registry(),
                               &hec::obs::tracer());
    out.commit();
    hec::obs::log(1, "wrote metrics to " + *opts.metrics_out);
  }
  if (opts.profile_out) {
    hec::obs::ProfileTree tree;
    tree.add(hec::obs::tracer());
    if (external != nullptr) tree.add(*external);
    hec::util::AtomicFileWriter out(*opts.profile_out);
    if (opts.profile_out->ends_with(".folded")) {
      tree.write_collapsed(out.stream());
    } else {
      tree.write_json(out.stream());
    }
    out.commit();
    hec::obs::log(1, "wrote profile to " + *opts.profile_out);
  }
}

int run(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "--help" || first == "-h") {
      print_usage(std::cout);
      return 0;
    }
    if (first == "--version") {
      std::cout << "hecsim_cli "
                << hec::util::describe(hec::util::build_info()) << "\n";
      return 0;
    }
    if (first == "--build-info") {
      const hec::util::BuildInfo& build = hec::util::build_info();
      hec::bench::json::Value v;
      v["build_type"] = build.build_type;
      v["git_sha"] = build.git_sha;
      v["obs"] = build.obs_enabled;
      v["tool"] = "hecsim_cli";
      v["version"] = build.version;
      std::cout << v.dump() << "\n";
      return 0;
    }
  }
  const Options opts = parse_args(argc, argv);
  if (opts.ledger_out) {
    g_ledger.emplace();
    g_ledger->path = *opts.ledger_out;
    for (int i = 0; i < argc; ++i) g_ledger->argv.emplace_back(argv[i]);
  }
  hec::obs::set_log_level(opts.log_level);
  if (opts.obs_requested()) declare_metrics();
  const hec::Workload workload = hec::find_workload(opts.workload);
  const double units = opts.units.value_or(workload.analysis_units);
  const double deadline_s = opts.deadline_ms * 1e-3;

  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();
  std::cout << "Characterising " << workload.name << " ("
            << hec::to_string(workload.bottleneck)
            << "-bound) on both node types...\n";
  // A side with a persisted inputs file skips the (expensive) workload
  // baseline runs; power characterisation is cheap and always measured.
  const auto make_model = [&](const hec::NodeSpec& spec,
                              const std::optional<std::string>& inputs_file) {
    if (!inputs_file) return build_node_model(spec, workload);
    return hec::NodeTypeModel(spec, hec::load_workload_inputs(*inputs_file),
                              characterize_power(spec));
  };
  const auto models = [&] {
    HEC_SPAN("cli.characterize");
    auto arm_m = make_model(arm, opts.arm_inputs);
    auto amd_m = make_model(amd, opts.amd_inputs);
    return std::pair{std::move(arm_m), std::move(amd_m)};
  }();
  const hec::NodeTypeModel& arm_model = models.first;
  const hec::NodeTypeModel& amd_model = models.second;
  const hec::ConfigEvaluator evaluator(arm_model, amd_model);
  const hec::EnumerationLimits limits{opts.max_arm, opts.max_amd};

  auto within_cap = [&](const hec::ClusterConfig& c) {
    return !opts.budget_w ||
           config_peak_power_w(arm, amd, c) <= *opts.budget_w;
  };

  std::optional<hec::ConfigOutcome> best;
  std::size_t evaluations = 0;
  bool partial = false;              // wall deadline stopped the sweep
  bool shards_failed = false;        // a shard exhausted its retry budget
  std::size_t configs_total = 0;     // coverage denominator when partial
  // Evaluated/pruned split for --sweep-stats and the ledger. Present on
  // the sweep-engine paths (sharded, resumable); the legacy loop and the
  // searchers evaluate everything they visit, so pruned stays 0 there.
  bool have_sweep_split = false;
  std::size_t sweep_evaluated = 0;
  std::size_t sweep_pruned = 0;
  // Collected only when a trace/metrics file was requested: the frontier
  // over evaluated points is observability output, not part of the
  // query, and the default run must stay byte-identical.
  std::vector<hec::TimeEnergyPoint> evaluated_points;
  // Worker spans + coordinator decisions from a sharded run, threaded
  // into the Chrome trace export. Empty (and skipped by the writer) on
  // every other path.
  hec::obs::ExternalTrace merged_trace;
  // Picks the cheapest deadline-feasible point off a (time-sorted)
  // frontier and re-evaluates its configuration for the full outcome.
  const auto best_from_frontier =
      [&](const std::vector<hec::TimeEnergyPoint>& frontier) {
        std::optional<std::size_t> pick;
        for (const auto& p : frontier) {
          if (p.t_s > deadline_s) break;
          pick = p.tag;
        }
        if (pick) {
          const hec::ConfigSpaceLayout layout(arm, amd, limits);
          best = evaluator.evaluate(layout.config(*pick), units);
        }
      };
  {
    HEC_SPAN("cli.evaluate");
    if (opts.sharded_requested()) {
      // Fault-tolerant multi-process path: shard the space across
      // worker processes with heartbeats, retries and work stealing.
      hec::shard::ShardedSweepOptions sop;
      sop.workers = *opts.shards;
      sop.heartbeat_timeout_s = opts.shard_timeout_s;
      sop.max_retries = opts.max_retries;
      sop.deadline_s =
          opts.wall_deadline_s.value_or(hec::resilience::deadline_from_env());
      sop.prune = opts.prune;
      sop.simd = opts.simd;
      if (opts.listen) sop.listen = *opts.listen;
      sop.net_timeout_s = opts.net_timeout_s;
      if (opts.status_out) sop.status_path = *opts.status_out;
      // A traced/metered run flushes telemetry at every journal commit:
      // deterministic sidecar contents are worth more than the saved
      // writes when the user asked to observe the run.
      if (opts.obs_requested()) sop.telemetry_interval_s = 0.0;
      bool temp_state = false;
      if (opts.journal) {
        sop.state_dir = *opts.journal + ".shards";
      } else {
        char tmpl[] = "/tmp/hecsim-shards-XXXXXX";
        if (::mkdtemp(tmpl) == nullptr) {
          throw hec::IoError("cannot create shard state dir");
        }
        sop.state_dir = tmpl;
        temp_state = true;
      }
      hec::shard::ShardedSweepResult sweep =
          hec::shard::sharded_sweep_frontier(arm_model, amd_model, limits,
                                             units, sop);
      merged_trace = std::move(sweep.trace);
      evaluations = sweep.configs_visited;
      partial = sweep.deadline_hit;
      shards_failed = !sweep.failed_shards.empty();
      configs_total = sweep.configs_total;
      have_sweep_split = true;
      sweep_evaluated = sweep.configs_evaluated;
      sweep_pruned = sweep.configs_pruned;
      if (g_ledger) {
        char run_id[32];
        std::snprintf(run_id, sizeof(run_id), "%016llx",
                      static_cast<unsigned long long>(sweep.run_id));
        g_ledger->run_id = run_id;
        g_ledger->counters["shard.spawns"] =
            static_cast<double>(sweep.spawns);
        g_ledger->counters["shard.reassignments"] =
            static_cast<double>(sweep.reassignments);
        g_ledger->counters["shard.steals"] =
            static_cast<double>(sweep.steals);
        g_ledger->counters["shard.retries"] =
            static_cast<double>(sweep.retries);
        g_ledger->counters["shard.results_reused"] =
            static_cast<double>(sweep.results_reused);
      }
      std::cout << "(sharded sweep: " << sweep.shards_complete << "/"
                << sweep.shards_total << " shards across " << sop.workers
                << " workers; " << sweep.spawns << " spawns, "
                << sweep.reassignments << " reassignments, " << sweep.steals
                << " steals, " << sweep.retries << " retries, "
                << sweep.results_reused << " results reused)\n";
      best_from_frontier(sweep.frontier);
      if (sweep.complete && temp_state) {
        // Ephemeral state dir: nothing to resume, leave nothing behind.
        for (std::size_t i = 0; i < sweep.shards_total; ++i) {
          std::remove(
              hec::shard::shard_result_path(sop.state_dir, i).c_str());
          std::remove(
              hec::shard::shard_journal_path(sop.state_dir, i).c_str());
        }
        for (std::uint64_t a = 1; a <= sweep.spawns; ++a) {
          std::remove(
              hec::shard::shard_telemetry_path(sop.state_dir, a).c_str());
        }
        ::rmdir(sop.state_dir.c_str());
      }
    } else if (opts.resilience_requested()) {
      // Crash-safe path: checkpointed, deadline-bounded streaming sweep
      // over the full space (bit-identical frontier to the legacy loop).
      hec::resilience::ResilienceOptions rop;
      if (opts.journal) rop.journal_path = *opts.journal;
      if (opts.journal_interval_s) {
        rop.checkpoint_interval_s = *opts.journal_interval_s;
      }
      rop.deadline_s =
          opts.wall_deadline_s.value_or(hec::resilience::deadline_from_env());
      hec::SweepOptions swop;
      swop.prune = opts.prune;
      swop.simd = opts.simd;
      const hec::resilience::ResumableSweepResult sweep =
          hec::resilience::resumable_sweep_frontier(arm_model, amd_model,
                                                    limits, units, swop, rop);
      evaluations = sweep.configs_visited;
      partial = !sweep.complete;
      configs_total = sweep.configs_total;
      have_sweep_split = true;
      sweep_evaluated = sweep.stats.evaluated;
      sweep_pruned = sweep.stats.pruned;
      if (sweep.resumed) {
        std::cout << "(resumed from checkpoint: " << sweep.resume_cursor
                  << " of " << sweep.configs_total
                  << " configurations already evaluated)\n";
      }
      // The frontier is sorted by ascending time / descending energy, so
      // the last deadline-feasible point is the cheapest feasible one.
      best_from_frontier(sweep.frontier);
    } else if (opts.method == "exhaustive" || opts.budget_w) {
      // Budgeted queries always use the exhaustive path: the searchers'
      // bounds do not account for the power cap.
      const auto configs = enumerate_configs(arm, amd, limits);
      // Batch-level timer: per-config clock reads would dominate the
      // ~100 ns evaluations they measure (see ConfigEvaluator::evaluate_all).
      HEC_SCOPED_TIMER("config.eval_wall_s");
      for (const auto& config : configs) {
        if (!within_cap(config)) continue;
        const hec::ConfigOutcome outcome = evaluator.evaluate(config, units);
        if (opts.obs_requested()) {
          evaluated_points.push_back(
              {outcome.t_s, outcome.energy_j, evaluations});
        }
        ++evaluations;
        if (outcome.t_s <= deadline_s &&
            (!best || outcome.energy_j < best->energy_j)) {
          best = outcome;
        }
      }
    } else {
      const auto result =
          opts.method == "bnb"
              ? branch_and_bound_search(evaluator, arm, amd, limits, units,
                                        deadline_s)
              : greedy_search(evaluator, arm, amd, limits, units, deadline_s);
      if (result) {
        best = result->best;
        evaluations = result->evaluations;
      }
    }
  }
  if (g_ledger) {
    // Protocol-derived tallies only: these come from the sweep results
    // themselves, so the record is identical under HEC_OBS_DISABLE.
    g_ledger->counters["sweep.configs_visited"] =
        static_cast<double>(evaluations);
    if (configs_total > 0) {
      g_ledger->counters["sweep.configs_total"] =
          static_cast<double>(configs_total);
    }
    if (have_sweep_split) {
      g_ledger->counters["sweep.configs_evaluated"] =
          static_cast<double>(sweep_evaluated);
      g_ledger->counters["sweep.configs_pruned"] =
          static_cast<double>(sweep_pruned);
    }
  }
  if (!evaluated_points.empty()) {
    HEC_SPAN("cli.pareto");
    const auto frontier = hec::pareto_frontier(evaluated_points);
    hec::obs::log(1, "pareto frontier: " + std::to_string(frontier.size()) +
                         " of " + std::to_string(evaluated_points.size()) +
                         " evaluated points");
  }

  if (partial) {
    std::cout << "Partial sweep: visited " << evaluations << " of "
              << configs_total
              << " configurations before the wall-clock deadline";
    if (opts.journal) {
      std::cout << "; re-run with --journal " << *opts.journal
                << " to continue";
    }
    std::cout << ".\n";
  }
  if (shards_failed) {
    std::cout << "Sharded sweep: some shards exhausted their retry budget "
                 "(see stderr); covered " << evaluations << " of "
              << configs_total << " configurations.\n";
  }
  if (opts.sweep_stats) {
    // Opt-in diagnostics: strictly additive output, exit codes and the
    // default byte stream are untouched.
    const std::size_t visited = sweep_evaluated + sweep_pruned;
    std::cout << "(sweep stats: ";
    if (have_sweep_split) {
      const double frac =
          visited > 0 ? static_cast<double>(sweep_pruned) /
                            static_cast<double>(visited) * 100.0
                      : 0.0;
      char pct[16];
      std::snprintf(pct, sizeof pct, "%.1f", frac);
      const hec::ConfigSpaceLayout layout(arm, amd, limits);
      std::cout << visited << " visited = " << sweep_evaluated
                << " evaluated + " << sweep_pruned << " pruned [" << pct
                << "%]; memo: "
                << layout.arm_points() + layout.amd_points()
                << " deployment tables served " << sweep_evaluated
                << " evaluations";
    } else {
      std::cout << evaluations << " evaluated, 0 pruned (method "
                << opts.method << " evaluates everything it visits)";
    }
    std::cout << ")\n";
  }
  if (!best) {
    std::cout << "No configuration of up to " << opts.max_arm << " ARM + "
              << opts.max_amd << " AMD nodes"
              << (opts.budget_w ? " within the power budget" : "")
              << (partial ? " in the visited prefix" : "") << " meets "
              << opts.deadline_ms << " ms.\n";
    write_observability(opts, &merged_trace);
    if (shards_failed) return 1;
    return partial ? hec::resilience::kExitPartial : 2;
  }
  std::cout << "(" << evaluations << " model evaluations, method "
            << opts.method << (partial ? ", partial" : "") << ")\n";
  print_outcome(*best, units, arm, amd, opts.budget_w);

  if (opts.faults_requested()) {
    HEC_SPAN("cli.robust");
    const hec::FaultConfig faults = fault_config_from(opts, deadline_s);
    hec::MonteCarloOptions mc;
    mc.trials = opts.trials;
    if (opts.seed) mc.base_seed = *opts.seed;
    const hec::RobustConfigEvaluator robust(arm_model, amd_model, faults,
                                            mc);
    print_robust(robust.evaluate(best->config, units, deadline_s),
                 mc.trials, opts.deadline_ms);
  }
  write_observability(opts, &merged_trace);
  if (shards_failed) return 1;
  return partial ? hec::resilience::kExitPartial : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto start = std::chrono::steady_clock::now();
  const int code = [&] {
    try {
      hec::util::arm_failpoints_from_env();
      return run(argc, argv);
    } catch (const UsageError& e) {
      std::cerr << "usage error: " << e.what() << "\n";
      print_usage(std::cerr);
      return 64;
    } catch (const hec::util::FailpointParseError& e) {
      std::cerr << "usage error: " << e.what() << "\n";
      return 64;
    } catch (const hec::util::EnvParseError& e) {
      // Malformed environment knobs (HEC_DEADLINE_S etc.) are user
      // input: diagnose and exit 64 rather than silently running
      // without them.
      std::cerr << "usage error: " << e.what() << "\n";
      return 64;
    } catch (const hec::ParseError& e) {
      std::cerr << "parse error: " << e.what() << "\n";
      return 65;
    } catch (const hec::ContractViolation& e) {
      std::cerr << "contract violation: " << e.what() << "\n";
      return 70;
    } catch (const hec::IoError& e) {
      std::cerr << "i/o error: " << e.what() << "\n";
      return hec::util::kExitIoError;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }();
  if (g_ledger) {
    // Best-effort provenance: a failed append warns but never changes
    // the exit code the query itself earned.
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    hec::bench::ledger::Record rec =
        hec::bench::ledger::make_record("hecsim_cli", g_ledger->argv);
    rec.run_id = g_ledger->run_id;
    rec.exit_code = code;
    rec.wall_s = wall.count();
    rec.counters = std::move(g_ledger->counters);
    try {
      hec::bench::ledger::append(g_ledger->path, rec);
    } catch (const std::exception& e) {
      std::cerr << "warning: " << e.what() << "\n";
    }
  }
  return code;
}
