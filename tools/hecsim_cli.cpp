// hecsim_cli — command-line front end for the canonical query:
//
//   "Which cluster configuration services this workload within this
//    deadline using the least energy?"
//
//   hecsim_cli <workload> <deadline_ms>
//              [--units N]            job size (default: paper's analysis size)
//              [--budget WATTS]       peak-power cap on the configuration
//              [--max-arm N]          low-power pool size (default 10)
//              [--max-amd N]          high-performance pool size (default 10)
//              [--method exhaustive|bnb|greedy]   search strategy
//              [--arm-inputs FILE]    load ARM workload inputs from FILE
//              [--amd-inputs FILE]    load AMD workload inputs from FILE
//              [--mttf-h H]           per-node MTTF in hours (enables faults)
//              [--straggler-prob P]   per-node straggler probability
//              [--checkpoint-s S]     checkpoint interval in seconds
//              [--trials N]           Monte Carlo fault seeds (default 64)
//              [--seed S]             Monte Carlo base seed
//
// Workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048.
//
// Exit codes: 0 success; 2 no feasible configuration; 64 usage error;
// 65 malformed input file (ParseError); 70 internal contract violation;
// 1 any other error.
#include <charconv>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "hec/config/budget.h"
#include "hec/config/enumerate.h"
#include "hec/config/evaluate.h"
#include "hec/config/robust_evaluate.h"
#include "hec/hw/catalog.h"
#include "hec/io/table.h"
#include "hec/model/characterize.h"
#include "hec/model/inputs_io.h"
#include "hec/pareto/frontier.h"
#include "hec/search/optimizer.h"
#include "hec/util/expect.h"
#include "hec/workloads/workload.h"

namespace {

/// Bad command line (unknown flag, malformed value, missing argument):
/// exit code 64, after sysexits.h EX_USAGE.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

void print_usage(std::ostream& out) {
  out <<
      "usage: hecsim_cli <workload> <deadline_ms> [options]\n"
      "  workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048\n"
      "  --units N            job size in work units\n"
      "  --budget W           peak-power cap in watts\n"
      "  --max-arm N          low-power pool size (default 10)\n"
      "  --max-amd N          high-performance pool size (default 10)\n"
      "  --method M           exhaustive | bnb | greedy (default exhaustive)\n"
      "  --arm-inputs FILE    load ARM workload inputs instead of measuring\n"
      "  --amd-inputs FILE    load AMD workload inputs instead of measuring\n"
      "  --mttf-h H           per-node mean time to failure in hours\n"
      "  --straggler-prob P   per-node straggler probability in [0, 1]\n"
      "  --checkpoint-s S     checkpoint interval in seconds\n"
      "  --trials N           Monte Carlo fault seeds (default 64)\n"
      "  --seed S             Monte Carlo base seed\n"
      "exit codes: 0 ok, 2 infeasible, 64 usage, 65 bad input file,\n"
      "            70 contract violation, 1 other error\n";
}

struct Options {
  std::string workload;
  double deadline_ms = 0.0;
  std::optional<double> units;
  std::optional<double> budget_w;
  int max_arm = 10;
  int max_amd = 10;
  std::string method = "exhaustive";
  std::optional<std::string> arm_inputs;
  std::optional<std::string> amd_inputs;
  std::optional<double> mttf_h;
  std::optional<double> straggler_prob;
  std::optional<double> checkpoint_s;
  int trials = 64;
  std::optional<std::uint64_t> seed;

  bool faults_requested() const {
    return mttf_h || straggler_prob || checkpoint_s;
  }
};

double parse_number(const std::string& text, const std::string& what) {
  double value = 0.0;
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), value);
  if (ec != std::errc{} || ptr != begin + text.size()) {
    throw UsageError("bad " + what + ": '" + text + "'");
  }
  return value;
}

double parse_positive(const std::string& text, const std::string& what) {
  const double value = parse_number(text, what);
  if (!(value > 0.0)) {
    throw UsageError(what + " must be positive, got '" + text + "'");
  }
  return value;
}

Options parse_args(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 2) throw UsageError("missing arguments");
  Options opts;
  opts.workload = args[0];
  opts.deadline_ms = parse_positive(args[1], "deadline");
  for (std::size_t i = 2; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw UsageError("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    if (args[i] == "--units") {
      opts.units = parse_positive(next(), "--units");
    } else if (args[i] == "--budget") {
      opts.budget_w = parse_positive(next(), "--budget");
    } else if (args[i] == "--max-arm") {
      opts.max_arm = static_cast<int>(parse_number(next(), "--max-arm"));
    } else if (args[i] == "--max-amd") {
      opts.max_amd = static_cast<int>(parse_number(next(), "--max-amd"));
    } else if (args[i] == "--method") {
      opts.method = next();
    } else if (args[i] == "--arm-inputs") {
      opts.arm_inputs = next();
    } else if (args[i] == "--amd-inputs") {
      opts.amd_inputs = next();
    } else if (args[i] == "--mttf-h") {
      opts.mttf_h = parse_positive(next(), "--mttf-h");
    } else if (args[i] == "--straggler-prob") {
      const double p = parse_number(next(), "--straggler-prob");
      if (p < 0.0 || p > 1.0) {
        throw UsageError("--straggler-prob must be in [0, 1]");
      }
      opts.straggler_prob = p;
    } else if (args[i] == "--checkpoint-s") {
      opts.checkpoint_s = parse_positive(next(), "--checkpoint-s");
    } else if (args[i] == "--trials") {
      const double n = parse_positive(next(), "--trials");
      opts.trials = static_cast<int>(n);
    } else if (args[i] == "--seed") {
      opts.seed =
          static_cast<std::uint64_t>(parse_number(next(), "--seed"));
    } else {
      throw UsageError("unknown option: " + args[i]);
    }
  }
  if (opts.method != "exhaustive" && opts.method != "bnb" &&
      opts.method != "greedy") {
    throw UsageError("unknown method: " + opts.method);
  }
  return opts;
}

void print_outcome(const hec::ConfigOutcome& best, double work_units,
                   const hec::NodeSpec& arm, const hec::NodeSpec& amd,
                   const std::optional<double>& budget_w) {
  using hec::TablePrinter;
  std::cout << "\nRecommended configuration:\n";
  hec::TablePrinter table({"Side", "Nodes", "Cores", "Clock [GHz]",
                           "Work share"});
  table.set_alignment({hec::Align::kLeft, hec::Align::kRight,
                       hec::Align::kRight, hec::Align::kRight,
                       hec::Align::kRight});
  if (best.config.uses_arm()) {
    table.add_row({arm.name, std::to_string(best.config.arm.nodes),
                   std::to_string(best.config.arm.cores),
                   TablePrinter::num(best.config.arm.f_ghz, 1),
                   TablePrinter::num(best.units_arm, 0)});
  }
  if (best.config.uses_amd()) {
    table.add_row({amd.name, std::to_string(best.config.amd.nodes),
                   std::to_string(best.config.amd.cores),
                   TablePrinter::num(best.config.amd.f_ghz, 1),
                   TablePrinter::num(best.units_amd, 0)});
  }
  table.print(std::cout);
  std::cout << "\nService time : " << TablePrinter::num(best.t_s * 1e3, 1)
            << " ms\nJob energy   : "
            << TablePrinter::num(best.energy_j, 2) << " J (for "
            << TablePrinter::num(work_units, 0) << " work units)\n"
            << "Peak power   : "
            << TablePrinter::num(
                   config_peak_power_w(arm, amd, best.config), 1)
            << " W";
  if (budget_w) {
    std::cout << " (budget " << TablePrinter::num(*budget_w, 0) << " W)";
  }
  std::cout << "\n";
}

hec::FaultConfig fault_config_from(const Options& opts, double deadline_s) {
  hec::FaultConfig faults;
  if (opts.mttf_h) faults.mttf_s = *opts.mttf_h * 3600.0;
  if (opts.straggler_prob) {
    faults.straggler_prob = *opts.straggler_prob;
    // A straggler window spanning the nominal deadline: once a node
    // degrades it stays degraded for the rest of a typical job.
    faults.straggler_window_s = deadline_s;
  }
  if (opts.checkpoint_s) faults.checkpoint_interval_s = *opts.checkpoint_s;
  return faults;
}

void print_robust(const hec::RobustOutcome& robust, int trials,
                  double deadline_ms) {
  using hec::TablePrinter;
  std::cout << "\nUnder faults (" << trials << " Monte Carlo trials):\n"
            << "Expected time   : "
            << TablePrinter::num(robust.mean_t_s * 1e3, 1) << " ms\n"
            << "Expected energy : "
            << TablePrinter::num(robust.mean_energy_j, 2) << " J ("
            << TablePrinter::num(robust.mean_wasted_j, 2)
            << " J on lost work)\n"
            << "Deadline misses : "
            << TablePrinter::num(robust.miss_prob * 100.0, 1) << " % of "
            << TablePrinter::num(deadline_ms, 0) << " ms runs\n"
            << "Mean crashes    : "
            << TablePrinter::num(robust.mean_crashes, 2) << " per job\n";
}

int run(int argc, char** argv) {
  if (argc >= 2 && (std::string(argv[1]) == "--help" ||
                    std::string(argv[1]) == "-h")) {
    print_usage(std::cout);
    return 0;
  }
  const Options opts = parse_args(argc, argv);
  const hec::Workload workload = hec::find_workload(opts.workload);
  const double units = opts.units.value_or(workload.analysis_units);
  const double deadline_s = opts.deadline_ms * 1e-3;

  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();
  std::cout << "Characterising " << workload.name << " ("
            << hec::to_string(workload.bottleneck)
            << "-bound) on both node types...\n";
  // A side with a persisted inputs file skips the (expensive) workload
  // baseline runs; power characterisation is cheap and always measured.
  const auto make_model = [&](const hec::NodeSpec& spec,
                              const std::optional<std::string>& inputs_file) {
    if (!inputs_file) return build_node_model(spec, workload);
    return hec::NodeTypeModel(spec, hec::load_workload_inputs(*inputs_file),
                              characterize_power(spec));
  };
  const hec::NodeTypeModel arm_model = make_model(arm, opts.arm_inputs);
  const hec::NodeTypeModel amd_model = make_model(amd, opts.amd_inputs);
  const hec::ConfigEvaluator evaluator(arm_model, amd_model);
  const hec::EnumerationLimits limits{opts.max_arm, opts.max_amd};

  auto within_cap = [&](const hec::ClusterConfig& c) {
    return !opts.budget_w ||
           config_peak_power_w(arm, amd, c) <= *opts.budget_w;
  };

  std::optional<hec::ConfigOutcome> best;
  std::size_t evaluations = 0;
  if (opts.method == "exhaustive" || opts.budget_w) {
    // Budgeted queries always use the exhaustive path: the searchers'
    // bounds do not account for the power cap.
    const auto configs = enumerate_configs(arm, amd, limits);
    for (const auto& config : configs) {
      if (!within_cap(config)) continue;
      const hec::ConfigOutcome outcome = evaluator.evaluate(config, units);
      ++evaluations;
      if (outcome.t_s <= deadline_s &&
          (!best || outcome.energy_j < best->energy_j)) {
        best = outcome;
      }
    }
  } else {
    const auto result =
        opts.method == "bnb"
            ? branch_and_bound_search(evaluator, arm, amd, limits, units,
                                      deadline_s)
            : greedy_search(evaluator, arm, amd, limits, units, deadline_s);
    if (result) {
      best = result->best;
      evaluations = result->evaluations;
    }
  }

  if (!best) {
    std::cout << "No configuration of up to " << opts.max_arm << " ARM + "
              << opts.max_amd << " AMD nodes"
              << (opts.budget_w ? " within the power budget" : "")
              << " meets " << opts.deadline_ms << " ms.\n";
    return 2;
  }
  std::cout << "(" << evaluations << " model evaluations, method "
            << opts.method << ")\n";
  print_outcome(*best, units, arm, amd, opts.budget_w);

  if (opts.faults_requested()) {
    const hec::FaultConfig faults = fault_config_from(opts, deadline_s);
    hec::MonteCarloOptions mc;
    mc.trials = opts.trials;
    if (opts.seed) mc.base_seed = *opts.seed;
    const hec::RobustConfigEvaluator robust(arm_model, amd_model, faults,
                                            mc);
    print_robust(robust.evaluate(best->config, units, deadline_s),
                 mc.trials, opts.deadline_ms);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    print_usage(std::cerr);
    return 64;
  } catch (const hec::ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 65;
  } catch (const hec::ContractViolation& e) {
    std::cerr << "contract violation: " << e.what() << "\n";
    return 70;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
