// hecsim_worker — standalone socket worker for sharded sweeps.
//
//   hecsim_worker <workload> --connect HOST:PORT [options]
//
// Dials a hecsim_cli coordinator started with --listen, authenticates
// with the configuration-space fingerprint, and serves shard attempts
// until the coordinator says bye. The worker builds the SAME node
// models and enumeration space as the coordinator (same binary, same
// workload, same --units/--max-arm/--max-amd), which is what makes the
// fingerprints match; a worker launched with different limits is
// rejected at the handshake instead of silently corrupting the merge.
//
// Connection loss — coordinator restart, network blip, silence past
// the net timeout — sends the worker back to the dial loop with capped
// exponential backoff plus jitter; its local journals let a re-handed
// shard resume from the last epoch boundary. The worker exits 0 once
// the run ends (bye, or the listener is gone after it has served), and
// 1 if it never managed to serve at all.
//
//   --connect HOST:PORT  coordinator endpoint (HEC_SHARD_CONNECT when
//                        the flag is absent); ':PORT' dials localhost
//   --units N            job size in work units (default: the
//                        workload's analysis size — must match the
//                        coordinator)
//   --max-arm N          low-power pool size (default 10)
//   --max-amd N          high-performance pool size (default 10)
//   --arm-inputs FILE    load ARM workload inputs instead of measuring
//   --amd-inputs FILE    load AMD workload inputs instead of measuring
//   --state-dir DIR      journal/result/telemetry directory (default: a
//                        fresh temp dir; pass the coordinator's
//                        <journal>.shards dir on loopback runs to get
//                        result reuse across restarts)
//   --threads N          sweep threads (default: hardware concurrency)
//   --net-timeout-s S    socket I/O + idle timeout (default 10; keep
//                        equal to the coordinator's --net-timeout-s)
//   --max-redials N      consecutive failed dials before giving up
//                        (default 20)
//   --no-prune           disable the analytic bound-and-prune layer
//   --no-simd            disable the SoA/SIMD inner kernel
//   --log-level N        stderr verbosity: 0 quiet .. 2 debug
//
// Environment: HEC_SHARD_CONNECT supplies the endpoint when --connect
// is absent; HEC_FAILPOINT arms the deterministic failpoint harness
// (net.read, net.write, net.frame.corrupt, shard.attempt.<n>, ...).
//
// Exit codes: 0 run complete (served and told bye, or coordinator
// gone after serving); 1 never served (dials exhausted); 64 usage
// error; 65 malformed input file; 74 i/o error.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <dirent.h>
#include <unistd.h>

#include "hec/config/enumerate.h"
#include "hec/hw/catalog.h"
#include "hec/model/characterize.h"
#include "hec/model/inputs_io.h"
#include "hec/obs/obs.h"
#include "hec/shard/worker_loop.h"
#include "hec/util/atomic_file.h"
#include "hec/util/env.h"
#include "hec/util/expect.h"
#include "hec/util/failpoint.h"
#include "hec/workloads/workload.h"

namespace {

class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

void print_usage(std::ostream& out) {
  out <<
      "usage: hecsim_worker <workload> --connect HOST:PORT [options]\n"
      "  workloads: EP, memcached, x264, blackscholes, Julius, RSA-2048\n"
      "  --connect HOST:PORT  coordinator endpoint (HEC_SHARD_CONNECT when\n"
      "                       absent); ':PORT' dials localhost\n"
      "  --units N            job size in work units (must match the\n"
      "                       coordinator; default: analysis size)\n"
      "  --max-arm N          low-power pool size (default 10)\n"
      "  --max-amd N          high-performance pool size (default 10)\n"
      "  --arm-inputs FILE    load ARM workload inputs instead of measuring\n"
      "  --amd-inputs FILE    load AMD workload inputs instead of measuring\n"
      "  --state-dir DIR      journal/result/telemetry dir (default: temp)\n"
      "  --threads N          sweep threads (default: all cores)\n"
      "  --net-timeout-s S    socket I/O + idle timeout (default 10)\n"
      "  --max-redials N      failed dials before giving up (default 20)\n"
      "  --no-prune           disable the bound-and-prune layer\n"
      "  --no-simd            disable the SoA/SIMD inner kernel\n"
      "  --log-level N        stderr verbosity: 0 quiet .. 2 debug\n"
      "flags accept both '--flag value' and '--flag=value'\n"
      "exit codes: 0 run complete, 1 never served, 64 usage,\n"
      "            65 bad input file, 74 i/o error\n";
}

struct Options {
  std::string workload;
  std::optional<std::string> connect;
  std::optional<double> units;
  int max_arm = 10;
  int max_amd = 10;
  std::optional<std::string> arm_inputs;
  std::optional<std::string> amd_inputs;
  std::optional<std::string> state_dir;
  std::size_t threads = 0;
  double net_timeout_s = 10.0;
  std::size_t max_redials = 20;
  bool prune = true;
  bool simd = true;
  int log_level = 0;
};

double parse_number(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    throw UsageError("bad " + what + ": '" + text + "'");
  }
  if (used != text.size()) {
    throw UsageError("bad " + what + ": '" + text + "'");
  }
  return value;
}

double parse_positive(const std::string& text, const std::string& what) {
  const double value = parse_number(text, what);
  if (!(value > 0.0)) {
    throw UsageError(what + " must be positive, got '" + text + "'");
  }
  return value;
}

std::size_t parse_count(const std::string& text, const std::string& what) {
  const double n = parse_number(text, what);
  if (n < 0.0 || n != static_cast<double>(static_cast<std::size_t>(n))) {
    throw UsageError(what + " must be a non-negative integer, got '" + text +
                     "'");
  }
  return static_cast<std::size_t>(n);
}

Options parse_args(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      if (const auto eq = arg.find('='); eq != std::string::npos) {
        args.push_back(arg.substr(0, eq));
        args.push_back(arg.substr(eq + 1));
        continue;
      }
    }
    args.push_back(std::move(arg));
  }
  if (args.empty()) throw UsageError("missing workload");
  Options opts;
  opts.workload = args[0];
  for (std::size_t i = 1; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw UsageError("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    if (args[i] == "--connect") {
      opts.connect = next();
    } else if (args[i] == "--units") {
      opts.units = parse_positive(next(), "--units");
    } else if (args[i] == "--max-arm") {
      opts.max_arm = static_cast<int>(parse_number(next(), "--max-arm"));
    } else if (args[i] == "--max-amd") {
      opts.max_amd = static_cast<int>(parse_number(next(), "--max-amd"));
    } else if (args[i] == "--arm-inputs") {
      opts.arm_inputs = next();
    } else if (args[i] == "--amd-inputs") {
      opts.amd_inputs = next();
    } else if (args[i] == "--state-dir") {
      opts.state_dir = next();
    } else if (args[i] == "--threads") {
      opts.threads = parse_count(next(), "--threads");
    } else if (args[i] == "--net-timeout-s") {
      opts.net_timeout_s = parse_positive(next(), "--net-timeout-s");
    } else if (args[i] == "--max-redials") {
      opts.max_redials = parse_count(next(), "--max-redials");
    } else if (args[i] == "--no-prune") {
      opts.prune = false;
    } else if (args[i] == "--no-simd") {
      opts.simd = false;
    } else if (args[i] == "--log-level") {
      const double v = parse_number(next(), "--log-level");
      if (v < 0.0 || v > 2.0 ||
          v != static_cast<double>(static_cast<int>(v))) {
        throw UsageError("--log-level must be an integer in [0, 2]");
      }
      opts.log_level = static_cast<int>(v);
    } else {
      throw UsageError("unknown option: " + args[i]);
    }
  }
  if (!opts.connect) {
    if (const char* env = std::getenv("HEC_SHARD_CONNECT");
        env != nullptr && *env != '\0') {
      opts.connect = env;
    }
  }
  if (!opts.connect) {
    throw UsageError("--connect (or HEC_SHARD_CONNECT) is required");
  }
  return opts;
}

int run(int argc, char** argv) {
  if (argc >= 2) {
    const std::string first = argv[1];
    if (first == "--help" || first == "-h") {
      print_usage(std::cout);
      return 0;
    }
  }
  const Options opts = parse_args(argc, argv);
  hec::obs::set_log_level(opts.log_level);
  const hec::Workload workload = hec::find_workload(opts.workload);
  const double units = opts.units.value_or(workload.analysis_units);

  const hec::NodeSpec arm = hec::arm_cortex_a9();
  const hec::NodeSpec amd = hec::amd_opteron_k10();
  const auto make_model = [&](const hec::NodeSpec& spec,
                              const std::optional<std::string>& inputs_file) {
    if (!inputs_file) return build_node_model(spec, workload);
    return hec::NodeTypeModel(spec, hec::load_workload_inputs(*inputs_file),
                              characterize_power(spec));
  };
  const hec::NodeTypeModel arm_model = make_model(arm, opts.arm_inputs);
  const hec::NodeTypeModel amd_model = make_model(amd, opts.amd_inputs);
  const hec::EnumerationLimits limits{opts.max_arm, opts.max_amd};

  hec::shard::WorkerLoopOptions wop;
  wop.connect =
      hec::util::parse_endpoint(*opts.connect, "--connect");
  wop.net_timeout_s = opts.net_timeout_s;
  wop.max_redials = opts.max_redials;
  wop.threads = opts.threads;
  wop.prune = opts.prune;
  wop.simd = opts.simd;
  bool temp_state = false;
  if (opts.state_dir) {
    wop.state_dir = *opts.state_dir;
  } else {
    char tmpl[] = "/tmp/hecsim-worker-XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      throw hec::IoError("cannot create worker state dir");
    }
    wop.state_dir = tmpl;
    temp_state = true;
  }

  const hec::shard::WorkerLoopResult result =
      hec::shard::run_two_type_worker(arm_model, amd_model, limits, units,
                                      wop);
  std::cerr << "hecsim_worker: " << result.attempts_run << " attempts ("
            << result.attempts_failed << " failed), " << result.reconnects
            << " reconnects"
            << (result.bye ? ", run complete"
                           : result.served ? ", coordinator gone"
                                           : ", never served")
            << "\n";
  if (!result.served && !result.detail.empty()) {
    std::cerr << "hecsim_worker: last failure: " << result.detail << "\n";
  }
  if (temp_state && result.served) {
    // Best effort: a temp state dir holds nothing worth resuming once
    // the run ended (a named --state-dir is the operator's to keep).
    if (DIR* dir = ::opendir(wop.state_dir.c_str())) {
      while (const struct dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name == "." || name == "..") continue;
        std::remove((wop.state_dir + "/" + name).c_str());
      }
      ::closedir(dir);
    }
    ::rmdir(wop.state_dir.c_str());
  }
  return result.served ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    hec::util::arm_failpoints_from_env();
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    print_usage(std::cerr);
    return 64;
  } catch (const hec::util::FailpointParseError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return 64;
  } catch (const hec::util::EnvParseError& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return 64;
  } catch (const hec::ParseError& e) {
    std::cerr << "input error: " << e.what() << "\n";
    return 65;
  } catch (const hec::IoError& e) {
    std::cerr << "i/o error: " << e.what() << "\n";
    return 74;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
