// hecsim_benchreport — runs the bench suite and tracks its trajectory.
//
// Executes every bench_* binary (parallel, per-bench timeout), collects
// the hec-bench-run/v1 record each child writes via HEC_BENCH_JSON,
// aggregates repeats (median) into one hec-bench-suite/v1 document —
// results/BENCH_<git-sha>.json — and gates it against bench/baseline.json
// with the noise-tolerant comparator (hec/bench/compare.h). A human
// dashboard lands in results/BENCH_REPORT.md.
//
//   hecsim_benchreport [--bench-dir build/bench] [--results-dir results]
//                      [--out FILE.json] [--baseline bench/baseline.json]
//                      [--report FILE.md] [--filter GLOB] [--jobs N]
//                      [--repeat N] [--timeout-s N] [--keep-going]
//                      [--write-baseline]
//
// Children that die to a signal are reported by name (SIGKILL,
// SIGSEGV, ...) in the FAIL line, the suite document (term_signal) and
// the report's exit column; an interrupted child — signal-killed or
// timed out — is reaped and retried once before the bench counts as
// failed, so a stray OOM-kill or operator ^C doesn't sink the suite.
//
// Exit codes: 0 suite ran and gate passed (or no baseline to gate
// against); 1 a bench failed or timed out; 3 the gate flagged a
// regression; 64 usage error; 70 internal error (unparseable
// baseline); 74 suite/baseline/report could not be written (all three
// are committed atomically: write-temp, fsync, rename).
#include <dirent.h>
#include <fcntl.h>
#include <limits.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fnmatch.h>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "hec/bench/compare.h"
#include "hec/bench/json.h"
#include "hec/bench/telemetry.h"
#include "hec/util/atomic_file.h"

namespace {

namespace json = hec::bench::json;
namespace telemetry = hec::bench::telemetry;

constexpr int kExitBenchFailure = 1;
constexpr int kExitRegression = 3;
constexpr int kExitUsage = 64;
constexpr int kExitInternal = 70;
constexpr int kExitIo = hec::util::kExitIoError;

struct Options {
  std::string bench_dir = "build/bench";
  std::string results_dir = "results";
  std::string out;       // default: <results_dir>/BENCH_<sha>.json
  std::string report;    // default: <results_dir>/BENCH_REPORT.md
  std::string baseline = "bench/baseline.json";
  std::string filter;    // fnmatch glob on the binary name; empty = all
  int jobs = 4;
  int repeat = 1;
  double timeout_s = 120.0;
  bool keep_going = false;
  bool write_baseline = false;
};

void usage(std::ostream& out) {
  out << "usage: hecsim_benchreport [options]\n"
         "  --bench-dir DIR    directory with bench_* binaries "
         "(default build/bench)\n"
         "  --results-dir DIR  output directory (default results)\n"
         "  --out FILE         suite JSON (default "
         "<results-dir>/BENCH_<sha>.json)\n"
         "  --baseline FILE    baseline suite to gate against "
         "(default bench/baseline.json)\n"
         "  --report FILE      markdown report (default "
         "<results-dir>/BENCH_REPORT.md)\n"
         "  --filter GLOB      run only benches matching GLOB "
         "(disables missing-bench gating)\n"
         "  --jobs N           parallel benches (default 4)\n"
         "  --repeat N         repeats per bench, median aggregated "
         "(default 1)\n"
         "  --timeout-s N      per-run timeout in seconds (default 120)\n"
         "  --keep-going       run remaining benches after a failure\n"
         "  --write-baseline   write the suite to --baseline and skip "
         "gating\n";
}

int parse_int(const std::string& text, const std::string& what) {
  int value = 0;
  const char* begin = text.data();
  auto [ptr, ec] = std::from_chars(begin, begin + text.size(), value);
  if (ec != std::errc{} || ptr != begin + text.size() || value <= 0) {
    throw std::runtime_error("bad " + what + ": '" + text + "'");
  }
  return value;
}

/// mkdir -p: creates `path` and any missing parents.
bool make_dirs(const std::string& path) {
  std::string prefix;
  std::istringstream parts(path);
  std::string part;
  if (!path.empty() && path[0] == '/') prefix = "/";
  while (std::getline(parts, part, '/')) {
    if (part.empty()) continue;
    prefix += part + "/";
    if (mkdir(prefix.c_str(), 0775) != 0 && errno != EEXIST) return false;
  }
  return true;
}

std::string absolute_path(const std::string& path) {
  char buf[PATH_MAX];
  if (realpath(path.c_str(), buf) == nullptr) return path;
  return buf;
}

/// Executable bench_* regular files in `dir`, sorted by name.
std::vector<std::string> discover_benches(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind("bench_", 0) != 0) continue;
    const std::string path = dir + "/" + name;
    struct stat st{};
    if (stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) continue;
    if (access(path.c_str(), X_OK) != 0) continue;
    names.push_back(name);
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

std::string git_sha() {
  FILE* pipe = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "nosha";
  char buf[64] = {};
  const size_t n = fread(buf, 1, sizeof(buf) - 1, pipe);
  pclose(pipe);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "nosha" : sha;
}

std::string utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// One bench binary's life through the scheduler.
struct Job {
  std::string name;
  std::string path;           // absolute: children chdir away
  telemetry::BenchAggregate agg;
  int next_rep = 0;
  pid_t pid = -1;             // -1 = not running
  std::chrono::steady_clock::time_point started;
  bool done = false;
  bool failed = false;
  bool retried = false;       // the one interrupted-child retry was spent
};

/// Forks one repeat of `job`. stdout+stderr go to <results>/<name>.txt
/// for the first repeat, /dev/null after; cwd is the results dir so the
/// bench's CSV/gnuplot artefacts land beside the report. Children get
/// their own process group so a timeout can kill helpers too.
pid_t spawn_repeat(const Job& job, int rep, const std::string& results_abs,
                   const std::string& telemetry_abs) {
  const std::string out_path = rep == 0 ? results_abs + "/" + job.name + ".txt"
                                        : std::string("/dev/null");
  const std::string record_path = telemetry_abs + "/" + job.name + ".rep" +
                                  std::to_string(rep) + ".json";
  const pid_t pid = fork();
  if (pid != 0) {
    // Mirror the child's setpgid so the group exists before any timeout
    // kill, whichever side wins the race (EACCES after exec is fine —
    // the child already moved itself).
    if (pid > 0) setpgid(pid, pid);
    return pid;  // parent (or fork failure: -1)
  }

  setpgid(0, 0);
  const int fd = open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    dup2(fd, STDOUT_FILENO);
    dup2(fd, STDERR_FILENO);
    close(fd);
  }
  if (chdir(results_abs.c_str()) != 0) _exit(127);
  setenv(telemetry::kRunRecordEnv, record_path.c_str(), 1);
  execl(job.path.c_str(), job.name.c_str(), static_cast<char*>(nullptr));
  _exit(127);
}

/// Runs all jobs with at most `opts.jobs` children alive. Repeats of one
/// bench serialise (they share CSV paths); distinct benches run in
/// parallel (distinct artefact names). Returns false when any bench
/// failed or timed out.
bool run_jobs(std::vector<Job>& jobs, const Options& opts,
              const std::string& results_abs,
              const std::string& telemetry_abs) {
  using clock = std::chrono::steady_clock;
  bool all_ok = true;
  bool stop_spawning = false;
  int running = 0;

  auto pending = [&] {
    return std::any_of(jobs.begin(), jobs.end(),
                       [](const Job& j) { return !j.done; });
  };

  while (pending() || running > 0) {
    // Spawn while slots are free.
    for (Job& job : jobs) {
      if (running >= opts.jobs) break;
      if (job.done || job.pid >= 0) continue;
      // After a failure without --keep-going, only drain started benches.
      if (stop_spawning && job.next_rep == 0) {
        job.done = true;
        continue;
      }
      job.pid = spawn_repeat(job, job.next_rep, results_abs, telemetry_abs);
      if (job.pid < 0) {
        std::cerr << "[benchreport] fork failed for " << job.name << "\n";
        job.done = job.failed = true;
        all_ok = false;
        continue;
      }
      job.started = clock::now();
      ++running;
    }

    // Kill over-deadline children (whole process group).
    for (Job& job : jobs) {
      if (job.pid < 0 || job.agg.timed_out) continue;
      const std::chrono::duration<double> dur = clock::now() - job.started;
      if (dur.count() > opts.timeout_s) {
        // Group kill first (helpers too); fall back to the child alone
        // if the group is already gone.
        if (kill(-job.pid, SIGKILL) != 0) kill(job.pid, SIGKILL);
        job.agg.timed_out = true;
      }
    }

    // Reap.
    int status = 0;
    const pid_t reaped = waitpid(-1, &status, WNOHANG);
    if (reaped <= 0) {
      if (running > 0) usleep(5000);
      continue;
    }
    const auto owner = std::find_if(jobs.begin(), jobs.end(), [&](Job& j) {
      return j.pid == reaped;
    });
    if (owner == jobs.end()) continue;  // not ours (shouldn't happen)
    Job& job = *owner;
    --running;
    job.pid = -1;
    const std::chrono::duration<double> wall = clock::now() - job.started;
    job.agg.runner_wall_s.push_back(wall.count());

    const bool signaled = WIFSIGNALED(status);
    const int code = WIFEXITED(status) ? WEXITSTATUS(status)
                     : signaled       ? 128 + WTERMSIG(status)
                                      : kExitInternal;
    if (code != 0 || job.agg.timed_out) {
      const std::string why =
          job.agg.timed_out
              ? " (timeout after " + std::to_string(opts.timeout_s) + "s)"
          : signaled
              ? " (killed by " + telemetry::signal_name(WTERMSIG(status)) + ")"
              : " (exit " + std::to_string(code) + ")";
      // A signal-killed or timed-out child was interrupted, not refuted:
      // the zombie is reaped (waitpid above), so re-run that repeat once.
      // Deterministic nonzero exits are real failures and never retried.
      if ((signaled || job.agg.timed_out) && !job.retried) {
        job.retried = true;
        ++job.agg.retries;
        job.agg.timed_out = false;
        job.agg.runner_wall_s.pop_back();  // killed attempt would skew walls
        std::cerr << "[benchreport] retry " << job.name << why << "\n";
        continue;  // pid is cleared: the spawn loop re-runs this repeat
      }
      job.agg.exit_code = code;
      if (signaled) job.agg.term_signal = WTERMSIG(status);
      job.done = job.failed = true;
      all_ok = false;
      std::cerr << "[benchreport] FAIL " << job.name << why << "\n";
      if (!opts.keep_going) stop_spawning = true;
      continue;
    }
    if (++job.next_rep >= opts.repeat) {
      job.done = true;
      std::cerr << "[benchreport] ok   " << job.name << " ("
                << job.agg.runner_wall_s.size() << " run"
                << (job.agg.runner_wall_s.size() == 1 ? "" : "s") << ")\n";
    }
  }
  return all_ok;
}

/// Parses the per-repeat records a job's children wrote.
void collect_records(Job& job, const std::string& telemetry_abs) {
  for (int rep = 0; rep < job.next_rep; ++rep) {
    const std::string path = telemetry_abs + "/" + job.name + ".rep" +
                             std::to_string(rep) + ".json";
    std::ifstream in(path);
    if (!in) continue;
    std::stringstream text;
    text << in.rdbuf();
    std::string error;
    const auto doc = json::Value::parse(text.str(), &error);
    if (!doc) {
      std::cerr << "[benchreport] bad record " << path << ": " << error
                << "\n";
      continue;
    }
    if (auto record = telemetry::run_record_from_json(*doc, &error)) {
      job.agg.runs.push_back(std::move(*record));
    } else {
      std::cerr << "[benchreport] bad record " << path << ": " << error
                << "\n";
    }
  }
}

bool write_file(const std::string& path, const json::Value& doc) {
  std::ostringstream out;
  doc.write(out);
  out << "\n";
  try {
    hec::util::atomic_write_file(path, out.str());
  } catch (const std::exception& e) {
    std::cerr << "[benchreport] " << e.what() << "\n";
    return false;
  }
  return true;
}

/// Commits the markdown report atomically; false (after a stderr
/// message) when the write failed.
bool write_report(const std::string& path, const json::Value& suite,
                  const telemetry::Comparison* cmp,
                  const std::string& baseline_desc) {
  try {
    hec::util::AtomicFileWriter report(path);
    telemetry::write_markdown_report(report.stream(), suite, cmp,
                                     baseline_desc);
    report.commit();
  } catch (const std::exception& e) {
    std::cerr << "[benchreport] " << e.what() << "\n";
    return false;
  }
  std::cout << "[benchreport] wrote " << path << "\n";
  return true;
}

int run(int argc, char** argv) {
  Options opts;
  std::vector<std::string> args(argv + 1, argv + argc);
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto next = [&]() -> std::string {
      if (++i >= args.size()) {
        throw std::runtime_error("missing value after " + args[i - 1]);
      }
      return args[i];
    };
    if (args[i] == "--help" || args[i] == "-h") {
      usage(std::cout);
      return 0;
    } else if (args[i] == "--bench-dir") {
      opts.bench_dir = next();
    } else if (args[i] == "--results-dir") {
      opts.results_dir = next();
    } else if (args[i] == "--out") {
      opts.out = next();
    } else if (args[i] == "--baseline") {
      opts.baseline = next();
    } else if (args[i] == "--report") {
      opts.report = next();
    } else if (args[i] == "--filter") {
      opts.filter = next();
    } else if (args[i] == "--jobs") {
      opts.jobs = parse_int(next(), "--jobs");
    } else if (args[i] == "--repeat") {
      opts.repeat = parse_int(next(), "--repeat");
    } else if (args[i] == "--timeout-s") {
      opts.timeout_s = parse_int(next(), "--timeout-s");
    } else if (args[i] == "--keep-going") {
      opts.keep_going = true;
    } else if (args[i] == "--write-baseline") {
      opts.write_baseline = true;
    } else {
      throw std::runtime_error("unknown option: " + args[i]);
    }
  }

  const std::string telemetry_dir = opts.results_dir + "/telemetry";
  if (!make_dirs(telemetry_dir)) {
    std::cerr << "[benchreport] cannot create " << telemetry_dir << "\n";
    return kExitInternal;
  }
  const std::string results_abs = absolute_path(opts.results_dir);
  const std::string telemetry_abs = absolute_path(telemetry_dir);
  const std::string bench_abs = absolute_path(opts.bench_dir);

  std::vector<Job> jobs;
  for (const std::string& name : discover_benches(opts.bench_dir)) {
    if (!opts.filter.empty() &&
        fnmatch(opts.filter.c_str(), name.c_str(), 0) != 0) {
      continue;
    }
    Job job;
    job.name = name;
    job.path = bench_abs + "/" + name;
    job.agg.bench = name;
    jobs.push_back(std::move(job));
  }
  if (jobs.empty()) {
    std::cerr << "[benchreport] no benches in " << opts.bench_dir
              << (opts.filter.empty() ? ""
                                      : " matching '" + opts.filter + "'")
              << "\n";
    return kExitUsage;
  }
  std::cerr << "[benchreport] running " << jobs.size() << " benches, "
            << opts.repeat << " repeat(s), " << opts.jobs << " jobs\n";

  const bool benches_ok =
      run_jobs(jobs, opts, results_abs, telemetry_abs);
  std::vector<telemetry::BenchAggregate> aggregates;
  for (Job& job : jobs) {
    collect_records(job, telemetry_abs);
    aggregates.push_back(std::move(job.agg));
  }

  const std::string sha = git_sha();
  const json::Value suite =
      telemetry::make_suite(aggregates, sha, opts.repeat, utc_now());
  const std::string out_path =
      opts.out.empty() ? opts.results_dir + "/BENCH_" + sha + ".json"
                       : opts.out;
  if (!write_file(out_path, suite)) return kExitIo;
  std::cout << "[benchreport] wrote " << out_path << "\n";

  const std::string report_path = opts.report.empty()
                                      ? opts.results_dir + "/BENCH_REPORT.md"
                                      : opts.report;

  if (opts.write_baseline) {
    if (!write_file(opts.baseline, suite)) return kExitIo;
    std::cout << "[benchreport] wrote baseline " << opts.baseline << "\n";
    if (!write_report(report_path, suite, nullptr, "none (baseline write)")) {
      return kExitIo;
    }
    return benches_ok ? 0 : kExitBenchFailure;
  }

  std::ifstream baseline_in(opts.baseline);
  if (!baseline_in) {
    std::cout << "[benchreport] no baseline at " << opts.baseline
              << " — skipping gate (seed one with --write-baseline)\n";
    if (!write_report(report_path, suite, nullptr,
                      "none (no baseline found)")) {
      return kExitIo;
    }
    return benches_ok ? 0 : kExitBenchFailure;
  }
  std::stringstream baseline_text;
  baseline_text << baseline_in.rdbuf();
  std::string error;
  const auto baseline = json::Value::parse(baseline_text.str(), &error);
  if (!baseline) {
    std::cerr << "[benchreport] unparseable baseline " << opts.baseline
              << ": " << error << "\n";
    return kExitInternal;
  }

  telemetry::CompareOptions copts;
  // A filtered run legitimately misses most baseline benches.
  copts.fail_on_missing_bench = opts.filter.empty();
  const telemetry::Comparison cmp =
      telemetry::compare_suites(*baseline, suite, copts);

  if (!write_report(report_path, suite, &cmp, opts.baseline)) return kExitIo;
  std::cout << "[benchreport] gate vs " << opts.baseline << ": "
            << cmp.regressions << " regression(s), " << cmp.missing
            << " missing, " << cmp.improvements << " improvement(s), "
            << cmp.within_noise << " within noise\n";
  for (const auto& delta : cmp.deltas) {
    if (!delta.gated ||
        (delta.outcome != telemetry::Outcome::kRegression &&
         delta.outcome != telemetry::Outcome::kMissingInCurrent)) {
      continue;
    }
    std::cout << "  " << to_string(delta.outcome) << ": " << delta.bench
              << " " << delta.metric << " "
              << json::number_to_string(delta.baseline) << " -> "
              << json::number_to_string(delta.current) << "\n";
  }

  if (!benches_ok) return kExitBenchFailure;
  if (!cmp.ok()) {
    std::cout << "[benchreport] FAIL — regression vs baseline\n";
    return kExitRegression;
  }
  std::cout << "[benchreport] PASS\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "hecsim_benchreport: " << e.what() << "\n\n";
    usage(std::cerr);
    return kExitUsage;
  }
}
